"""Statistics helpers used by the experiment harness.

The paper (section 4) states: *"We defined a confidence coefficient of
95% and ran each experiment multiple times to reduce the standard
error. We assumed experiments to be independent, therefore the formulas
associated with a normal distribution apply."*  ``mean_ci95`` implements
exactly that normal-approximation interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

#: z-value for a 95% two-sided normal confidence interval.
Z_95 = 1.959963984540054


class DegenerateBaselineError(ValueError):
    """A baseline measurement was zero or negative, so the paper's
    ``100 (Z - W) / Z`` metric is undefined for that cell.

    Subclasses :class:`ValueError` for backward compatibility; sweep
    code catches this specifically so one degenerate cell is reported
    and skipped instead of aborting a whole figure or campaign.
    """


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric 95% confidence half-width.

    ``skipped`` counts degenerate repetitions that contributed no
    sample (see :class:`DegenerateBaselineError`); ``n`` counts only
    the samples the interval is actually computed from.
    """

    mean: float
    half_width: float
    n: int
    skipped: int = 0

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        # A single sample has no spread to estimate: rendering
        # "± 0.00 (n=1)" would dress a point estimate up as a real
        # interval, so mark it (and the no-data case) explicitly.
        if self.n == 0:
            return f"no data (n=0, skipped={self.skipped})"
        if self.n == 1:
            return f"{self.mean:.3f} (n=1, no CI)"
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def mean_ci95(samples: Sequence[float]) -> ConfidenceInterval:
    """Mean and 95% CI of ``samples`` under the normal approximation.

    A single sample yields a zero-width interval (the paper reruns each
    experiment; degenerate inputs still need a defined answer for tests).
    """
    if not samples:
        raise ValueError("mean_ci95 requires at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, n=1)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = Z_95 * math.sqrt(var / n)
    return ConfidenceInterval(mean=mean, half_width=half, n=n)


def improvement_pct(baseline: float, optimized: float) -> float:
    """The paper's improvement metric ``100 * (Z - W) / Z``.

    ``Z`` is the regular (baseline) time and ``W`` the time with the
    address cache.  Positive means the cache helped; the LAPI PUT panel
    of Figure 6 goes as low as -200%.
    """
    if baseline <= 0:
        raise DegenerateBaselineError(
            f"baseline must be positive, got {baseline!r} — the "
            f"improvement metric 100*(Z-W)/Z is undefined for this cell")
    return 100.0 * (baseline - optimized) / baseline


class RunningStats:
    """Online mean/variance/min/max accumulator (Welford's algorithm).

    Used for per-operation latency statistics inside the runtime where
    storing every sample would be wasteful at scale.
    """

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        self._mean = (self._mean * self.n + other._mean * other.n) / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunningStats(n={self.n}, mean={self.mean:.3f}, "
            f"min={self.min:.3f}, max={self.max:.3f})"
        )
