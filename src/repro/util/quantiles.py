"""Streaming quantile estimation (the P² algorithm).

Jain & Chlamtac, "The P² algorithm for dynamic calculation of
quantiles and histograms without storing observations" (CACM 1985).
Remote-operation latencies at 10^5+ samples per run cannot all be
kept; P² tracks a chosen quantile in O(1) space with piecewise-
parabolic marker updates — exactly what the tail-latency views of the
Field pathology need (the median-vs-max contrast of §4.6's trace).
"""

from __future__ import annotations

import math
from typing import List


class P2Quantile:
    """Track one quantile ``q`` of a stream in constant space."""

    __slots__ = ("q", "_n", "_heights", "_positions", "_desired",
                 "_increments", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._n: List[float] = []      # first five observations
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        if len(self._heights) < 5:
            self._n.append(x)
            if len(self._n) == 5:
                self._n.sort()
                self._heights = self._n
                # The seed buffer becomes the marker heights; drop the
                # extra reference so each tracker carries exactly one
                # five-element list from here on.
                self._n = []
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * self.q,
                                 1.0 + 4.0 * self.q, 3.0 + 2.0 * self.q,
                                 5.0]
            return
        h = self._heights
        pos = self._positions
        # Find the cell and bump marker positions.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three middle markers.
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if ((d >= 1.0 and pos[i + 1] - pos[i] > 1.0)
                    or (d <= -1.0 and pos[i - 1] - pos[i] < -1.0)):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current estimate (exact for < 5 samples).

        The small-sample path uses an explicit **ceil-rank** rule:
        the estimate is ``data[ceil(q * (n - 1))]``.  Banker's
        rounding (``round``) would send e.g. the p50 of two samples to
        the *lower* one and the p95 of four samples to the 3rd — the
        upper tail must never round down.
        """
        if self.count == 0:
            return 0.0
        if len(self._heights) < 5:
            data = sorted(self._n)
            idx = min(len(data) - 1,
                      max(0, math.ceil(self.q * (len(data) - 1))))
            return data[idx]
        return self._heights[2]


class LatencyDigest:
    """A bundle of P² trackers for the usual latency percentiles."""

    __slots__ = ("p50", "p95", "p99", "count")

    def __init__(self) -> None:
        self.p50 = P2Quantile(0.50)
        self.p95 = P2Quantile(0.95)
        self.p99 = P2Quantile(0.99)
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        self.p50.add(x)
        self.p95.add(x)
        self.p99.add(x)

    def summary(self) -> str:
        return (f"p50={self.p50.value:.2f} p95={self.p95.value:.2f} "
                f"p99={self.p99.value:.2f} (n={self.count})")
