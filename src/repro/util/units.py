"""Unit constants and formatting helpers.

The simulator's clock is a float measured in **microseconds** and all
sizes are **bytes**; these constants keep parameter tables readable.
"""

from __future__ import annotations

#: Bytes in a kilobyte / megabyte / gigabyte (binary, as the paper uses
#: "KByte" = 1024 bytes for message sizes).
KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Time units expressed in simulator ticks (microseconds).
USEC: float = 1.0
MSEC: float = 1_000.0
SEC: float = 1_000_000.0


def bytes_per_usec(megabytes_per_second: float) -> float:
    """Convert a bandwidth in MB/s to bytes per microsecond.

    Useful when writing parameter tables in the units hardware specs use::

        gap = 1.0 / bytes_per_usec(250.0)   # Myrinet ~250 MB/s
    """
    return megabytes_per_second * MB / SEC


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (``4096 -> '4KB'``)."""
    if n >= GB and n % GB == 0:
        return f"{n // GB}GB"
    if n >= MB and n % MB == 0:
        return f"{n // MB}MB"
    if n >= KB and n % KB == 0:
        return f"{n // KB}KB"
    return f"{n}B"


def fmt_usec(t: float) -> str:
    """Human-readable microsecond duration."""
    if t >= SEC:
        return f"{t / SEC:.3f}s"
    if t >= MSEC:
        return f"{t / MSEC:.3f}ms"
    return f"{t:.2f}us"
