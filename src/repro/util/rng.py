"""Deterministic random-number helpers.

Every stochastic component (workload generators, randomized eviction)
derives its generator from an explicit seed so that a cached and an
uncached run of the same experiment see *identical* access patterns —
a precondition for the paper's ``100(Z-W)/Z`` comparisons and for our
functional-equivalence tests.
"""

from __future__ import annotations

import numpy as np

#: Fixed application-level salt so that unrelated components which pass
#: the same small integer seed still decorrelate.
_SALT = 0x5B_D1_E9_95


def seeded_rng(seed: int, *streams: int) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(seed, *streams)``.

    ``streams`` identifies a substream (e.g. per-thread, per-repetition)
    so callers never share a generator across simulated threads.
    """
    ss = np.random.SeedSequence([_SALT, seed, *streams])
    return np.random.default_rng(ss)


def split_seed(seed: int, index: int) -> int:
    """Derive a stable 63-bit child seed for substream ``index``."""
    ss = np.random.SeedSequence([_SALT, seed, index])
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


def bounded_geometric(rng: np.random.Generator, mean: float,
                      lo: int, hi: int) -> int:
    """A geometric-ish draw clamped to ``[lo, hi]``.

    Size-like quantities (span lengths, op counts) want short draws to
    dominate with a heavy tail of large ones — a plain uniform draw
    buries the small-transfer behaviour the protocols specialize for.
    """
    if hi <= lo:
        return lo
    draw = lo + int(rng.geometric(min(1.0, 1.0 / max(mean, 1.0)))) - 1
    return min(max(draw, lo), hi)
