"""Deterministic random-number helpers.

Every stochastic component (workload generators, randomized eviction)
derives its generator from an explicit seed so that a cached and an
uncached run of the same experiment see *identical* access patterns —
a precondition for the paper's ``100(Z-W)/Z`` comparisons and for our
functional-equivalence tests.
"""

from __future__ import annotations

import numpy as np

#: Fixed application-level salt so that unrelated components which pass
#: the same small integer seed still decorrelate.
_SALT = 0x5B_D1_E9_95


def seeded_rng(seed: int, *streams: int) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(seed, *streams)``.

    ``streams`` identifies a substream (e.g. per-thread, per-repetition)
    so callers never share a generator across simulated threads.
    """
    ss = np.random.SeedSequence([_SALT, seed, *streams])
    return np.random.default_rng(ss)


def split_seed(seed: int, index: int) -> int:
    """Derive a stable 63-bit child seed for substream ``index``."""
    ss = np.random.SeedSequence([_SALT, seed, index])
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


class StreamFamily:
    """Explicit per-entity stream splitting for sharded execution.

    The sharded PDES core slices a run's nodes across worker processes,
    and the slice boundaries move with the shard count.  Randomness
    must therefore *never* be drawn from a per-shard or per-worker
    generator: the same fault plan or fuzz program has to come out
    bit-identical for ``shards=1/2/4``.  A ``StreamFamily`` makes the
    correct pattern the easy one — derive every generator from stable
    *entity* keys (node id, thread id, repetition) under a fixed scope
    path, so any worker that simulates an entity reconstructs exactly
    the stream that entity would see anywhere else::

        fam = StreamFamily(seed, "fault-plan")
        rng = fam.rng(node_id)           # same stream on any shard

    Scopes nest (``fam.child("arrivals")``) so unrelated components
    sharing a seed stay decorrelated without coordinating offsets.
    """

    __slots__ = ("seed", "scope")

    def __init__(self, seed: int, *scope) -> None:
        self.seed = int(seed)
        self.scope = tuple(_key_to_int(k) for k in scope)

    def child(self, *scope) -> "StreamFamily":
        """A nested family under an extended scope path."""
        fam = StreamFamily.__new__(StreamFamily)
        fam.seed = self.seed
        fam.scope = self.scope + tuple(_key_to_int(k) for k in scope)
        return fam

    def rng(self, *entity) -> np.random.Generator:
        """The generator owned by ``entity`` (e.g. a node id) — a pure
        function of ``(seed, scope, entity)``, independent of which
        shard asks."""
        return seeded_rng(self.seed, *self.scope,
                          *(_key_to_int(k) for k in entity))

    def seed_for(self, *entity) -> int:
        """A stable 63-bit integer seed for ``entity`` — for handing
        to components that take seeds rather than generators."""
        ss = np.random.SeedSequence(
            [_SALT, self.seed, *self.scope,
             *(_key_to_int(k) for k in entity)])
        return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StreamFamily seed={self.seed} scope={self.scope}>"


def _key_to_int(key) -> int:
    """Map a scope/entity key to a stable non-negative int.

    Strings hash via FNV-1a (Python's ``hash`` is salted per process —
    useless across the worker processes the sharded core spawns).
    """
    if isinstance(key, bool):
        raise TypeError("booleans are ambiguous stream keys")
    if isinstance(key, (int, np.integer)):
        return int(key) & (2 ** 63 - 1)
    if isinstance(key, str):
        acc = 0xCBF29CE484222325
        for byte in key.encode("utf-8"):
            acc = ((acc ^ byte) * 0x100000001B3) & (2 ** 64 - 1)
        return acc >> 1
    raise TypeError(f"stream keys must be int or str, got {type(key)!r}")


def bounded_geometric(rng: np.random.Generator, mean: float,
                      lo: int, hi: int) -> int:
    """A geometric-ish draw clamped to ``[lo, hi]``.

    Size-like quantities (span lengths, op counts) want short draws to
    dominate with a heavy tail of large ones — a plain uniform draw
    buries the small-transfer behaviour the protocols specialize for.
    """
    if hi <= lo:
        return lo
    draw = lo + int(rng.geometric(min(1.0, 1.0 / max(mean, 1.0)))) - 1
    return min(max(draw, lo), hi)
