"""Shared utilities: units, statistics, RNG seeding.

These helpers are deliberately dependency-light; every layer of the
package may import them.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    USEC,
    MSEC,
    SEC,
    bytes_per_usec,
    fmt_bytes,
    fmt_usec,
)
from repro.util.stats import (
    ConfidenceInterval,
    RunningStats,
    improvement_pct,
    mean_ci95,
)
from repro.util.rng import seeded_rng, split_seed

__all__ = [
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
    "SEC",
    "bytes_per_usec",
    "fmt_bytes",
    "fmt_usec",
    "ConfidenceInterval",
    "RunningStats",
    "improvement_pct",
    "mean_ci95",
    "seeded_rng",
    "split_seed",
]
