"""Atomic JSON artifacts and the campaign cell merge.

Every JSON artifact the benchmark/experiment pipeline writes — bench
reports, campaign checkpoints, merged trajectories — goes through
:func:`atomic_write_json`: the document is serialized to a temp file
in the target directory and published with ``os.replace``, so a
killed process leaves either the previous complete file or nothing,
never a truncated one for a later ``--baseline`` gate to choke on.

Reading is the mirror image: :func:`load_json_artifact` turns a
missing or corrupt file into a *named* error
(:class:`ArtifactError` / :class:`BaselineError`) carrying the path
and the likely cause, instead of a raw ``JSONDecodeError`` from deep
inside the json module.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence


class ArtifactError(RuntimeError):
    """A JSON artifact is missing, truncated, or unreadable."""


class BaselineError(ArtifactError):
    """A ``--baseline`` artifact is missing, truncated, or unreadable.

    Raised instead of a bare ``FileNotFoundError``/``JSONDecodeError``
    so a bench invocation that cannot gate says *why* in one line.
    """


def atomic_write_json(path: str, obj, *, indent: int = 2,
                      sort_keys: bool = False) -> str:
    """Write ``obj`` as JSON to ``path`` via tmp-file-then-rename.

    The temp file lives in the destination directory so the final
    ``os.replace`` is atomic on POSIX; a crash mid-write leaves at
    worst a ``*.tmp`` straggler, never a half-written ``path``.
    Returns ``path``.
    """
    path = os.fspath(path)
    dirname = os.path.dirname(os.path.abspath(path))
    os.makedirs(dirname, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dirname, suffix=".tmp",
                               prefix=os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=indent, sort_keys=sort_keys)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_json_artifact(path: str, *, what: str = "artifact",
                       error: type = ArtifactError,
                       hint: str = "") -> Dict:
    """Load a JSON artifact, raising a named ``error`` on trouble."""
    path = os.fspath(path)
    if not os.path.exists(path):
        hint = hint or ("run the bench first, or point at the "
                        "committed file")
        raise error(f"{what} {path!r} does not exist ({hint})")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except json.JSONDecodeError as exc:
        raise error(
            f"{what} {path!r} is corrupt or truncated (line "
            f"{exc.lineno}: {exc.msg}) — likely an interrupted "
            f"non-atomic write; regenerate it") from exc
    except OSError as exc:
        raise error(f"{what} {path!r} is unreadable: {exc}") from exc


# ---------------------------------------------------------------------------
# Cell merge: checkpoints -> BENCH_* trajectory files
# ---------------------------------------------------------------------------

def merge_rows(outcomes: Sequence[Dict]) -> Dict[str, List[Dict]]:
    """Group completed cell checkpoints by kind into deterministic
    trajectory rows: sorted by cell id, stripped of anything that is
    not a pure function of (spec, seed) — wall-clock timing stays in
    the per-cell checkpoints only, so a resumed campaign merges to
    *byte-identical* output."""
    by_kind: Dict[str, List[Dict]] = {}
    for doc in sorted(outcomes, key=lambda d: d["id"]):
        if doc["status"] not in ("ok", "degenerate"):
            continue
        row = {
            "id": doc["id"],
            "params": doc["params"],
            "seed": doc["seed"],
            "status": doc["status"],
            "payload": doc["payload"],
        }
        if doc["status"] == "degenerate":
            row["error"] = doc.get("error", "")
        by_kind.setdefault(doc["kind"], []).append(row)
    return by_kind


def merge_cells(run_dir: str, campaign: str,
                outcomes: Sequence[Dict]) -> List[str]:
    """Merge cell checkpoints into per-kind ``BENCH_campaign_<kind>``
    trajectory files under ``<run_dir>/bench/``, atomically.

    The merged document is a pure function of the completed cells, so
    re-running (or resuming) the same campaign rewrites byte-identical
    files.  Returns the written paths.
    """
    paths: List[str] = []
    for kind, rows in sorted(merge_rows(outcomes).items()):
        doc = {
            "bench": f"campaign_{kind}",
            "campaign": campaign,
            "cells": rows,
            "n_cells": len(rows),
        }
        path = os.path.join(run_dir, "bench",
                            f"BENCH_campaign_{kind}.json")
        paths.append(atomic_write_json(path, doc, indent=1,
                                       sort_keys=True))
    return paths
