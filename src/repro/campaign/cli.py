"""``python -m repro campaign`` — run, resume, and render a sweep.

One command takes a campaign from spec to rendered figures::

    python -m repro campaign --spec smoke
    python -m repro campaign --spec service --workers 4
    python -m repro campaign --spec my-sweep.json --run-dir runs/s1

A killed campaign resumes from its per-cell checkpoints: re-run the
same command and completed cells are not re-executed (the summary
prints how many were resumed).  ``--max-cells`` deliberately stops
early — CI uses it to exercise the resume path.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from repro.campaign.render import render_campaign
from repro.campaign.runner import run_campaign
from repro.campaign.spec import SPECS, resolve_spec


def campaign_main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=__doc__.splitlines()[0])
    ap.add_argument("--spec", default="smoke",
                    help="built-in spec name, JSON file, or inline "
                         "JSON (default: smoke; see --list-specs)")
    ap.add_argument("--run-dir", default=None,
                    help="checkpoint/output directory (default: "
                         "campaign-runs/<spec name>)")
    ap.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: the spec's; "
                         "0 = in-process)")
    ap.add_argument("--max-cells", type=int, default=None,
                    help="execute at most N cells this invocation "
                         "(the rest stay pending for a resume)")
    ap.add_argument("--no-resume", action="store_true",
                    help="ignore existing checkpoints and re-run "
                         "every cell")
    ap.add_argument("--render-only", action="store_true",
                    help="skip execution; re-render from existing "
                         "checkpoints")
    ap.add_argument("--list-specs", action="store_true",
                    help="list built-in campaign specs and exit")
    ap.add_argument("--list-cells", action="store_true",
                    help="expand the spec, list its cells, and exit")
    args = ap.parse_args(argv)

    if args.list_specs:
        for name in sorted(SPECS):
            spec = SPECS[name]()
            print(f"  {name:10s} {len(spec.expand()):3d} cells, "
                  f"{spec.workers} workers — {spec.description}")
        return 0

    try:
        spec = resolve_spec(args.spec)
        cells = spec.expand()
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    if args.list_cells:
        print(f"campaign {spec.name}: {len(cells)} cells")
        for cell in cells:
            print(f"  {cell.cell_id}")
        return 0

    run_dir = args.run_dir or os.path.join("campaign-runs", spec.name)
    print(f"campaign {spec.name}: {len(cells)} cells, run dir "
          f"{run_dir}")

    if args.render_only:
        from repro.campaign.runner import load_checkpoint
        outcomes = [ck for cell in cells
                    if (ck := load_checkpoint(run_dir, cell))]
        if not outcomes:
            print("error: no completed checkpoints to render")
            return 2
        paths = render_campaign(run_dir, spec.name, outcomes)
        for p in paths:
            print(f"  rendered {p}")
        return 0

    def _progress(outcome):
        mark = {"ok": "ok ", "degenerate": "DEG",
                "error": "ERR"}.get(outcome["status"], "?? ")
        line = f"  [{mark}] {outcome['id']}"
        if outcome.get("elapsed_s") is not None:
            line += f"  ({outcome['elapsed_s']:.2f}s)"
        if outcome["status"] != "ok" and outcome.get("error"):
            line += f"  {outcome['error']}"
        print(line)

    run = run_campaign(spec, run_dir, workers=args.workers,
                       resume=not args.no_resume,
                       max_cells=args.max_cells, progress=_progress)

    print(f"resumed: {run.resumed} cell(s) already complete")
    print(f"executed: {run.executed} cell(s) this invocation")
    if run.pending:
        print(f"pending: {run.pending} cell(s) deferred by "
              f"--max-cells; re-run to resume")
    statuses = ", ".join(f"{k}={v}" for k, v
                         in sorted(run.statuses.items()))
    print(f"statuses: {statuses or 'none'}")
    for path in run.merged_paths:
        print(f"  merged {path}")

    if run.pending == 0:
        for path in render_campaign(run_dir, spec.name, run.cells):
            print(f"  rendered {path}")

    errors = [d for d in run.cells if d["status"] == "error"]
    for doc in errors:
        print(f"ERROR {doc['id']}: {doc.get('error', '')}")
    return 1 if (errors or run.pending) else 0
