"""The shared ``--baseline`` regression gate for every bench.

Each of the three benches used to carry (or lack) its own baseline
check with subtly different semantics — sim_core had a private
``check_baseline``, kv_service and lossy_fabric had none, and a
missing baseline file was silently ignored.  This module is the one
copy:

* a bench declares its gated quantities as :class:`GateMetric`\\ s —
  a name, an extractor mapping a report document to labelled scalar
  values, a direction, and whether the metric is meaningful across
  mix modes;
* :func:`check_baseline` loads the baseline through
  :func:`~repro.campaign.artifacts.load_json_artifact`, so a missing
  or truncated baseline is a named :class:`BaselineError` — never a
  silent skip, never a raw ``JSONDecodeError``;
* when the run's ``mode`` differs from the baseline's (CI gates a
  ``--quick`` run against the committed full-mode report) the
  tolerance widens to at least ``cross_mode_tolerance`` and metrics
  flagged ``skip_cross_mode`` are skipped with a note — the quick
  mixes are structurally different, not regressed.

The numeric semantics of sim_core's old gate (20% tolerance, 35%
cross-mode) are the defaults, so migrating changed no thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.campaign.artifacts import BaselineError, load_json_artifact

__all__ = ["GateMetric", "GateResult", "check_baseline",
           "BaselineError"]

#: Extractor signature: report document -> [(label, value), ...].
Extractor = Callable[[Dict], List[Tuple[str, float]]]


@dataclass(frozen=True)
class GateMetric:
    """One gated quantity.

    ``extract`` returns labelled scalars from a report document; the
    gate compares labels present in *both* run and baseline.  Prefer
    dimensionless ratios (speedups, trends, fractions) — they travel
    across machines, absolute wall-clock does not.
    """

    name: str
    extract: Extractor
    higher_is_better: bool = True
    #: Skip when run and baseline mix modes differ (quick vs full).
    skip_cross_mode: bool = False


@dataclass
class GateResult:
    problems: List[str]
    notes: List[str]

    @property
    def ok(self) -> bool:
        return not self.problems


def check_baseline(report: Dict, baseline_path: str,
                   metrics: Sequence[GateMetric], *,
                   tolerance: float = 0.20,
                   cross_mode_tolerance: float = 0.35) -> GateResult:
    """Gate ``report`` against the committed baseline artifact.

    Raises :class:`BaselineError` if the baseline is missing or
    corrupt; returns the per-metric problems (regressions beyond
    tolerance) and notes (cross-mode skips, labels absent from one
    side).
    """
    baseline = load_json_artifact(baseline_path, what="baseline",
                                  error=BaselineError)
    cross_mode = report.get("mode") != baseline.get("mode")
    if cross_mode:
        tolerance = max(tolerance, cross_mode_tolerance)

    problems: List[str] = []
    notes: List[str] = []
    if cross_mode:
        notes.append(
            f"mode mismatch (run={report.get('mode')!r} vs baseline="
            f"{baseline.get('mode')!r}): tolerance widened to "
            f"{tolerance:.0%}")
    for metric in metrics:
        if cross_mode and metric.skip_cross_mode:
            notes.append(f"{metric.name}: skipped (not comparable "
                         f"across mix modes)")
            continue
        base = dict(metric.extract(baseline))
        for label, value in metric.extract(report):
            bval = base.get(label)
            if bval is None:
                notes.append(f"{metric.name} {label}: not in "
                             f"baseline, skipped")
                continue
            if metric.higher_is_better:
                floor = bval * (1.0 - tolerance)
                if value < floor:
                    problems.append(
                        f"{metric.name} {label}: {value:.2f} fell "
                        f">{tolerance:.0%} below baseline "
                        f"{bval:.2f} (floor {floor:.2f})")
            else:
                ceil = bval * (1.0 + tolerance)
                if value > ceil:
                    problems.append(
                        f"{metric.name} {label}: {value:.2f} rose "
                        f">{tolerance:.0%} above baseline "
                        f"{bval:.2f} (ceiling {ceil:.2f})")
    return GateResult(problems=problems, notes=notes)
