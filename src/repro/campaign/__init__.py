"""Sweep-campaign orchestration: declare a config matrix, fan it out
across worker processes, checkpoint per cell, resume after a kill,
merge into ``BENCH_*`` trajectories and render the paper's figures —
one ``python -m repro campaign`` command.

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` /
  :class:`CellSpec`, the built-in :data:`SPECS`, and
  :func:`resolve_spec`;
* :mod:`repro.campaign.cells` — the cell kinds (micro, dis, figure,
  kvtraffic, lossy, noop) dispatched by :func:`run_cell`;
* :mod:`repro.campaign.runner` — :func:`run_campaign`: checkpointed,
  resumable multi-process execution;
* :mod:`repro.campaign.artifacts` — :func:`atomic_write_json`, the
  named :class:`ArtifactError`/:class:`BaselineError`, and the
  deterministic cell merge;
* :mod:`repro.campaign.gate` — the shared ``--baseline`` regression
  gate every bench now goes through;
* :mod:`repro.campaign.render` — text tables plus the ASCII FCT CDF
  figures (including the lossy-fabric per-policy comparison).
"""

from repro.campaign.artifacts import (
    ArtifactError,
    BaselineError,
    atomic_write_json,
    load_json_artifact,
    merge_cells,
    merge_rows,
)
from repro.campaign.cells import KINDS, run_cell
from repro.campaign.gate import GateMetric, GateResult, check_baseline
from repro.campaign.render import render_campaign, render_cdf_figure
from repro.campaign.runner import (
    CampaignRun,
    checkpoint_path,
    load_checkpoint,
    run_campaign,
)
from repro.campaign.spec import (
    SPECS,
    CampaignSpec,
    CellSpec,
    resolve_spec,
)

__all__ = [
    "ArtifactError",
    "BaselineError",
    "CampaignRun",
    "CampaignSpec",
    "CellSpec",
    "GateMetric",
    "GateResult",
    "KINDS",
    "SPECS",
    "atomic_write_json",
    "check_baseline",
    "checkpoint_path",
    "load_checkpoint",
    "load_json_artifact",
    "merge_cells",
    "merge_rows",
    "render_campaign",
    "render_cdf_figure",
    "resolve_spec",
    "run_cell",
    "run_campaign",
]
