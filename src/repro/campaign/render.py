"""Render a completed campaign: tables, CDF figures, one report.

Everything is plain text (the repo has no plotting dependency): the
paper's figure tables go through
:func:`repro.experiments.report.render_table`, and the lossy-fabric
per-policy flow-completion-time comparison becomes an ASCII CDF
figure — log-latency x-axis, one marker per repair policy, a legend
with each policy's p50/p99 — written to
``<run_dir>/figures/lossy_<shape>.txt``.

Like the merge, rendering is a pure function of the completed cell
payloads; the combined ``campaign_report.txt`` is byte-stable across
resumes.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.report import render_table
from repro.util.stats import ConfidenceInterval

__all__ = ["render_campaign", "render_cdf_figure"]

_MARKERS = "ox+*#@%&"


def render_cdf_figure(series: Sequence[Tuple[str, List[List[float]]]],
                      title: str, *, width: int = 64,
                      height: int = 17) -> str:
    """ASCII CDF overlay: ``series`` is ``[(label, [[x_us, frac],
    ...]), ...]``; x is log-scaled latency, y the cumulative
    fraction."""
    xs = [pt[0] for _, cdf in series for pt in cdf if pt[0] > 0]
    if not xs:
        return f"{title}\n(no completed flows)"
    lo, hi = math.log10(min(xs)), math.log10(max(xs))
    if hi - lo < 1e-9:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def _frac_at(cdf: List[List[float]], x: float) -> float:
        frac = 0.0
        for bx, bfrac in cdf:
            if bx <= x:
                frac = bfrac
            else:
                break
        return frac

    legend = []
    nseries = max(1, len(series))
    for i, (label, cdf) in enumerate(series):
        mark = _MARKERS[i % len(_MARKERS)]
        for col in range(width):
            x = 10 ** (lo + (hi - lo) * col / (width - 1))
            frac = _frac_at(cdf, x)
            row = height - 1 - int(round(frac * (height - 1)))
            cur = grid[row][col]
            # Interleave markers where curves coincide, so an
            # overlapping series stays visible as a dashed overlay.
            if cur == " " or (cur != mark
                              and col % nseries == i % nseries):
                grid[row][col] = mark
        p50 = next((bx for bx, bf in cdf if bf >= 0.50), float("nan"))
        p99 = next((bx for bx, bf in cdf if bf >= 0.99), float("nan"))
        legend.append(f"  {mark}  {label:<20s} p50={p50:8.1f}us  "
                      f"p99={p99:8.1f}us")

    lines = [title]
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        ylab = (f"{frac:4.2f}" if r in (0, height // 2, height - 1)
                else "    ")
        lines.append(f"{ylab} |{''.join(row)}")
    lines.append("     +" + "-" * width)
    left, mid, right = (f"{10 ** lo:.1f}us",
                        f"{10 ** ((lo + hi) / 2):.1f}us",
                        f"{10 ** hi:.1f}us")
    pad = width - len(left) - len(mid) - len(right)
    half = max(1, pad // 2)
    lines.append("      " + left + " " * half + mid
                 + " " * max(1, pad - half) + right)
    lines.append("")
    lines.extend(legend)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-kind table builders
# ---------------------------------------------------------------------------

def _micro_table(rows: List[Dict]) -> str:
    table = [dict(op=p["op"], machine=p["machine"],
                  size_bytes=p["size_bytes"], z_us=p["z_us"],
                  w_us=p["w_us"], improvement_pct=p["improvement_pct"])
             for p in rows]
    table.sort(key=lambda r: (r["op"], r["machine"], r["size_bytes"]))
    return render_table(
        table, ["op", "machine", "size_bytes", "z_us", "w_us",
                "improvement_pct"],
        title="Microbenchmark cells: paired GET/PUT improvement")


def _dis_table(rows: List[Dict]) -> str:
    table = []
    for p in rows:
        if p.get("improvement_pct") is None:
            ci: Optional[ConfidenceInterval] = (
                ConfidenceInterval(mean=float("nan"), half_width=0.0,
                                   n=0, skipped=p.get("skipped", 0))
                if p.get("n") == 0 else None)
        else:
            ci = ConfidenceInterval(mean=p["improvement_pct"],
                                    half_width=p["ci_half_width"],
                                    n=p["n"],
                                    skipped=p.get("skipped", 0))
        table.append(dict(workload=p["workload"], threads=p["threads"],
                          nodes=p["nodes"], machine=p["machine"],
                          improvement=ci,
                          hit_rate=p.get("hit_rate")))
    table.sort(key=lambda r: (r["workload"], r["threads"]))
    return render_table(
        table, ["workload", "threads", "nodes", "machine",
                "improvement", "hit_rate"],
        title="DIS stressmark cells: improvement % (95% CI)")


def _kv_table(rows: List[Dict]) -> str:
    table = [dict(zipf_s=p["zipf_s"], shards=p["shards"],
                  requests=p["requests"], hit_rate=p["hit_rate"],
                  p50_us=p["p50_us"], p99_us=p["p99_us"],
                  slo_burn=(round(p["slo"]["summary"]["burn_rate"], 3)
                            if p.get("slo") else None),
                  slo_viol=(p["slo"]["summary"]["violations"]
                            if p.get("slo") else None))
             for p in rows]
    table.sort(key=lambda r: (r["zipf_s"], r["shards"]))
    return render_table(
        table, ["zipf_s", "shards", "requests", "hit_rate", "p50_us",
                "p99_us", "slo_burn", "slo_viol"],
        title="KV traffic cells: FCT quantiles and SLO burn")


def _lossy_table(rows: List[Dict]) -> str:
    table = [dict(shape=p["shape"], policy=p["policy"],
                  requests=p["requests"], failures=p["failures"],
                  p50_us=p["p50_us"], p99_us=p["p99_us"],
                  decisions=p["decisions"]) for p in rows]
    table.sort(key=lambda r: (r["shape"], r["policy"]))
    return render_table(
        table, ["shape", "policy", "requests", "failures", "p50_us",
                "p99_us", "decisions"],
        title="Lossy-fabric cells: per-policy FCT under link traces")


# ---------------------------------------------------------------------------
# The campaign renderer
# ---------------------------------------------------------------------------

def render_campaign(run_dir: str, campaign: str,
                    outcomes: Sequence[Dict]) -> List[str]:
    """Render every figure/table for the completed cells; returns the
    written paths (all under ``<run_dir>/figures/``, plus the
    combined ``campaign_report.txt``)."""
    from repro.campaign.artifacts import merge_rows

    figdir = os.path.join(run_dir, "figures")
    os.makedirs(figdir, exist_ok=True)
    by_kind = merge_rows(outcomes)
    paths: List[str] = []
    sections: List[str] = [f"campaign: {campaign}"]

    def _emit(name: str, text: str) -> None:
        path = os.path.join(figdir, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        paths.append(path)
        sections.append(text)

    payloads = {kind: [r["payload"] for r in rows
                       if r["status"] == "ok"]
                for kind, rows in by_kind.items()}

    if payloads.get("micro"):
        _emit("campaign_micro.txt", _micro_table(payloads["micro"]))
    if payloads.get("dis"):
        _emit("campaign_dis.txt", _dis_table(payloads["dis"]))
    for fig in payloads.get("figure", []):
        _emit(f"{fig['figure']}.txt",
              render_table(fig["rows"], fig["columns"],
                           title=fig["title"]))
    if payloads.get("kvtraffic"):
        kv = payloads["kvtraffic"]
        _emit("campaign_kvtraffic.txt", _kv_table(kv))
        series = sorted(
            ((f"zipf={p['zipf_s']} shards={p['shards']}", p["fct_cdf"])
             for p in kv), key=lambda s: s[0])
        _emit("kv_fct_cdf.txt",
              render_cdf_figure(series,
                                "KV traffic: flow completion time CDF"))
    if payloads.get("lossy"):
        lo = payloads["lossy"]
        _emit("campaign_lossy.txt", _lossy_table(lo))
        shapes = sorted({p["shape"] for p in lo})
        for shape in shapes:
            series = sorted(((p["policy"], p["fct_cdf"])
                             for p in lo if p["shape"] == shape),
                            key=lambda s: s[0])
            _emit(f"lossy_{shape}.txt",
                  render_cdf_figure(
                      series,
                      f"Lossy fabric ({shape} trace): FCT CDF by "
                      f"repair policy"))

    degenerate = [r for rows in by_kind.values() for r in rows
                  if r["status"] == "degenerate"]
    if degenerate:
        sections.append("degenerate cells (zero-elapsed baseline, "
                        "skipped):\n" + "\n".join(
                            f"  {r['id']}: {r.get('error', '')}"
                            for r in degenerate))

    report = os.path.join(run_dir, "campaign_report.txt")
    with open(report, "w", encoding="utf-8") as fh:
        fh.write("\n\n".join(sections) + "\n")
    paths.append(report)
    return paths
