"""The campaign runner: fan cells out, checkpoint, resume, merge.

Execution model:

* :func:`run_campaign` expands the spec to cells, drops the ones that
  already have a complete checkpoint under ``<run_dir>/cells/`` (the
  *resume* path), and fans the rest out over ``workers`` processes
  pulling from a shared queue;
* each worker runs a cell and publishes its outcome with an atomic
  tmp+rename write, so a campaign killed at any instant leaves only
  complete checkpoints — the next invocation picks up exactly where
  it died without re-executing finished cells;
* once every cell has an outcome, the checkpoints are merged into
  per-kind ``BENCH_campaign_<kind>.json`` trajectory files.  Merged
  documents are pure functions of ``(spec, seed)`` — wall-clock
  timing and the per-invocation nonce stay in the checkpoints — so a
  resumed campaign merges *byte-identical* output to an uninterrupted
  one (the resume regression test holds this bar).

Cell failures are per-cell: a cell that raises is checkpointed with
``status="error"`` (re-run on the next resume), and a degenerate
zero-elapsed baseline is ``status="degenerate"`` — recorded in the
merge, never aborting the rest of the matrix.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.artifacts import atomic_write_json, merge_cells
from repro.campaign.cells import DegenerateBaselineError, run_cell
from repro.campaign.spec import CampaignSpec, CellSpec

__all__ = ["CampaignRun", "run_campaign", "load_checkpoint",
           "checkpoint_path"]

#: Checkpoint statuses that count as complete (skipped on resume).
DONE_STATUSES = ("ok", "degenerate")


def checkpoint_path(run_dir: str, cell_id: str) -> str:
    return os.path.join(run_dir, "cells", f"{cell_id}.json")


def load_checkpoint(run_dir: str, cell: CellSpec) -> Optional[Dict]:
    """Return the cell's completed checkpoint, or ``None`` if it must
    (re)run.

    Missing, truncated, or id-mismatched checkpoints all mean "run the
    cell again" — a torn file from a pre-atomic writer is treated as
    absent, not as an error (contrast with ``--baseline`` artifacts,
    where corruption is a named failure)."""
    path = checkpoint_path(run_dir, cell.cell_id)
    try:
        import json
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("id") != cell.cell_id:
        return None
    if doc.get("status") not in DONE_STATUSES:
        return None
    return doc


def _execute_cell(cell: CellSpec) -> Dict:
    """Run one cell, mapping exceptions to per-cell statuses."""
    t0 = time.monotonic()
    outcome = {
        "id": cell.cell_id,
        "kind": cell.kind,
        "params": cell.param_dict(),
        "seed": cell.seed,
    }
    try:
        payload = run_cell(cell.kind, cell.param_dict(), cell.seed)
    except DegenerateBaselineError as exc:
        outcome.update(status="degenerate", payload=None,
                       error=str(exc))
    except Exception as exc:
        outcome.update(status="error", payload=None,
                       error=f"{type(exc).__name__}: {exc}",
                       trace=traceback.format_exc())
    else:
        outcome.update(status="ok", payload=payload)
    # Timing lives ONLY here, never in the merged trajectory files.
    outcome["elapsed_s"] = round(time.monotonic() - t0, 4)
    return outcome


def _worker(queue, run_dir: str) -> None:
    """Worker loop: pull cell dicts until the ``None`` sentinel."""
    while True:
        doc = queue.get()
        if doc is None:
            return
        cell = CellSpec.from_dict(doc)
        outcome = _execute_cell(cell)
        outcome["pid"] = os.getpid()
        atomic_write_json(checkpoint_path(run_dir, cell.cell_id),
                          outcome, sort_keys=True)


@dataclass
class CampaignRun:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    run_dir: str
    cells: List[Dict] = field(default_factory=list)   # outcome docs
    resumed: int = 0          # cells satisfied by existing checkpoints
    executed: int = 0         # cells run in this invocation
    pending: int = 0          # cells deferred by --max-cells
    merged_paths: List[str] = field(default_factory=list)

    @property
    def statuses(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for doc in self.cells:
            out[doc["status"]] = out.get(doc["status"], 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return self.pending == 0 and not any(
            doc["status"] == "error" for doc in self.cells)


def run_campaign(spec: CampaignSpec, run_dir: str, *,
                 workers: Optional[int] = None, resume: bool = True,
                 max_cells: Optional[int] = None,
                 progress=None) -> CampaignRun:
    """Run (or resume) a campaign under ``run_dir``.

    ``workers=0`` runs every cell in-process (useful for tests that
    monkeypatch cell kinds).  ``max_cells`` caps how many cells this
    invocation *executes* — remaining cells stay pending and the next
    invocation resumes them.  ``progress`` is an optional callable
    receiving one outcome doc per completed cell.
    """
    cells = spec.expand()
    if workers is None:
        workers = spec.workers
    os.makedirs(os.path.join(run_dir, "cells"), exist_ok=True)

    run = CampaignRun(campaign=spec.name, run_dir=run_dir)
    todo: List[CellSpec] = []
    for cell in cells:
        ck = load_checkpoint(run_dir, cell) if resume else None
        if ck is not None:
            run.resumed += 1
            run.cells.append(ck)
        else:
            todo.append(cell)

    if max_cells is not None and len(todo) > max_cells:
        run.pending = len(todo) - max_cells
        todo = todo[:max_cells]

    if todo:
        if workers <= 1 or len(todo) == 1:
            for cell in todo:
                outcome = _execute_cell(cell)
                outcome["pid"] = os.getpid()
                atomic_write_json(
                    checkpoint_path(run_dir, cell.cell_id),
                    outcome, sort_keys=True)
                run.cells.append(outcome)
                run.executed += 1
                if progress is not None:
                    progress(outcome)
        else:
            _fan_out(todo, run_dir, workers)
            for cell in todo:
                outcome = load_checkpoint(run_dir, cell)
                if outcome is None:
                    # error-status checkpoints are not "complete" for
                    # resume, but they are outcomes of this run.
                    outcome = _read_any_checkpoint(run_dir, cell)
                run.cells.append(outcome)
                run.executed += 1
                if progress is not None:
                    progress(outcome)

    # Manifest: statuses only, no timing — deterministic too.
    manifest = {
        "campaign": spec.name,
        "workers": workers,
        "n_cells": len(cells),
        "cells": sorted(
            ({"id": d["id"], "kind": d["kind"],
              "status": d["status"]} for d in run.cells),
            key=lambda d: d["id"]),
        "spec": spec.to_dict(),
    }
    atomic_write_json(os.path.join(run_dir, "campaign.json"),
                      manifest, indent=1, sort_keys=True)

    if run.pending == 0:
        run.merged_paths = merge_cells(run_dir, spec.name, run.cells)
    return run


def _read_any_checkpoint(run_dir: str, cell: CellSpec) -> Dict:
    """Read a checkpoint regardless of status; synthesize an error
    outcome if the worker died before writing one."""
    import json
    path = checkpoint_path(run_dir, cell.cell_id)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if isinstance(doc, dict) and doc.get("id") == cell.cell_id:
            return doc
    except (OSError, ValueError):
        pass
    return {"id": cell.cell_id, "kind": cell.kind,
            "params": cell.param_dict(), "seed": cell.seed,
            "status": "error", "payload": None,
            "error": "worker exited without writing a checkpoint"}


def _fan_out(todo: List[CellSpec], run_dir: str, workers: int) -> None:
    """Run cells across worker processes pulling from a shared queue."""
    method = ("fork" if "fork"
              in multiprocessing.get_all_start_methods() else "spawn")
    ctx = multiprocessing.get_context(method)
    queue = ctx.Queue()
    for cell in todo:
        queue.put(cell.to_dict())
    nworkers = min(workers, len(todo))
    for _ in range(nworkers):
        queue.put(None)
    procs = [ctx.Process(target=_worker, args=(queue, run_dir),
                         daemon=False)
             for _ in range(nworkers)]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
