"""Campaign specs: a config matrix declared as a small document.

A spec is a list of *legs*; each leg crosses a ``matrix`` of axes
(workload × machine params × shards × cache/fault knobs) with a list
of ``seeds`` and shares the leg's ``fixed`` parameters.  Expansion is
deterministic: axes are crossed in sorted-key order, seeds last, and
every cell gets a stable id derived from a canonical-JSON hash of its
``(kind, params, seed)`` triple — the same spec always expands to the
same cells, which is what makes checkpoint resume sound.

Specs round-trip through JSON (``python -m repro campaign --spec
my-sweep.json``); the built-in :data:`SPECS` cover the smoke matrix
CI runs nightly, the paper's figure tables, and the service-level
sweeps (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.campaign.artifacts import ArtifactError, load_json_artifact

_SLUG_RE = re.compile(r"[^a-zA-Z0-9.]+")


def _slug(text: str, limit: int = 48) -> str:
    return _SLUG_RE.sub("-", str(text)).strip("-")[:limit].rstrip("-")


@dataclass(frozen=True)
class CellSpec:
    """One cell of the matrix: a kind, its parameters, and a seed."""

    kind: str
    params: tuple          # canonical: sorted (key, json-str) pairs
    seed: int = 0

    @staticmethod
    def make(kind: str, params: Dict, seed: int = 0) -> "CellSpec":
        canon = tuple(sorted(
            (k, json.dumps(v, sort_keys=True)) for k, v in params.items()))
        return CellSpec(kind=kind, params=canon, seed=seed)

    def param_dict(self) -> Dict:
        return {k: json.loads(v) for k, v in self.params}

    @property
    def cell_id(self) -> str:
        """Stable, filesystem-safe id: readable slug + content hash."""
        blob = json.dumps({"kind": self.kind, "params": list(self.params),
                           "seed": self.seed}, sort_keys=True)
        digest = hashlib.sha1(blob.encode("utf-8")).hexdigest()[:10]
        bits = [self.kind]
        for key, value in self.params:
            v = json.loads(value)
            if isinstance(v, (str, int, float, bool)):
                bits.append(f"{_slug(key, 12)}{_slug(v, 12)}")
        bits.append(f"s{self.seed}")
        return f"{_slug('-'.join(bits), 70)}-{digest}"

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "params": self.param_dict(),
                "seed": self.seed, "id": self.cell_id}

    @staticmethod
    def from_dict(doc: Dict) -> "CellSpec":
        return CellSpec.make(doc["kind"], doc["params"],
                             int(doc.get("seed", 0)))


@dataclass
class CampaignSpec:
    """A named matrix of cells, expanded deterministically."""

    name: str
    legs: List[Dict] = field(default_factory=list)
    workers: int = 2
    description: str = ""

    def expand(self) -> List[CellSpec]:
        cells: List[CellSpec] = []
        seen: Dict[str, CellSpec] = {}
        for i, leg in enumerate(self.legs):
            kind = leg.get("kind")
            if not kind:
                raise ValueError(f"{self.name}: leg {i} has no 'kind'")
            fixed = dict(leg.get("fixed", {}))
            matrix = dict(leg.get("matrix", {}))
            seeds = list(leg.get("seeds", [0]))
            axes = sorted(matrix)
            for key in axes:
                if not isinstance(matrix[key], (list, tuple)):
                    raise ValueError(
                        f"{self.name}: leg {i} axis {key!r} must be a "
                        f"list of values, got {matrix[key]!r}")
            for combo in itertools.product(*(matrix[k] for k in axes)):
                params = dict(fixed)
                params.update(zip(axes, combo))
                for seed in seeds:
                    cell = CellSpec.make(kind, params, int(seed))
                    if cell.cell_id in seen:
                        raise ValueError(
                            f"{self.name}: duplicate cell "
                            f"{cell.cell_id} (legs overlap)")
                    seen[cell.cell_id] = cell
                    cells.append(cell)
        if not cells:
            raise ValueError(f"campaign {self.name!r} expands to zero "
                             f"cells")
        return cells

    def to_dict(self) -> Dict:
        return {"name": self.name, "description": self.description,
                "workers": self.workers, "legs": self.legs}

    @staticmethod
    def from_dict(doc: Dict) -> "CampaignSpec":
        if "name" not in doc or "legs" not in doc:
            raise ValueError("campaign spec needs 'name' and 'legs'")
        return CampaignSpec(name=doc["name"], legs=list(doc["legs"]),
                            workers=int(doc.get("workers", 2)),
                            description=doc.get("description", ""))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)


# ---------------------------------------------------------------------------
# Built-in specs
# ---------------------------------------------------------------------------

def _smoke_spec() -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        description="CI smoke matrix: every cell kind, ~1 minute "
                    "total on 2 workers",
        workers=2,
        legs=[
            {"kind": "micro",
             "matrix": {"op": ["get", "put"], "machine": ["gm", "lapi"]},
             "fixed": {"size_bytes": 4096, "reps": 5}},
            {"kind": "dis",
             "matrix": {"workload": ["pointer", "field"]},
             "fixed": {"threads": 8, "nodes": 2, "machine": "gm",
                       "preset": "small", "seeds": [1, 2]}},
            {"kind": "figure",
             "matrix": {"figure": ["fig7"]},
             "fixed": {"sizes": [1, 64, 1024, 8192], "reps": 3}},
            {"kind": "kvtraffic",
             "matrix": {"zipf_s": [0.9, 1.2]},
             "fixed": {"requests": 6000, "shards": 1,
                       "slo_target_us": 30.0, "slo_window_us": 500.0},
             "seeds": [7]},
            {"kind": "lossy",
             "matrix": {"policy": ["do_nothing", "disable_and_repair"]},
             "fixed": {"shape": "flap", "requests": 32000, "shards": 1,
                       "trace_seed": 7, "trace": "compressed"},
             "seeds": [9]},
        ])


def _paper_spec() -> CampaignSpec:
    return CampaignSpec(
        name="paper",
        description="The paper's figure tables as campaign cells "
                    "(quick scales; minutes on 4 workers)",
        workers=4,
        legs=[
            {"kind": "figure",
             "matrix": {"figure": ["fig6_get", "fig6_put", "fig7"]},
             "fixed": {"sizes": [1, 64, 1024, 16384, 262144, 4194304],
                       "reps": 5}},
            {"kind": "figure",
             "matrix": {"figure": ["fig8a", "fig8b"]},
             "fixed": {"scales": [[8, 2], [32, 8], [128, 32]],
                       "seed": 1}},
            {"kind": "figure",
             "matrix": {"figure": ["fig9a"]},
             "fixed": {"scales": [[8, 2], [32, 8], [128, 32]],
                       "seeds": [1, 2]}},
            {"kind": "figure",
             "matrix": {"figure": ["fig9b"]},
             "fixed": {"scales": [[4, 2], [32, 2], [128, 8]],
                       "seeds": [1, 2]}},
            {"kind": "figure",
             "matrix": {"figure": ["miss_overhead"]},
             "fixed": {"seeds": [1, 2, 3]}},
        ])


def _service_spec() -> CampaignSpec:
    return CampaignSpec(
        name="service",
        description="KV service sweep: skew x shards FCT/SLO grid "
                    "plus the lossy-fabric policy grid",
        workers=4,
        legs=[
            {"kind": "kvtraffic",
             "matrix": {"zipf_s": [0.8, 0.9, 1.05, 1.2],
                        "shards": [1, 2]},
             "fixed": {"requests": 100_000, "slo_target_us": 30.0,
                       "slo_window_us": 2000.0},
             "seeds": [7]},
            {"kind": "lossy",
             "matrix": {"shape": ["flap", "burst", "degrade", "gray"],
                        "policy": ["do_nothing", "retransmit_tuning",
                                   "disable_and_repair",
                                   "path_failover"]},
             "fixed": {"requests": 48_000, "shards": 1, "trace_seed": 7,
                       "trace": "compressed"},
             "seeds": [9]},
        ])


SPECS: Dict[str, Callable[[], CampaignSpec]] = {
    "smoke": _smoke_spec,
    "paper": _paper_spec,
    "service": _service_spec,
}


def resolve_spec(name_or_path: str) -> CampaignSpec:
    """A built-in spec name, inline JSON, or a JSON file path."""
    if name_or_path in SPECS:
        return SPECS[name_or_path]()
    text = name_or_path.strip()
    if text.startswith("{"):
        try:
            return CampaignSpec.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ValueError(f"inline campaign spec is not valid "
                             f"JSON: {exc}") from exc
    try:
        doc = load_json_artifact(name_or_path, what="campaign spec",
                                 hint="pass a spec file path, inline "
                                      "JSON, or a built-in name")
    except ArtifactError as exc:
        names = ", ".join(sorted(SPECS))
        raise ValueError(f"{exc} (built-in specs: {names})") from exc
    return CampaignSpec.from_dict(doc)
