"""Cell kinds: what one campaign matrix cell actually runs.

Every kind is a pure function of ``(params, seed)`` returning a
JSON-serializable *payload* with no wall-clock content, so a resumed
campaign merges byte-identical output (the runner keeps timing in the
checkpoint envelope, outside the merged payload).

Kinds:

* ``micro``     — one paired GET/PUT microbenchmark point (Figure 6/7
  machinery) at one (op, machine, size);
* ``dis``       — one DIS stressmark scale point: paired cache-off/on
  runs across ``params["seeds"]``, reported as a 95% CI;
* ``figure``    — one full figure runner from
  :mod:`repro.experiments.figures` (the paper's tables);
* ``kvtraffic`` — one open-loop Zipfian KV traffic run (FCT
  histograms, SLO windows);
* ``lossy``     — one (trace shape, repair policy) traffic run with
  its FCT CDF (the linkguardian-style comparison);
* ``noop``      — a deterministic placeholder used by the resume
  tests (optional ``sleep_s`` wall-time knob).

A degenerate cell (zero-elapsed baseline) raises
:class:`~repro.util.stats.DegenerateBaselineError`, which the runner
records per-cell instead of letting it abort the campaign.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import replace
from typing import Callable, Dict, List

from repro.util.stats import DegenerateBaselineError, mean_ci95

__all__ = ["KINDS", "run_cell", "DegenerateBaselineError"]


def _machine(name: str):
    from repro.network.params import MACHINES
    try:
        return MACHINES[name]
    except KeyError:
        names = ", ".join(sorted(MACHINES))
        raise ValueError(f"unknown machine {name!r} (expected one "
                         f"of: {names})") from None


# ---------------------------------------------------------------------------
# micro: one Figure-6/7 style point
# ---------------------------------------------------------------------------

def _micro_cell(params: Dict, seed: int) -> Dict:
    from repro.util.stats import improvement_pct
    from repro.workloads.micro import (MicroParams, get_roundtrip_us,
                                       put_overhead_us)

    op = params.get("op", "get")
    fns = {"get": get_roundtrip_us, "put": put_overhead_us}
    if op not in fns:
        raise ValueError(f"micro op must be get|put, got {op!r}")
    machine = _machine(params.get("machine", "gm"))
    size = int(params["size_bytes"])
    reps = int(params.get("reps", 10))
    z = fns[op](MicroParams(machine=machine, msg_bytes=size,
                            cache_enabled=False, reps=reps, seed=seed))
    w = fns[op](MicroParams(machine=machine, msg_bytes=size,
                            cache_enabled=True, reps=reps, seed=seed))
    return {
        "op": op,
        "machine": params.get("machine", "gm"),
        "size_bytes": size,
        "z_us": round(z, 4),
        "w_us": round(w, 4),
        "improvement_pct": round(improvement_pct(z, w), 3),
    }


# ---------------------------------------------------------------------------
# dis: one stressmark scale point, CI across seeds
# ---------------------------------------------------------------------------

def _dis_params(workload: str, threads: int, nodes: int, machine,
                preset: str, capacity: int, seed: int):
    from repro.experiments.figures import (_field_params,
                                           _neighborhood_params,
                                           _pointer_params,
                                           _update_params)
    from repro.workloads.dis.field import FieldParams, run_field
    from repro.workloads.dis.neighborhood import (NeighborhoodParams,
                                                  run_neighborhood)
    from repro.workloads.dis.pointer import PointerParams, run_pointer
    from repro.workloads.dis.update import UpdateParams, run_update

    tpn = threads // nodes
    if preset == "paper":
        makers = {
            "pointer": (lambda: _pointer_params(threads, nodes, machine,
                                                seed, capacity),
                        run_pointer),
            "update": (lambda: _update_params(threads, nodes, machine,
                                              seed), run_update),
            "neighborhood": (lambda: _neighborhood_params(
                threads, nodes, machine, seed, capacity),
                run_neighborhood),
            "field": (lambda: _field_params(threads, nodes, machine,
                                            seed), run_field),
        }
    elif preset == "small":
        makers = {
            "pointer": (lambda: PointerParams(
                machine=machine, nthreads=threads, threads_per_node=tpn,
                cache_capacity=capacity, seed=seed, nelems=1024, hops=8),
                run_pointer),
            "update": (lambda: UpdateParams(
                machine=machine, nthreads=threads, threads_per_node=tpn,
                seed=seed, nelems=1024, hops=64), run_update),
            "neighborhood": (lambda: NeighborhoodParams(
                machine=machine, nthreads=threads, threads_per_node=tpn,
                cache_capacity=capacity, seed=seed, dim=threads * 24,
                width=32, distance=10, samples=8, iterations=2),
                run_neighborhood),
            "field": (lambda: FieldParams(
                machine=machine, nthreads=threads, threads_per_node=tpn,
                seed=seed, nelems=128 * threads, ntokens=3), run_field),
        }
    else:
        raise ValueError(f"dis preset must be small|paper, got "
                         f"{preset!r}")
    if workload not in makers:
        names = ", ".join(sorted(makers))
        raise ValueError(f"unknown dis workload {workload!r} "
                         f"(expected one of: {names})")
    make, run = makers[workload]
    return make(), run


def _dis_cell(params: Dict, seed: int) -> Dict:
    from repro.experiments.harness import paired_run

    workload = params["workload"]
    threads = int(params.get("threads", 8))
    nodes = int(params.get("nodes", 2))
    machine_name = params.get("machine", "gm")
    preset = params.get("preset", "small")
    capacity = int(params.get("capacity", 100))
    seeds = [int(s) for s in params.get("seeds", [seed])]

    p, run = _dis_params(workload, threads, nodes,
                         _machine(machine_name), preset, capacity,
                         seeds[0])
    samples: List[float] = []
    hit_rates: List[float] = []
    skipped = 0
    for s in seeds:
        pair = paired_run(run, replace(p, seed=s))
        try:
            samples.append(pair.improvement_pct)
        except DegenerateBaselineError:
            skipped += 1
            continue
        hit_rates.append(pair.hit_rate)
    payload = {
        "workload": workload,
        "threads": threads,
        "nodes": nodes,
        "machine": machine_name,
        "preset": preset,
        "capacity": capacity,
        "n": len(samples),
        "skipped": skipped,
    }
    if samples:
        ci = mean_ci95(samples)
        payload.update(
            improvement_pct=round(ci.mean, 3),
            ci_half_width=round(ci.half_width, 3),
            hit_rate=round(sum(hit_rates) / len(hit_rates), 4),
        )
    else:
        payload.update(improvement_pct=None, ci_half_width=None,
                       hit_rate=None)
    return payload


# ---------------------------------------------------------------------------
# figure: one paper-figure runner (the experiments/figures.py tables)
# ---------------------------------------------------------------------------

def _figure_cell(params: Dict, seed: int) -> Dict:
    from repro.experiments import figures

    name = params["figure"]
    sizes = params.get("sizes")
    reps = int(params.get("reps", 10))
    scales = ([tuple(s) for s in params["scales"]]
              if params.get("scales") else None)
    seeds = tuple(params.get("seeds", (1, 2, 3)))
    runners: Dict[str, Callable[[], object]] = {
        "fig6_get": lambda: figures.fig6_get(sizes=sizes, reps=reps),
        "fig6_put": lambda: figures.fig6_put(sizes=sizes, reps=reps),
        "fig7": lambda: figures.fig7(sizes=sizes, reps=reps),
        "fig8a": lambda: figures.fig8("pointer", scales=scales,
                                      seed=int(params.get("seed", 1))),
        "fig8b": lambda: figures.fig8("neighborhood", scales=scales,
                                      seed=int(params.get("seed", 1))),
        "fig9a": lambda: figures.fig9("gm", scales=scales, seeds=seeds),
        "fig9b": lambda: figures.fig9("lapi", scales=scales,
                                      seeds=seeds),
        "miss_overhead": lambda: figures.miss_overhead(seeds=seeds),
    }
    if name not in runners:
        names = ", ".join(sorted(runners))
        raise ValueError(f"unknown figure {name!r} (expected one "
                         f"of: {names})")
    fig = runners[name]()
    return {
        "figure": name,
        "figure_id": fig.figure_id,
        "title": fig.title,
        "columns": list(fig.columns),
        "rows": fig.rows(),
    }


# ---------------------------------------------------------------------------
# kvtraffic / lossy: service-level traffic cells
# ---------------------------------------------------------------------------

def _traffic_params(params: Dict, seed: int, link_trace: str = "",
                    policy: str = ""):
    from repro.workloads.kv_traffic import TrafficParams
    return TrafficParams(
        nnodes=int(params.get("nnodes", 8)),
        nclients=int(params.get("nclients", 32)),
        requests=int(params.get("requests", 10_000)),
        zipf_s=float(params.get("zipf_s", 0.9)),
        seed=seed,
        machine=params.get("machine", "gm"),
        slo_target_us=float(params.get("slo_target_us", 0.0)),
        slo_window_us=float(params.get("slo_window_us", 5000.0)),
        link_trace=link_trace,
        repair_policy=policy,
    )


def _kv_cell(params: Dict, seed: int) -> Dict:
    from repro.workloads.kv_traffic import hist_cdf, run_kv_traffic

    nshards = int(params.get("shards", 1))
    res = run_kv_traffic(_traffic_params(params, seed), nshards,
                         mode=params.get("mode", "inproc"))
    q = res.quantiles()
    payload = {
        "zipf_s": float(params.get("zipf_s", 0.9)),
        "shards": nshards,
        "requests": res.requests,
        "gets": res.gets,
        "puts": res.puts,
        "conns": res.conns,
        "hit_rate": round(res.hit_rate, 4),
        "p50_us": round(q["p50_us"], 3),
        "p99_us": round(q["p99_us"], 3),
        "hit_p50_us": round(q["hit_p50_us"], 3),
        "miss_p50_us": round(q["miss_p50_us"], 3),
        "final_clock_us": res.now,
        "events": res.events,
        "fct_cdf": hist_cdf(res.hist),
    }
    slo = res.extra.get("slo")
    if slo is not None:
        payload["slo"] = {"target_us": slo["target_us"],
                          "window_us": slo["window_us"],
                          "windows": slo["windows"],
                          "summary": slo["summary"],
                          "anomalies": slo["anomalies"]}
    return payload


def _lossy_cell(params: Dict, seed: int) -> Dict:
    from repro.faults.trace import COMPRESSED_TRACE_KW, make_trace
    from repro.workloads.kv_traffic import hist_cdf, run_kv_traffic

    shape = params.get("shape", "flap")
    policy = params.get("policy", "")
    nshards = int(params.get("shards", 1))
    trace_kw = dict(params.get("trace_kw") or {})
    if not trace_kw and params.get("trace", "full") == "compressed":
        trace_kw = dict(COMPRESSED_TRACE_KW.get(shape, {}))
    tr = make_trace(shape, int(params.get("nnodes", 8)),
                    int(params.get("trace_seed", 0)), **trace_kw)
    res = run_kv_traffic(
        _traffic_params(params, seed, link_trace=tr.to_json(),
                        policy=policy),
        nshards, mode=params.get("mode", "inproc"))
    q = res.quantiles()
    pol = res.extra.get("policy") or {}
    return {
        "shape": shape,
        "policy": policy or "do_nothing",
        "shards": nshards,
        "requests": res.requests,
        "failures": sum(o["counts"]["failures"]
                        for o in res.extra["run"].outputs),
        "hit_rate": round(res.hit_rate, 4),
        "p50_us": round(q["p50_us"], 3),
        "p99_us": round(q["p99_us"], 3),
        "decisions": len(pol.get("decisions", [])),
        "decisions_digest": pol.get("digest", 0),
        "fct_cdf": hist_cdf(res.hist),
    }


# ---------------------------------------------------------------------------
# noop: deterministic placeholder for orchestration tests
# ---------------------------------------------------------------------------

def _noop_cell(params: Dict, seed: int) -> Dict:
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0:
        time.sleep(sleep_s)
    blob = json.dumps({"params": {k: v for k, v in sorted(params.items())
                                  if k != "sleep_s"},
                       "seed": seed}, sort_keys=True)
    digest = hashlib.sha1(blob.encode("utf-8")).hexdigest()
    return {"value": int(digest[:12], 16), "seed": seed}


KINDS: Dict[str, Callable[[Dict, int], Dict]] = {
    "micro": _micro_cell,
    "dis": _dis_cell,
    "figure": _figure_cell,
    "kvtraffic": _kv_cell,
    "lossy": _lossy_cell,
    "noop": _noop_cell,
}


def run_cell(kind: str, params: Dict, seed: int = 0) -> Dict:
    """Execute one cell; returns its deterministic payload."""
    try:
        fn = KINDS[kind]
    except KeyError:
        names = ", ".join(sorted(KINDS))
        raise ValueError(f"unknown cell kind {kind!r} (expected one "
                         f"of: {names})") from None
    return fn(params, seed)
