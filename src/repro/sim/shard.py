"""The sharded PDES core: N pooled event loops + conservative sync.

``Simulator(shards=N)`` returns a :class:`ShardedSimulator`: the
cluster's nodes are partitioned into ``N`` contiguous groups
(:mod:`repro.network.partition`), each group simulated by its own
pooled :class:`~repro.sim.simulator.Simulator` advancing under the
barrier-window protocol of :mod:`repro.sim.sync`.  Two backends run
the *identical* worker/coordinator code:

``mode="mp"``
    one OS process per shard (``multiprocessing``), reports and plans
    carried over :class:`~repro.network.shard_channel.PipeChannel`s —
    the throughput configuration on multi-core hosts;
``mode="inproc"``
    shards run round-robin in the calling interpreter — zero process
    overhead, trivially debuggable, and the cross-check that virtual
    time is independent of the transport.

A *shard program* is a picklable builder ``builder(ctx, **params)``
that populates a :class:`ShardContext` with simulated processes.  The
context is the only doorway to other shards: ``ctx.send`` stamps every
cross-shard message with ``send time + wire latency`` and *validates*
the latency against the lookahead matrix, so conservative horizons are
enforced, not assumed.  Full-runtime workloads (whose protocol
generators span initiator and target node state) still run on the
single pooled core — that core remains the determinism referee; the
sharded core hosts workloads written against message-passing shard
boundaries.

Determinism contract: for a fixed shard count, results are bit
identical between backends and across runs (delivery order is the
total ``(arrival, src, seq)`` order; grains execute in shard order in
inproc mode and are order-independent in mp mode because shards only
interact at round boundaries).  Across *different* shard counts, a
workload sees identical virtual-time behaviour provided its same-time
cross-shard effects commute (the discipline all bundled workloads and
the fuzz-corpus skeleton follow); the determinism suite asserts this
for shards ∈ {1, 2, 4}.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.shard_channel import ChannelClosed, PipeChannel
from repro.obs.events import (BARRIER_ARRIVE, BARRIER_RELEASE, EventLog,
                              SYNC_ROUND, XSHARD_RECV, XSHARD_SEND)
from repro.sim.errors import SimulationError
from repro.sim.event import Event
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.sync import (INF, BarrierPost, GrainPlan, ShardMessage,
                            ShardMetrics, ShardReport, SyncCoordinator,
                            SyncError, normalize_lookahead)

#: Slack when validating send latencies against the lookahead matrix
#: (floats only; latencies are exact sums of µs-scale model constants).
_LAT_EPS = 1e-9


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to instantiate its shard."""

    shard_id: int
    nshards: int
    lookahead: Tuple[Tuple[float, ...], ...]
    #: Flight recorder on/off for this shard's worker.  Off (the
    #: default) costs one branch per instrumentation site and keeps the
    #: run bit-identical to a build without the recorder.
    trace: bool = False
    #: Memory bound for the per-shard log (drop-newest).
    trace_max_events: Optional[int] = None


@dataclass
class ShardOutput:
    """What a worker hands back after the final drain."""

    shard: int
    outputs: Dict[str, Any]
    metrics: ShardMetrics
    events: int
    now: float
    #: Packed flight-recorder events (plain tuples; empty when tracing
    #: is off) — merged by :mod:`repro.obs.shardlog`.
    trace: List[tuple] = field(default_factory=list)
    trace_dropped: int = 0


@dataclass
class ShardedRun:
    """Aggregate result of :meth:`ShardedSimulator.run`."""

    nshards: int
    mode: str
    #: Per-shard ``ctx.publish`` dictionaries, indexed by shard.
    outputs: List[Dict[str, Any]]
    metrics: List[ShardMetrics]
    #: Total events across shards.
    events: int
    #: Final virtual clock (max over shards).
    now: float
    rounds: int
    msgs_routed: int
    wall_s: float
    #: Per-shard packed flight-recorder batches (``trace=True`` runs
    #: only; empty lists otherwise).  Merge with
    #: :func:`repro.obs.shardlog.merge_shard_events`.
    shard_events: List[List[tuple]] = field(default_factory=list)
    trace_dropped: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


class ShardContext:
    """A shard program's handle on its local core and its neighbours."""

    def __init__(self, spec: ShardSpec) -> None:
        self.shard = spec.shard_id
        self.nshards = spec.nshards
        self.sim = Simulator(pooled=True)
        self.metrics = ShardMetrics(shard=spec.shard_id)
        #: Per-shard flight recorder.  Disabled unless the spec asked
        #: for tracing; emits are pure list appends (never simulator
        #: events), so tracing leaves virtual time bit-identical.
        self.log = EventLog(enabled=spec.trace,
                            max_events=spec.trace_max_events)
        self.outputs: Dict[str, Any] = {}
        self._lookahead_row = spec.lookahead[spec.shard_id]
        self._outbox: List[ShardMessage] = []
        self._posts: List[BarrierPost] = []
        self._handlers: Dict[str, Callable[[Any], None]] = {}
        self._seq = 0
        self._barrier_gates: Dict[str, Event] = {}
        self._procs: List[Process] = []

    # -- building -----------------------------------------------------

    def set_nodes(self, lo: int, hi: int) -> None:
        """Record the ``[lo, hi)`` node range this shard simulates
        (metrics/reporting only — the context does not interpret node
        numbers)."""
        self.metrics.node_lo = lo
        self.metrics.node_hi = hi

    def spawn(self, gen, name: str = "") -> Process:
        """Spawn a tracked simulated process.  Tracked processes are
        checked at shutdown: one still alive after global termination
        means the workload deadlocked (e.g. waiting on a reply that
        never came), which is reported instead of silently dropped."""
        proc = self.sim.process(gen, name=name)
        self._procs.append(proc)
        return proc

    def on_message(self, kind: str,
                   handler: Callable[[Any], None]) -> None:
        """Register ``handler(payload)`` for incoming ``kind``
        messages; it runs at the message's arrival time."""
        if kind in self._handlers:
            raise SimulationError(f"duplicate handler for {kind!r}")
        self._handlers[kind] = handler

    def publish(self, key: str, value: Any) -> None:
        """Export a (picklable) result; lands in ``ShardedRun.outputs``."""
        self.outputs[key] = value

    # -- messaging ----------------------------------------------------

    def send(self, dst: int, kind: str, payload: Any = None, *,
             latency: float, nbytes: int = 0) -> None:
        """Send a message arriving at ``now + latency``.

        ``latency`` models the one-way wire time and must be at least
        the lookahead toward ``dst`` — that bound is what lets the
        destination shard run ahead safely, so violating it is an
        error, not a slowdown.  Same-shard destinations take the same
        schedule-at-arrival path (no shortcut), keeping a workload's
        event pattern invariant under re-partitioning.
        """
        if latency < 0:
            raise SimulationError(f"negative send latency {latency}")
        arrival = self.sim.now + latency
        if dst == self.shard:
            self._schedule_delivery(kind, payload, arrival)
            return
        if not 0 <= dst < self.nshards:
            raise SimulationError(
                f"send to unknown shard {dst} (nshards={self.nshards})")
        la = self._lookahead_row[dst]
        if latency + _LAT_EPS < la:
            raise SyncError(
                f"shard {self.shard}->{dst}: latency {latency:.6f} µs "
                f"below lookahead {la:.6f} µs — the partition promised "
                "no faster path exists; fix the lookahead matrix or the "
                "workload's latency model")
        self._seq += 1
        self._outbox.append(ShardMessage(
            arrival=arrival, dst=dst, kind=kind, src=self.shard,
            seq=self._seq, nbytes=nbytes, payload=payload))
        self.metrics.msgs_sent += 1
        if self.log.enabled:
            self.log.emit(self.sim.now, XSHARD_SEND, src=self.shard,
                          seq=self._seq, dst=dst, msg=kind,
                          arrival=arrival, nbytes=nbytes)

    def _schedule_delivery(self, kind: str, payload: Any,
                           arrival: float) -> None:
        handler = self._handlers.get(kind)
        if handler is None:
            raise SimulationError(
                f"shard {self.shard}: no handler for message {kind!r}")
        delay = arrival - self.sim.now
        if delay < 0:
            raise SyncError(
                f"shard {self.shard}: {kind!r} arrival {arrival:.6f} is "
                f"in the past (now={self.sim.now:.6f}) — conservative "
                "horizon violated")
        ev = self.sim.sleep(delay, value=payload)
        ev.add_callback(lambda e, h=handler: h(e._value))

    # -- collectives --------------------------------------------------

    def barrier_arrive(self, name: str, expected: int, cost: float,
                       count: int = 1) -> Event:
        """Arrive at global collective ``name`` and get the gate event
        that fires at the coordinated release time (``max`` arrival
        across all shards ``+ cost`` — the pooled core's counter
        barrier semantics).  ``expected`` counts participants across
        the whole run; names are one-shot (use a generation suffix for
        repeated barriers)."""
        gate = self._barrier_gates.get(name)
        if gate is None:
            gate = self.sim.event(name=f"shardbar:{name}")
            self._barrier_gates[name] = gate
        self._posts.append(BarrierPost(
            name=name, count=count, t_last=self.sim.now,
            expected=expected, cost=cost))
        if self.log.enabled:
            self.log.emit(self.sim.now, BARRIER_ARRIVE, name=name,
                          expected=expected, count=count)
        return gate

    def _apply_release(self, name: str, t_rel: float) -> None:
        gate = self._barrier_gates.pop(name, None)
        if gate is None:
            # No local participants — releases are broadcast.
            return
        delay = t_rel - self.sim.now
        if delay < 0:
            raise SyncError(
                f"shard {self.shard}: release of {name!r} at "
                f"{t_rel:.6f} is in the past (now={self.sim.now:.6f})")
        gate.succeed(value=t_rel, delay=delay)
        if self.log.enabled:
            self.log.emit(t_rel, BARRIER_RELEASE, name=name)

    # -- worker internals ---------------------------------------------

    def _take_outbox(self) -> List[ShardMessage]:
        out, self._outbox = self._outbox, []
        return out

    def _take_posts(self) -> List[BarrierPost]:
        posts, self._posts = self._posts, []
        return posts

    def _check_quiescent(self) -> None:
        stuck = [p.name for p in self._procs if p.is_alive]
        if stuck:
            preview = ", ".join(stuck[:5])
            raise SimulationError(
                f"shard {self.shard}: {len(stuck)} process(es) still "
                f"blocked after global termination ({preview}...) — "
                "the workload deadlocked across shards")


class ShardWorkerState:
    """Grain executor — the same object drives both backends."""

    def __init__(self, spec: ShardSpec, builder: Callable,
                 params: Dict[str, Any]) -> None:
        self.ctx = ShardContext(spec)
        builder(self.ctx, **params)

    def first_report(self) -> ShardReport:
        ctx = self.ctx
        return ShardReport(shard=ctx.shard, next_time=ctx.sim.peek(),
                           sent=ctx._take_outbox(),
                           barriers=ctx._take_posts())

    def run_grain(self, plan: GrainPlan) -> ShardReport:
        ctx = self.ctx
        sim = ctx.sim
        m = ctx.metrics
        log = ctx.log
        t0 = time.perf_counter()
        for name, t_rel in plan.releases:
            ctx._apply_release(name, t_rel)
        if log.enabled:
            for msg in plan.deliver:
                # The (src, seq) pair is the join key linking this
                # half to the sender's xshard_send.
                log.emit(msg.arrival, XSHARD_RECV, src=msg.src,
                         seq=msg.seq, msg=msg.kind, nbytes=msg.nbytes)
        for msg in plan.deliver:
            m.msgs_recv += 1
            ctx._schedule_delivery(msg.kind, msg.payload, msg.arrival)
        backlog = sim.pending
        if backlog > m.max_backlog:
            m.max_backlog = backlog
        t_clock = sim.now
        n = sim.run_before(plan.horizon)
        m.grains += 1
        m.events += n
        if n == 0:
            m.stall_grains += 1
        if log.enabled:
            attrs = {"round": plan.round, "events": n,
                     "delivered": len(plan.deliver),
                     "dur": sim.now - t_clock, "stall": n == 0}
            if plan.horizon != INF:
                attrs["horizon"] = plan.horizon
            log.emit(t_clock, SYNC_ROUND, **attrs)
        m.busy_s += time.perf_counter() - t0
        return ShardReport(shard=ctx.shard, next_time=sim.peek(),
                           sent=ctx._take_outbox(),
                           barriers=ctx._take_posts(), events=n)

    def finish(self) -> ShardOutput:
        ctx = self.ctx
        ctx._check_quiescent()
        ctx.metrics.final_clock_us = ctx.sim.now
        trace = [(e.t, e.kind, e.op, e.thread, e.node, e.attrs)
                 for e in ctx.log.events]
        return ShardOutput(shard=ctx.shard, outputs=ctx.outputs,
                           metrics=ctx.metrics,
                           events=ctx.sim.events_processed,
                           now=ctx.sim.now, trace=trace,
                           trace_dropped=ctx.log.dropped_events)


def _worker_main(conn, spec: ShardSpec, builder: Callable,
                 params: Dict[str, Any]) -> None:
    """Child-process entry point of the mp backend."""
    channel = PipeChannel(conn)
    try:
        state = ShardWorkerState(spec, builder, params)
        channel.send(("report", state.first_report()))
        while True:
            tag, body = channel.recv()
            if tag == "finish":
                channel.send(("output", state.finish()))
                return
            if tag != "plan":  # pragma: no cover - protocol guard
                raise SyncError(f"worker got unexpected {tag!r}")
            channel.send(("report", state.run_grain(body)))
    except BaseException:
        try:
            channel.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        channel.close()


class ShardedError(SimulationError):
    """A shard worker died; carries its traceback."""


class ShardedSimulator:
    """Coordinator over ``nshards`` conservative shard workers.

    Not a :class:`Simulator` subclass on purpose: it has no single
    clock or heap, and every capability it offers goes through
    :meth:`run`.  Constructed directly or via ``Simulator(shards=N)``.
    """

    def __init__(self, nshards: int, lookahead=None, mode: str = "mp",
                 mp_context: Optional[str] = None, trace: bool = False,
                 trace_max_events: Optional[int] = None) -> None:
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        if mode not in ("mp", "inproc"):
            raise ValueError(f"unknown shard backend {mode!r}")
        self.nshards = nshards
        self.mode = mode
        self.lookahead = lookahead
        self.trace = trace
        self.trace_max_events = trace_max_events
        if mp_context is None:
            mp_context = ("fork" if "fork"
                          in multiprocessing.get_all_start_methods()
                          else "spawn")
        self.mp_context = mp_context
        self.last_run: Optional[ShardedRun] = None

    # -- entry point --------------------------------------------------

    def run(self, builder: Callable, params: Optional[Dict[str, Any]] = None,
            *, lookahead=None) -> ShardedRun:
        """Build every shard with ``builder(ctx, **params)`` and drive
        the synchronization rounds to global termination."""
        params = dict(params or {})
        la = lookahead if lookahead is not None else self.lookahead
        if la is None:
            raise SyncError(
                "a lookahead (scalar µs or SxS matrix) is required: "
                "derive one with repro.network.partition.lookahead_matrix")
        matrix = normalize_lookahead(la, self.nshards)
        frozen = tuple(tuple(row) for row in matrix)
        specs = [ShardSpec(shard_id=i, nshards=self.nshards,
                           lookahead=frozen, trace=self.trace,
                           trace_max_events=self.trace_max_events)
                 for i in range(self.nshards)]
        coord = SyncCoordinator(matrix, self.nshards)
        t0 = time.perf_counter()
        if self.mode == "inproc" or self.nshards == 1:
            outputs = self._drive_inproc(coord, specs, builder, params)
        else:
            outputs = self._drive_mp(coord, specs, builder, params)
        wall = time.perf_counter() - t0
        outputs.sort(key=lambda o: o.shard)
        for out in outputs:
            out.metrics.channel_bytes = coord.channel_bytes[out.shard]
        run = ShardedRun(
            nshards=self.nshards, mode=self.mode,
            outputs=[o.outputs for o in outputs],
            metrics=[o.metrics for o in outputs],
            events=sum(o.events for o in outputs),
            now=max((o.now for o in outputs), default=0.0),
            rounds=coord.rounds, msgs_routed=coord.msgs_routed,
            wall_s=wall,
            shard_events=[o.trace for o in outputs],
            trace_dropped=sum(o.trace_dropped for o in outputs))
        self.last_run = run
        return run

    # -- backends -----------------------------------------------------

    def _drive_inproc(self, coord, specs, builder, params):
        workers = [ShardWorkerState(spec, builder, params)
                   for spec in specs]
        reports = [w.first_report() for w in workers]
        while True:
            plans = coord.round(reports)
            if plans[0].done:
                return [w.finish() for w in workers]
            reports = [w.run_grain(plan)
                       for w, plan in zip(workers, plans)]

    def _drive_mp(self, coord, specs, builder, params):
        ctx = multiprocessing.get_context(self.mp_context)
        channels: List[PipeChannel] = []
        procs = []
        try:
            for spec in specs:
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec, builder, params),
                    name=f"shard-{spec.shard_id}", daemon=True)
                proc.start()
                child_conn.close()
                channels.append(PipeChannel(parent_conn))
                procs.append(proc)
            reports = [self._recv_report(ch, i)
                       for i, ch in enumerate(channels)]
            while True:
                plans = coord.round(reports)
                if plans[0].done:
                    for ch in channels:
                        ch.send(("finish", None))
                    return [self._recv_output(ch, i)
                            for i, ch in enumerate(channels)]
                # Send every plan before collecting any report so the
                # workers' grains overlap — this is where the
                # parallelism lives.
                for ch, plan in zip(channels, plans):
                    ch.send(("plan", plan))
                reports = [self._recv_report(ch, i)
                           for i, ch in enumerate(channels)]
        finally:
            for ch in channels:
                try:
                    ch.close()
                except Exception:
                    pass
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hang guard
                    proc.terminate()
                    proc.join(timeout=5.0)

    @staticmethod
    def _recv(channel: PipeChannel, shard: int, want: str):
        try:
            tag, body = channel.recv()
        except ChannelClosed as exc:
            raise ShardedError(
                f"shard {shard} worker exited unexpectedly") from exc
        if tag == "error":
            raise ShardedError(f"shard {shard} failed:\n{body}")
        if tag != want:  # pragma: no cover - protocol guard
            raise ShardedError(
                f"shard {shard}: expected {want!r}, got {tag!r}")
        return body

    def _recv_report(self, channel, shard) -> ShardReport:
        return self._recv(channel, shard, "report")

    def _recv_output(self, channel, shard) -> ShardOutput:
        return self._recv(channel, shard, "output")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedSimulator nshards={self.nshards} "
                f"mode={self.mode!r}>")
