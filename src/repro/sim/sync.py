"""Conservative time synchronization for the sharded PDES core.

The sharded simulator (:mod:`repro.sim.shard`) partitions a cluster
into per-node-group shards, each advancing its own pooled event loop.
This module is the *synchronization protocol* those shards follow, kept
separate from process plumbing so that the in-process backend and the
``multiprocessing`` backend execute the **identical** algorithm — the
mechanism behind the sharded core's determinism guarantee (same
workload, same shard count: bit-identical virtual-time results whether
shards run as worker processes or sequentially in one interpreter).

The protocol is a **barrier-window (bounded-lag / YAWNS-style) advance**
rather than null messages:

* every round, shard *i* reports its earliest pending event time
  ``t_i`` plus the messages it produced during the previous grain;
* the coordinator routes the messages and computes each shard's safe
  **horizon**::

      horizon_i = min over j != i of (t_j_effective + L[j][i])

  where ``L[j][i]`` is the *lookahead*: a lower bound on the latency of
  any message shard ``j`` can send shard ``i`` (derived from per-hop
  wire latency — see :func:`repro.network.partition.lookahead_matrix`)
  and ``t_j_effective`` folds in messages and collective releases being
  delivered to ``j`` this round **and** the earliest time ``j`` could
  be woken by a message sent during this very window (the transitive
  fixpoint ``eff[j] = min(eff[j], min_k(eff[k] + L[k][j]))`` — without
  it a drained shard reads as ``inf`` and its reply to a write we are
  about to send would land in our past);
* each shard then processes every local event strictly below its
  horizon.  Any message sent during that grain is sent at some time
  ``t >= t_j_effective`` and arrives at ``t + latency >= horizon_i``,
  so no shard ever receives a message in its past — conservative by
  construction, no rollback ever needed.

Why windows and not null messages: with ``S`` shards a null-message
scheme costs ``O(S^2)`` messages *per advance* and stalls on low
lookahead cycles; the windowed all-reduce is one gather/scatter per
round through the coordinator, which for the small shard counts a
single host runs (2–16) is both cheaper and much simpler to prove
deterministic.  docs/PERFORMANCE.md discusses the trade-off.

Global collectives (the ``upc_barrier`` at the end of every DIS
stressmark) are resolved by the coordinator: shards post arrival
counts and times; once all expected participants arrived, the release
fires at ``max(arrival times) + cost`` in every shard — exactly the
pooled core's counter-barrier semantics, so sharded and pooled runs
release at identical virtual times.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

INF = float("inf")


class SyncError(Exception):
    """Protocol violation (bad lookahead, partial barrier, ...)."""


class SyncDeadlock(SyncError):
    """Every shard drained while a collective was still incomplete."""


@dataclass(frozen=True)
class ShardMessage:
    """One timestamped cross-shard message.

    ``arrival`` is absolute virtual time — the sender stamped it as
    ``send_time + wire latency`` where the latency is at least the
    lookahead between the two shards (validated at send time).
    Delivery order at the receiver is the total order
    ``(arrival, src, seq)``, which is independent of transport
    (pipe vs in-process) and of arrival interleaving.
    """

    arrival: float
    dst: int
    kind: str
    src: int
    seq: int
    #: Modeled wire bytes (metrics only; the real cost is the pickled
    #: size accounted by the coordinator).
    nbytes: int = 0
    payload: Any = None

    @property
    def order_key(self) -> Tuple[float, int, int]:
        return (self.arrival, self.src, self.seq)


@dataclass(frozen=True)
class BarrierPost:
    """Arrival notifications for one named global collective."""

    name: str
    #: Participants that arrived at this shard since the last report.
    count: int
    #: Latest local arrival time among them.
    t_last: float
    #: Total participants expected across all shards.
    expected: int
    #: Network cost charged between last arrival and release.
    cost: float


@dataclass
class ShardReport:
    """What a shard tells the coordinator at a round boundary."""

    shard: int
    #: Earliest pending local event time (``inf`` when drained).
    next_time: float
    sent: List[ShardMessage] = field(default_factory=list)
    barriers: List[BarrierPost] = field(default_factory=list)
    #: Events processed during the grain that produced this report.
    events: int = 0
    #: Worker-side failure (traceback text); aborts the run.
    error: Optional[str] = None


@dataclass
class GrainPlan:
    """What the coordinator tells a shard to do next."""

    horizon: float
    deliver: List[ShardMessage] = field(default_factory=list)
    #: ``(barrier name, absolute release time)`` pairs.
    releases: List[Tuple[str, float]] = field(default_factory=list)
    done: bool = False
    #: Coordinator round number that produced this plan — the global
    #: id the flight recorder's ``sync_round`` annotations carry, so
    #: grains from different shards line up in the merged timeline.
    round: int = 0


@dataclass
class ShardMetrics:
    """Per-shard accounting surfaced through ``metrics.summary()``.

    Lives in the sim layer (not :mod:`repro.runtime.metrics`) so the
    shard workers need no runtime import; the runtime merges a list of
    these into its summary rollups.
    """

    shard: int = 0
    #: Nodes this shard owns (``[lo, hi)``).
    node_lo: int = 0
    node_hi: int = 0
    events: int = 0
    #: Synchronization rounds this shard participated in.
    grains: int = 0
    #: Rounds in which the shard had nothing to do before its horizon —
    #: pure conservative-sync stalls.
    stall_grains: int = 0
    msgs_sent: int = 0
    msgs_recv: int = 0
    #: Serialized bytes of inter-shard traffic addressed to this shard
    #: (coordinator-side accounting; identical for both backends).
    channel_bytes: int = 0
    #: Peak pending-event backlog observed at grain boundaries.
    max_backlog: int = 0
    final_clock_us: float = 0.0
    #: Wall-clock the worker spent executing grains (mp mode: excludes
    #: time blocked on the coordinator).
    busy_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "nodes": [self.node_lo, self.node_hi],
            "events": self.events,
            "grains": self.grains,
            "stall_grains": self.stall_grains,
            "msgs_sent": self.msgs_sent,
            "msgs_recv": self.msgs_recv,
            "channel_bytes": self.channel_bytes,
            "max_backlog": self.max_backlog,
            "final_clock_us": self.final_clock_us,
            "busy_s": round(self.busy_s, 6),
        }


class _BarrierState:
    """Coordinator-side tally for one named collective."""

    __slots__ = ("expected", "cost", "arrived", "t_last", "released")

    def __init__(self, expected: int, cost: float) -> None:
        self.expected = expected
        self.cost = cost
        self.arrived = 0
        self.t_last = -INF
        self.released = False


def normalize_lookahead(lookahead, nshards: int) -> List[List[float]]:
    """A scalar or matrix lookahead -> validated ``S x S`` matrix."""
    if isinstance(lookahead, (int, float)):
        la = [[float(lookahead)] * nshards for _ in range(nshards)]
    else:
        la = [[float(x) for x in row] for row in lookahead]
    if len(la) != nshards or any(len(row) != nshards for row in la):
        raise SyncError(
            f"lookahead matrix must be {nshards}x{nshards}")
    for i in range(nshards):
        for j in range(nshards):
            if i != j and la[i][j] <= 0.0:
                raise SyncError(
                    f"lookahead[{i}][{j}] must be > 0 for conservative "
                    f"sync (got {la[i][j]})")
    return la


class SyncCoordinator:
    """Pure-state round engine: ``reports in -> plans out``.

    Runs in the parent for the multiprocessing backend and inline for
    the in-process backend; either way the arithmetic (and therefore
    every horizon and release time) is identical.
    """

    def __init__(self, lookahead, nshards: int) -> None:
        self.nshards = nshards
        self.lookahead = normalize_lookahead(lookahead, nshards)
        self.rounds = 0
        self._barriers: Dict[str, _BarrierState] = {}
        #: Per-destination serialized channel bytes (both backends use
        #: this number so metrics agree between inproc and mp runs).
        self.channel_bytes: List[int] = [0] * nshards
        self.msgs_routed = 0

    # -- collectives ----------------------------------------------------

    def _post(self, post: BarrierPost) -> None:
        st = self._barriers.get(post.name)
        if st is None:
            st = _BarrierState(post.expected, post.cost)
            self._barriers[post.name] = st
        elif st.expected != post.expected:
            raise SyncError(
                f"collective {post.name!r}: expected-count mismatch "
                f"({st.expected} vs {post.expected})")
        if st.released:
            raise SyncError(
                f"collective {post.name!r}: arrival after release "
                "(reuse a fresh name per generation)")
        st.arrived += post.count
        if post.t_last > st.t_last:
            st.t_last = post.t_last
        if st.arrived > st.expected:
            raise SyncError(
                f"collective {post.name!r}: {st.arrived} arrivals for "
                f"{st.expected} expected")

    def _drain_releases(self) -> List[Tuple[str, float]]:
        out = []
        for name, st in self._barriers.items():
            if not st.released and st.arrived == st.expected:
                st.released = True
                out.append((name, st.t_last + st.cost))
        return out

    def pending_collectives(self) -> List[str]:
        return sorted(n for n, st in self._barriers.items()
                      if not st.released)

    # -- the round ------------------------------------------------------

    def round(self, reports: Sequence[ShardReport]) -> List[GrainPlan]:
        """One synchronization round (see module docstring)."""
        S = self.nshards
        if len(reports) != S:
            raise SyncError(f"expected {S} reports, got {len(reports)}")
        self.rounds += 1
        for r in reports:
            if r.error is not None:
                raise SyncError(
                    f"shard {r.shard} failed:\n{r.error}")

        # Route messages; delivery lists are sorted by the
        # transport-independent total order.
        deliver: List[List[ShardMessage]] = [[] for _ in range(S)]
        for r in reports:
            for msg in r.sent:
                if not 0 <= msg.dst < S:
                    raise SyncError(f"message to unknown shard {msg.dst}")
                deliver[msg.dst].append(msg)
            for post in r.barriers:
                self._post(post)
        for batch in deliver:
            batch.sort(key=lambda m: m.order_key)
            self.msgs_routed += len(batch)
        releases = self._drain_releases()

        # Effective floor per shard: its own queue, incoming messages,
        # and collective releases all bound where it can next act.
        eff = [INF] * S
        for r in reports:
            eff[r.shard] = min(eff[r.shard], r.next_time)
        for i, batch in enumerate(deliver):
            if batch:
                eff[i] = min(eff[i], batch[0].arrival)
        if releases:
            t_rel = min(t for _, t in releases)
            # Releases are broadcast: every shard may act at t_rel.
            for i in range(S):
                eff[i] = min(eff[i], t_rel)

        # A shard with an empty queue is not inert: a message sent
        # *during this window* can wake it and make it reply — so its
        # floor is also bounded by the earliest message any shard could
        # send it, transitively (the classic conditional-event chain:
        # i sends at eff[i], j's reply lands at eff[i]+L[i][j]+L[j][i],
        # which must stay >= i's horizon).  Relax to the least fixpoint
        #     eff[j] = min(eff[j], min_k!=j (eff[k] + L[k][j]))
        # — Bellman-Ford over the lookahead graph; strictly positive
        # off-diagonal lookahead guarantees convergence.
        changed = True
        while changed:
            changed = False
            for j in range(S):
                floor = eff[j]
                for k in range(S):
                    if k != j:
                        cand = eff[k] + self.lookahead[k][j]
                        if cand < floor:
                            floor = cand
                if floor < eff[j]:
                    eff[j] = floor
                    changed = True

        if all(t == INF for t in eff):
            stuck = self.pending_collectives()
            if stuck:
                raise SyncDeadlock(
                    "all shards drained with incomplete collective(s) "
                    f"{stuck}: "
                    + "; ".join(
                        f"{n}: {self._barriers[n].arrived}/"
                        f"{self._barriers[n].expected} arrived"
                        for n in stuck))
            return [GrainPlan(horizon=INF, done=True, round=self.rounds)
                    for _ in range(S)]

        plans = []
        for i in range(S):
            if S == 1:
                horizon = INF
            else:
                horizon = min(
                    (eff[j] + self.lookahead[j][i]
                     for j in range(S) if j != i),
                    default=INF)
            batch = deliver[i]
            if batch:
                blob = len(pickle.dumps(batch,
                                        protocol=pickle.HIGHEST_PROTOCOL))
                self.channel_bytes[i] += blob
            plans.append(GrainPlan(horizon=horizon, deliver=batch,
                                   releases=list(releases),
                                   round=self.rounds))
        return plans
