"""Events: one-shot synchronization points on the virtual clock.

An :class:`Event` has three states:

``PENDING``
    created, nobody has decided its outcome yet;
``SCHEDULED``
    outcome decided (:meth:`Event.succeed` / :meth:`Event.fail`), queued
    on the simulator heap, callbacks not yet run;
``PROCESSED``
    popped off the heap; callbacks have run.

Processes wait on events by ``yield``-ing them; arbitrary callbacks can
also be attached with :meth:`Event.add_callback` (the kernel itself uses
this to resume processes and to wake resource queues).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator

PENDING = 0
SCHEDULED = 1
PROCESSED = 2


class Event:
    """A one-shot occurrence at a point in virtual time."""

    __slots__ = ("sim", "_status", "_value", "_exc", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self._status = PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self.name = name

    # -- inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the outcome has been decided (scheduled or done)."""
        return self._status != PENDING

    @property
    def processed(self) -> bool:
        return self._status == PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid once triggered)."""
        return self._exc is None

    @property
    def value(self) -> Any:
        """The success value. Raises the failure exception if failed."""
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- outcome ------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Decide success; callbacks run after ``delay`` virtual time."""
        if self._status != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._status = SCHEDULED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Decide failure; waiting processes get ``exc`` thrown in."""
        if self._status != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._exc = exc
        self._status = SCHEDULED
        self.sim._schedule(self, delay)
        return self

    # -- callbacks ----------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(self)`` when the event is processed.

        If the event was already processed the callback runs
        immediately (same clock value), preserving at-least-once
        semantics for late subscribers.
        """
        if self._status == PROCESSED:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _process(self) -> None:
        """Called by the simulator when popped from the heap."""
        self._status = PROCESSED
        callbacks = self._callbacks
        if callbacks:
            # Iterate then clear in place: a callback registered while
            # the event is PROCESSED runs immediately (add_callback),
            # so the list cannot grow under us, and reusing it avoids
            # one list allocation per dispatched event.
            for fn in callbacks:
                fn(self)
            callbacks.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = {PENDING: "pending", SCHEDULED: "scheduled", PROCESSED: "done"}
        label = self.name or type(self).__name__
        return f"<{label} {state[self._status]} at t={self.sim.now:.3f}>"


class _PooledEvent(Event):
    """A kernel-recycled one-shot event (see ``Simulator.sleep``).

    Instances are created only by the simulator's free list and are
    returned to it by the dispatch loop right after :meth:`_process`
    runs.  The contract: nothing may retain a reference to a pooled
    event past its callbacks — which holds for the internal inline
    ``yield sim.sleep(...)`` wait points and for resource grants,
    where the sole waiter is resumed during processing.  Public
    factories (``sim.timeout()`` / ``sim.event()``) never pool, so
    user code that stores events keeps the old lifetime guarantees.

    Because the sole-waiter contract means these events almost always
    carry exactly one callback, the first subscriber lands in the
    ``_cb`` slot (no list append/iterate/clear per event); any extra
    subscribers overflow into the inherited list.
    """

    __slots__ = ("_cb",)

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        Event.__init__(self, sim, name)
        self._cb: Optional[Callable[["Event"], None]] = None

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._status == PROCESSED:
            fn(self)
        elif self._cb is None:
            self._cb = fn
        else:
            self._callbacks.append(fn)

    def _process(self) -> None:
        self._status = PROCESSED
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
        callbacks = self._callbacks
        if callbacks:
            for fn in callbacks:
                fn(self)
            callbacks.clear()


class Timeout(Event):
    """An event that fires ``delay`` after creation.

    The workhorse of every cost model: ``yield sim.timeout(o_send)``.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim, name=name or f"timeout({delay:.3f})")
        self._value = value
        self._status = SCHEDULED
        sim._schedule(self, delay)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Sequence[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *all* child events have succeeded.

    Value is the list of child values in construction order.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    Value is ``(index, value)`` of the winning child.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self.succeed((self._events.index(ev), ev._value))
