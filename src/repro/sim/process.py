"""Processes: generator coroutines driven by the event loop.

A process generator ``yield``\\ s events and is resumed with the event's
value once it fires::

    def worker(sim, nic):
        yield nic.acquire()          # wait for the NIC
        yield sim.timeout(2.5)       # occupy it for 2.5 us
        nic.release()
        return "done"

A :class:`Process` is itself an :class:`~repro.sim.event.Event` that
succeeds with the generator's return value, so processes can wait on
each other (fork/join) simply by yielding the child process.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.sim.errors import ProcessKilled, SimulationError
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


class Process(Event):
    """A running generator; completes when the generator returns."""

    __slots__ = ("_gen", "_waiting_on", "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__}: {gen!r}."
                " Did you call the function instead of passing its generator?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        self._started = False
        # First step happens via a zero-delay event so that spawning is
        # itself an observable point in time and spawn order == run order.
        kick = Event(sim, name=f"start:{self.name}")
        kick.add_callback(self._resume)
        kick.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the generator."""
        if self.triggered:
            return
        self._step(None, ProcessKilled(reason))

    # -- driving ------------------------------------------------------

    def _resume(self, ev: Event) -> None:
        if self.triggered:
            # The process died (e.g. kill()) while this event was in
            # flight; drop the stale wakeup.
            return
        self._waiting_on = None
        if ev.ok:
            self._step(ev._value, None)
        else:
            self._step(None, ev.exception)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        self._started = True
        try:
            if exc is None:
                target = self._gen.send(value)
            else:
                target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as pk:
            self.fail(pk)
            return
        except BaseException as err:
            # Attach context so deadlocks/crashes are debuggable at scale.
            err.args = (*err.args, f"[in sim process {self.name!r} at "
                                   f"t={self.sim.now:.3f}]")
            self.fail(err)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Events (use 'yield from' for sub-generators)"
            )
        self._waiting_on = target
        target.add_callback(self._resume)
