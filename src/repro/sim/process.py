"""Processes: generator coroutines driven by the event loop.

A process generator ``yield``\\ s events and is resumed with the event's
value once it fires::

    def worker(sim, nic):
        yield nic.acquire()          # wait for the NIC
        yield sim.timeout(2.5)       # occupy it for 2.5 us
        nic.release()
        return "done"

A :class:`Process` is itself an :class:`~repro.sim.event.Event` that
succeeds with the generator's return value, so processes can wait on
each other (fork/join) simply by yielding the child process.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.sim.errors import ProcessKilled, SimulationError
from repro.sim.event import Event, _PooledEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


class Process(Event):
    """A running generator; completes when the generator returns."""

    __slots__ = ("_gen", "_send", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__}: {gen!r}."
                " Did you call the function instead of passing its generator?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # The bound send is the single hottest callable in the kernel
        # (once per dispatched event); bind it exactly once.
        self._send = gen.send
        # One bound method for every wakeup instead of a fresh bound
        # object per yielded event.
        self._resume_cb = self._resume
        # First step happens via a zero-delay event so that spawning is
        # itself an observable point in time and spawn order == run order.
        if sim.pooled:
            kick = sim.sleep(0.0)
            kick.add_callback(self._resume_cb)
        else:
            kick = Event(sim, name=f"start:{self.name}")
            kick.add_callback(self._resume_cb)
            kick.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the generator."""
        if self.triggered:
            return
        self._step(None, ProcessKilled(reason))

    # -- driving ------------------------------------------------------

    def _resume(self, ev: Event) -> None:
        # Runs once per dispatched event — this *is* the hot path, so
        # the success case of _step is inlined here: property reads
        # become raw slot checks and add_callback becomes a direct
        # list append on the target.
        if self._status:
            # The process died (e.g. kill()) while this event was in
            # flight; drop the stale wakeup.
            return
        exc = ev._exc
        if exc is not None:
            self._step(None, exc)
            return
        try:
            target = self._send(ev._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as pk:
            self.fail(pk)
            return
        except BaseException as err:
            # Attach context so deadlocks/crashes are debuggable at scale.
            err.args = (*err.args, f"[in sim process {self.name!r} at "
                                   f"t={self.sim.now:.3f}]")
            self.fail(err)
            return
        try:
            status = target._status
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Events (use 'yield from' for sub-generators)"
            ) from None
        if status == 2:  # PROCESSED: late subscriber, resume immediately
            self._resume(target)
        elif target.__class__ is _PooledEvent and target._cb is None:
            target._cb = self._resume_cb
        else:
            target._callbacks.append(self._resume_cb)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        """Cold-path drive: failure delivery and kill()."""
        try:
            if exc is None:
                target = self._gen.send(value)
            else:
                target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as pk:
            self.fail(pk)
            return
        except BaseException as err:
            err.args = (*err.args, f"[in sim process {self.name!r} at "
                                   f"t={self.sim.now:.3f}]")
            self.fail(err)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Events (use 'yield from' for sub-generators)"
            )
        if target._status == 2:
            self._resume(target)
        else:
            target._callbacks.append(self._resume_cb)
