"""The simulator core: virtual clock + event heap.

Times are floats in microseconds.  Events scheduled for the same time
are processed in schedule order (a monotonically increasing sequence
number breaks heap ties), which makes runs fully deterministic.

Two interchangeable cores live behind the same API:

``Simulator(pooled=True)`` (the default)
    The fast core.  Heap entries are mutable ``[time, seq, event]``
    records drawn from a free list (no per-event tuple allocation, but
    still C-speed lexicographic comparison), zero-delay events bypass
    the heap entirely through a FIFO *fast lane* (a deque), and
    kernel-internal wait points reuse ``_PooledEvent`` objects from a
    free list instead of allocating a ``Timeout`` per message hop.

``Simulator(pooled=False)``
    The legacy core: immutable tuple heap entries, no lane, no object
    reuse, eager event names.  Kept as the reference implementation —
    the benchmark harness and the determinism tests run both cores on
    identical workloads and require bit-identical schedules.

Determinism is preserved because dispatch order is *exactly* the total
order on ``(time, seq)`` in both cores: the fast lane only ever holds
entries whose time equals ``now`` (a zero delay cannot point into the
future, and the lane drains before the clock advances), so the next
event is the lane head unless the heap top carries the same timestamp
with a smaller sequence number.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError
from repro.sim.event import PENDING, SCHEDULED, Event, Timeout, _PooledEvent
from repro.sim.process import Process


class Simulator:
    """Owns the clock and the pending-event heap."""

    __slots__ = ("now", "_heap", "_seq", "_nevents", "pooled",
                 "_lane", "_entry_pool", "_event_pool")

    def __new__(cls, pooled: bool = True, shards: Optional[int] = None,
                **kw):
        # ``Simulator(shards=N)`` is the sharded-PDES entry point: for
        # N > 1 it hands back a ShardedSimulator (a coordinator over N
        # per-node-group pooled cores, not a Simulator subclass —
        # __init__ below is intentionally skipped for it).  N in
        # (None, 0, 1) degenerates to this class: one shard *is* the
        # pooled core.
        if cls is Simulator and shards is not None and shards > 1:
            from repro.sim.shard import ShardedSimulator
            return ShardedSimulator(nshards=shards, **kw)
        return object.__new__(cls)

    def __init__(self, pooled: bool = True,
                 shards: Optional[int] = None, **kw) -> None:
        if kw:
            raise TypeError(
                f"unexpected Simulator() arguments {sorted(kw)} "
                "(sharded-only options require shards > 1)")
        #: Current virtual time in microseconds.
        self.now: float = 0.0
        self._heap: List[Any] = []
        self._seq = 0
        #: Total number of events processed (exposed for perf metrics).
        self._nevents = 0
        #: Fast core (pooled entries/events + zero-delay lane) when
        #: True; the legacy tuple-heap core when False.
        self.pooled = pooled
        # Zero-delay fast lane: entries scheduled with delay == 0 at
        # the current clock value, dispatched FIFO without touching
        # the heap.  Always empty in legacy mode.
        self._lane: Any = deque()
        # Free lists: recycled [t, seq, event] heap records and
        # recycled kernel-internal events.
        self._entry_pool: List[list] = []
        self._event_pool: List[_PooledEvent] = []

    # -- factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh pending event (never pooled — safe to retain)."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event firing ``delay`` microseconds from now.

        Public factory: the returned event is never recycled, so
        callers may store it and read ``.value`` after the run.  The
        kernel-internal equivalent is :meth:`sleep`.
        """
        return Timeout(self, delay, value=value, name=name)

    def sleep(self, delay: float, value: Any = None) -> Event:
        """A pooled one-shot timer for inline ``yield`` wait points.

        Contract: the caller must not retain the event past its
        callbacks — it is recycled by the dispatch loop immediately
        after processing.  Every ``yield sim.sleep(x)`` in the runtime
        and network layers satisfies this (the yielding process is the
        only waiter).  In legacy mode this degrades to a plain
        :class:`Timeout` so both cores see the same schedule.
        """
        if not self.pooled:
            return Timeout(self, delay, value=value)
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._status = SCHEDULED
            ev._value = value
            ev._exc = None
        else:
            ev = _PooledEvent(self, name="sleep")
            ev._status = SCHEDULED
            ev._value = value
        # Scheduling inlined (this is the hottest factory in the
        # kernel): identical to _schedule's pooled branch.
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq + 1
        self._seq = seq
        epool = self._entry_pool
        if epool:
            entry = epool.pop()
            entry[0] = self.now + delay
            entry[1] = seq
            entry[2] = ev
        else:
            entry = [self.now + delay, seq, ev]
        if delay == 0.0:
            self._lane.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return ev

    def oneshot(self, name: str = "") -> Event:
        """A pooled PENDING event for kernel wait points.

        Same recycling contract as :meth:`sleep`, for events whose
        outcome is decided later by a third party (resource grants,
        progress-engine wakeups).  Legacy mode returns a plain
        :class:`Event`.
        """
        if not self.pooled:
            return Event(self, name=name)
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._status = PENDING
            ev._value = None
            ev._exc = None
            ev.name = name
            return ev
        return _PooledEvent(self, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn a process around generator ``gen``; starts at ``now``."""
        return Process(self, gen, name=name)

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        if self.pooled:
            pool = self._entry_pool
            if pool:
                entry = pool.pop()
                entry[0] = self.now + delay
                entry[1] = self._seq
                entry[2] = event
            else:
                entry = [self.now + delay, self._seq, event]
            if delay == 0.0:
                self._lane.append(entry)
            else:
                heapq.heappush(self._heap, entry)
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    # -- execution ----------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._nevents

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events (heap + lane)."""
        return len(self._heap) + len(self._lane)

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        if self._lane:
            # Lane entries always sit at ``now``; the heap can only be
            # at ``now`` or later, so the lane head's time is minimal.
            return self._lane[0][0]
        return self._heap[0][0] if self._heap else float("inf")

    def _next_entry(self) -> Any:
        """Pop the globally minimum ``(t, seq)`` entry (lane + heap)."""
        lane = self._lane
        if lane:
            entry = lane[0]
            heap = self._heap
            if heap:
                top = heap[0]
                # Lane entries are at t == now; a heap entry wins only
                # when it shares the timestamp with a smaller seq.
                if top[0] <= entry[0] and top[1] < entry[1]:
                    return heapq.heappop(heap)
            return lane.popleft()
        return heapq.heappop(self._heap)

    def step(self) -> None:
        """Process exactly one event."""
        if not (self._heap or self._lane):
            raise SimulationError("step() on an empty event queue")
        entry = self._next_entry()
        self.now = entry[0]
        self._nevents += 1
        event = entry[2]
        if self.pooled:
            entry[2] = None
            self._entry_pool.append(entry)
        event._process()
        if event.__class__ is _PooledEvent:
            self._event_pool.append(event)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed (a runaway guard for tests).

        When stopping at ``until`` the clock is advanced to exactly
        ``until`` even if no event sits there.
        """
        if self.pooled:
            if until is None and max_events is None:
                self._run_fast()
                return
            budget = max_events if max_events is not None else -1
            while self._heap or self._lane:
                t = self.peek()
                if until is not None and t > until:
                    self.now = until
                    return
                if budget == 0:
                    raise SimulationError(
                        f"max_events exhausted: {self._nevents} events "
                        f"processed, next event pending at t={t:.3f}"
                    )
                budget -= 1
                self.step()
            if until is not None and self.now < until:
                self.now = until
            return
        # Legacy core: tuple heap, no lane.  The loop body mirrors the
        # original step-per-event dispatch so benchmark comparisons
        # against the unpooled core measure the historical cost.
        budget = max_events if max_events is not None else -1
        heap = self._heap
        while heap:
            t = heap[0][0]
            if until is not None and t > until:
                self.now = until
                return
            if budget == 0:
                raise SimulationError(
                    f"max_events exhausted: {self._nevents} events "
                    f"processed, next event pending at t={t:.3f}"
                )
            budget -= 1
            entry = heapq.heappop(heap)
            self.now = entry[0]
            self._nevents += 1
            entry[2]._process()
        if until is not None and self.now < until:
            self.now = until

    def _run_fast(self) -> None:
        """Drain the queue with no until/budget checks (the hot loop).

        Everything is inlined: lane-vs-heap merge, entry recycling and
        event recycling happen without method-call overhead.  Dispatch
        order is identical to repeated :meth:`step` calls.
        """
        lane = self._lane
        heap = self._heap
        entry_pool = self._entry_pool
        entry_push = entry_pool.append
        event_push = self._event_pool.append
        pop = heapq.heappop
        pooled_cls = _PooledEvent
        lane_popleft = lane.popleft
        lane_appendleft = lane.appendleft
        n = 0
        try:
            while True:
                if lane:
                    entry = lane_popleft()
                    if heap:
                        top = heap[0]
                        if top[0] <= entry[0] and top[1] < entry[1]:
                            lane_appendleft(entry)
                            entry = pop(heap)
                elif heap:
                    entry = pop(heap)
                else:
                    return
                self.now = entry[0]
                n += 1
                ev = entry[2]
                entry[2] = None
                entry_push(entry)
                # _process inlined for both event shapes (one method
                # call per event is real money at 10^6 events/s);
                # semantics identical to Event._process.
                if ev.__class__ is pooled_cls:
                    ev._status = 2  # PROCESSED
                    cb = ev._cb
                    if cb is not None:
                        ev._cb = None
                        cb(ev)
                    callbacks = ev._callbacks
                    if callbacks:
                        for fn in callbacks:
                            fn(ev)
                        callbacks.clear()
                    event_push(ev)
                else:
                    ev._process()
        finally:
            self._nevents += n

    def run_before(self, bound: float) -> int:
        """Process every event with ``t < bound`` (strict); return the
        number processed.

        This is the grain primitive of the sharded PDES core: a shard
        may only execute events strictly below its conservative
        horizon, because an event *at* the horizon could still be
        preempted by a message arriving exactly there.  Unlike
        :meth:`run`'s ``until`` handling the clock is **not** advanced
        to ``bound`` — it stays at the last processed event so the
        shard's report reflects real progress, and ``bound`` may be
        ``inf`` (final drain).
        """
        lane = self._lane
        heap = self._heap
        pop = heapq.heappop
        n = 0
        if self.pooled:
            entry_push = self._entry_pool.append
            event_push = self._event_pool.append
            pooled_cls = _PooledEvent
            try:
                while True:
                    if lane:
                        entry = lane[0]
                        # Lane head time is the queue minimum (see
                        # peek): at/after the bound means we're done.
                        if entry[0] >= bound:
                            return n
                        top = heap[0] if heap else None
                        if (top is not None and top[0] <= entry[0]
                                and top[1] < entry[1]):
                            entry = pop(heap)
                        else:
                            lane.popleft()
                    elif heap:
                        if heap[0][0] >= bound:
                            return n
                        entry = pop(heap)
                    else:
                        return n
                    self.now = entry[0]
                    n += 1
                    ev = entry[2]
                    entry[2] = None
                    entry_push(entry)
                    # Dispatch inlined exactly as in _run_fast.
                    if ev.__class__ is pooled_cls:
                        ev._status = 2  # PROCESSED
                        cb = ev._cb
                        if cb is not None:
                            ev._cb = None
                            cb(ev)
                        callbacks = ev._callbacks
                        if callbacks:
                            for fn in callbacks:
                                fn(ev)
                            callbacks.clear()
                        event_push(ev)
                    else:
                        ev._process()
            finally:
                self._nevents += n
        # Legacy core: immutable tuple entries, heap only.
        try:
            while heap and heap[0][0] < bound:
                entry = pop(heap)
                self.now = entry[0]
                n += 1
                entry[2]._process()
        finally:
            self._nevents += n
        return n

    def run_process(self, gen: Generator, name: str = "",
                    max_events: Optional[int] = None) -> Any:
        """Convenience: spawn ``gen``, run to completion, return value.

        Raises the process's exception if it failed, and
        :class:`SimulationError` if the queue drained while the process
        was still blocked (a deadlock in the model).
        """
        proc = self.process(gen, name=name)
        self.run(max_events=max_events)
        if not proc.triggered:
            raise SimulationError(
                f"deadlock: process {proc!r} never completed "
                f"(queue drained at t={self.now:.3f})"
            )
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Simulator t={self.now:.3f} "
                f"pending={len(self._heap) + len(self._lane)}>")
