"""The simulator core: virtual clock + event heap.

Times are floats in microseconds.  Events scheduled for the same time
are processed in schedule order (a monotonically increasing sequence
number breaks heap ties), which makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError
from repro.sim.event import Event, Timeout
from repro.sim.process import Process


class Simulator:
    """Owns the clock and the pending-event heap."""

    __slots__ = ("now", "_heap", "_seq", "_nevents")

    def __init__(self) -> None:
        #: Current virtual time in microseconds.
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        #: Total number of events processed (exposed for perf metrics).
        self._nevents = 0

    # -- factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event firing ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn a process around generator ``gen``; starts at ``now``."""
        return Process(self, gen, name=name)

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    # -- execution ----------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._nevents

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        t, _, event = heapq.heappop(self._heap)
        self.now = t
        self._nevents += 1
        event._process()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed (a runaway guard for tests).

        When stopping at ``until`` the clock is advanced to exactly
        ``until`` even if no event sits there.
        """
        budget = max_events if max_events is not None else -1
        while self._heap:
            t = self._heap[0][0]
            if until is not None and t > until:
                self.now = until
                return
            if budget == 0:
                raise SimulationError(
                    f"max_events exhausted at t={self.now:.3f} "
                    f"({self._nevents} events processed)"
                )
            budget -= 1
            self.step()
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, gen: Generator, name: str = "",
                    max_events: Optional[int] = None) -> Any:
        """Convenience: spawn ``gen``, run to completion, return value.

        Raises the process's exception if it failed, and
        :class:`SimulationError` if the queue drained while the process
        was still blocked (a deadlock in the model).
        """
        proc = self.process(gen, name=name)
        self.run(max_events=max_events)
        if not proc.triggered:
            raise SimulationError(
                f"deadlock: process {proc!r} never completed "
                f"(queue drained at t={self.now:.3f})"
            )
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self.now:.3f} pending={len(self._heap)}>"
