"""Contended resources and mailboxes.

:class:`Resource`
    A FIFO server with integer capacity.  Used for NICs (capacity 1 per
    node — the root of the paper's "four threads competing for the same
    network device" amplification effect, section 4.6), CPUs and DMA
    engines.  Tracks busy-time and queueing statistics so experiments
    can report utilization.

:class:`Queue`
    An unbounded FIFO of items with blocking ``get``.  Used for
    AM-handler dispatch queues in the progress engines.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, TYPE_CHECKING

from repro.sim.errors import SimulationError
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator

from repro.util.stats import RunningStats


class Resource:
    """FIFO resource with ``capacity`` concurrent users.

    Usage from a process::

        yield res.acquire()
        try:
            yield sim.timeout(cost)
        finally:
            res.release()
    """

    __slots__ = ("sim", "capacity", "name", "_users", "_waiters",
                 "_busy_integral", "_last_change", "wait_stats",
                 "acquisitions", "_acq_name")

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._acq_name = "acquire:" + name
        self._users = 0
        self._waiters: Deque[tuple[Event, float]] = deque()
        self._busy_integral = 0.0
        self._last_change = sim.now
        #: Time spent waiting for a grant, per acquisition.
        self.wait_stats = RunningStats()
        self.acquisitions = 0

    # -- accounting ---------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._users * (now - self._last_change)
        self._last_change = now

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use over ``[since, now]``."""
        self._account()
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return self._busy_integral / (span * self.capacity)

    @property
    def in_use(self) -> int:
        return self._users

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- protocol -----------------------------------------------------

    def acquire(self) -> Event:
        """Returns an event that fires when a slot is granted.

        The grant event comes from the simulator's free list in pooled
        mode: its only consumers (the acquiring process and the FIFO
        in :meth:`release`) drop their references once it fires, so
        recycling after dispatch is safe.
        """
        sim = self.sim
        if sim.pooled:
            ev = sim.oneshot(self._acq_name)
        else:
            ev = Event(sim, name=f"acquire:{self.name}")
        if self._users < self.capacity and not self._waiters:
            self._account()
            self._users += 1
            self.acquisitions += 1
            self.wait_stats.add(0.0)
            ev.succeed()
        else:
            self._waiters.append((ev, self.sim.now))
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True if granted immediately."""
        if self._users < self.capacity and not self._waiters:
            self._account()
            self._users += 1
            self.acquisitions += 1
            self.wait_stats.add(0.0)
            return True
        return False

    def release(self) -> None:
        """Free one slot; grants the oldest waiter, FIFO."""
        if self._users <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._account()
        self._users -= 1
        if self._waiters:
            ev, enq_t = self._waiters.popleft()
            self._users += 1
            self.acquisitions += 1
            self.wait_stats.add(self.sim.now - enq_t)
            ev.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Resource {self.name} {self._users}/{self.capacity} "
                f"queue={len(self._waiters)}>")


class Queue:
    """Unbounded FIFO mailbox with blocking ``get``."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: "Simulator", name: str = "queue") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item."""
        sim = self.sim
        if sim.pooled:
            ev = sim.oneshot("get:" + self.name)
        else:
            ev = Event(sim, name=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Queue {self.name} items={len(self._items)} getters={len(self._getters)}>"
