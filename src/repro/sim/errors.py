"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Misuse of the kernel API (double trigger, yield of a non-event,
    releasing an idle resource, ...)."""


class ProcessKilled(Exception):
    """Thrown into a process generator by :meth:`Process.kill`.

    Workload code generally lets this propagate; the kernel marks the
    process as failed-by-kill rather than crashed.
    """
