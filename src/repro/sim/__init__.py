"""Discrete-event simulation kernel.

A minimal, dependency-free event-driven simulator in the style of
SimPy: a :class:`~repro.sim.simulator.Simulator` owns a virtual clock
(microseconds, float) and a binary-heap event queue; concurrent
activities are :class:`~repro.sim.process.Process` objects wrapping
Python generators that ``yield`` :class:`~repro.sim.event.Event`
instances to wait on.

Everything above this package (memory, network, runtime) is expressed
in terms of these primitives; the kernel knows nothing about PGAS.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello():
...     yield sim.timeout(5.0)
...     return sim.now
>>> p = sim.process(hello())
>>> sim.run()
>>> p.value
5.0
"""

from repro.sim.errors import SimulationError, ProcessKilled
from repro.sim.event import Event, Timeout, AllOf, AnyOf
from repro.sim.process import Process
from repro.sim.resource import Resource, Queue
from repro.sim.simulator import Simulator

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Queue",
    "SimulationError",
    "ProcessKilled",
]
