"""Seeded op-sequence generator.

Draws random :class:`~repro.testing.program.Program`s — alloc/free
churn, scalar and bulk data movement, vectored ops, gathers, strict
and relaxed puts, fences, split-phase barriers, value collectives,
lock-protected read-modify-writes and pointer walks — while enforcing
the race-freedom discipline the differential oracle requires (see
:mod:`repro.testing.program`).

Everything derives from :func:`repro.util.rng.seeded_rng`, so a
``(seed, n_ops, nthreads)`` triple names one program forever: the
corpus stores shrunk JSON programs, but a bare seed is already a
complete reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.testing.program import (
    DTYPES,
    LockDecl,
    Op,
    Phase,
    Program,
    ScalarDecl,
    validate,
)
from repro.util.rng import bounded_geometric, seeded_rng

#: Per-thread op kinds and their draw weights.  Reads dominate (they
#: are the checked ops); the alloc/free churn that stresses the cache
#: invalidation path is driven separately at the phase level.
_OP_WEIGHTS = [
    ("get", 14), ("put", 10), ("put_strict", 3),
    ("memget", 8), ("memput", 6), ("memget_v", 4), ("memput_v", 3),
    ("gather", 5), ("fence", 4), ("compute", 4), ("poll", 1),
    ("lock_add", 4), ("ptr_walk", 4),
    ("get_rc", 3), ("put_rc", 2), ("memget_row", 2),
    ("global_alloc", 1), ("local_alloc", 1),
]

_COLLECTIVE_WEIGHTS = [
    ("barrier", 10), ("split_barrier", 3), ("all_reduce", 3),
    ("broadcast", 2), ("alloc", 4), ("alloc_matrix", 2), ("free", 4),
]

#: Extra draws mixed in when kv-store fuzzing is enabled (kv ops ride
#: along with the full alloc/free churn above — that interleaving is
#: the point: store traffic while the address caches are being churned
#: by unrelated allocation lifecycles).
_KV_OP_WEIGHTS = [
    ("kv_get", 10), ("kv_put", 8), ("kv_del", 4), ("kv_mget", 5),
]

_KV_COLLECTIVE_WEIGHTS = [
    ("kv_create", 3), ("kv_free", 2),
]


@dataclass
class _Obj:
    """Generator-side bookkeeping for one live shared object."""

    obj: int
    kind: str                  # "array" | "matrix" | "scalar"
    nelems: int
    dtype: str
    blocksize: int = 0
    rows: int = 0
    cols: int = 0
    tile_r: int = 0
    tile_c: int = 0
    #: None = visible to all threads; else the allocating thread only.
    visible_to: Optional[int] = None
    #: Element state this phase: -1 clean, -2 lock-touched, else the
    #: writer thread; ``fenced`` marks drained self-writes; ``readers``
    #: is a bitmask of threads that read the element this phase (a
    #: same-phase read and write by different threads race in *both*
    #: draw orders, since the ops run concurrently).
    writer: np.ndarray = None  # type: ignore[assignment]
    fenced: np.ndarray = None  # type: ignore[assignment]
    readers: np.ndarray = None  # type: ignore[assignment]
    #: Lock guarding each element's RMWs this phase (-1 none): two
    #: lock_adds under *different* locks interleave their get/put.
    lockid: np.ndarray = None  # type: ignore[assignment]
    #: kv stores only (``kind == "kv"``, where ``nelems`` counts
    #: buckets): slots per bucket, access path, stripe lock id, the
    #: live-key set per bucket (capacity tracking mirrors the
    #: validator's), and the key universe draws come from.
    slots: int = 0
    access: str = ""
    lock: int = -1
    key_max: int = 0
    keysets: Optional[List[set]] = None

    def __post_init__(self) -> None:
        self.writer = np.full(self.nelems, -1, dtype=np.int64)
        self.fenced = np.zeros(self.nelems, dtype=bool)
        self.readers = np.zeros(self.nelems, dtype=np.int64)
        self.lockid = np.full(self.nelems, -1, dtype=np.int64)
        if self.kind == "kv":
            self.keysets = [set() for _ in range(self.nelems)]

    def live_keys(self) -> List[int]:
        return sorted(k for ks in self.keysets or () for k in ks)

    def readable(self, t: int) -> np.ndarray:
        return (self.writer == -1) | ((self.writer == t) & self.fenced)

    def mark_read(self, t: int, start: int, count: int = 1) -> None:
        self.readers[start:start + count] |= np.int64(1 << t)

    def writable(self, t: int) -> np.ndarray:
        return self.readable(t) & ((self.readers & ~np.int64(1 << t)) == 0)

    def lockable(self, lock: int = -1) -> np.ndarray:
        base = (((self.writer == -1) | (self.writer == -2))
                & (self.readers == 0))
        if lock < 0:
            return base
        return base & ((self.lockid == -1) | (self.lockid == lock))

    def clear(self) -> None:
        self.writer[:] = -1
        self.fenced[:] = False
        self.readers[:] = 0
        self.lockid[:] = -1
        self.visible_to = None


class ProgramGenerator:
    """Stateful builder for one random program."""

    def __init__(self, seed: int, nthreads: int = 4,
                 max_live_objects: int = 5,
                 max_elems: int = 192, kv: bool = False) -> None:
        self.rng = seeded_rng(seed, 0xF022)
        self.seed = seed
        self.nthreads = nthreads
        self.max_live = max_live_objects
        self.max_elems = max_elems
        #: kv-store fuzzing is opt-in so the seed-indexed corpus of
        #: pre-service programs keeps naming the same programs forever.
        self.kv = kv
        self._op_weights = (_OP_WEIGHTS + _KV_OP_WEIGHTS if kv
                            else _OP_WEIGHTS)
        self._collective_weights = (
            _COLLECTIVE_WEIGHTS + _KV_COLLECTIVE_WEIGHTS if kv
            else _COLLECTIVE_WEIGHTS)
        self._next_obj = 0
        self.objs: Dict[int, _Obj] = {}
        self.locks: List[LockDecl] = []
        self.scalars: List[ScalarDecl] = []
        self.phases: List[Phase] = []
        self._ops_emitted = 0

    # -- small draws ------------------------------------------------------

    def _weighted(self, table) -> str:
        kinds = [k for k, _ in table]
        w = np.array([w for _, w in table], dtype=float)
        return kinds[int(self.rng.choice(len(kinds), p=w / w.sum()))]

    def _fresh_obj_id(self) -> int:
        self._next_obj += 1
        return self._next_obj - 1

    def _values(self, dtype: str, n: int) -> list:
        """Small exact values (ints even for f8: bit-exact everywhere)."""
        vals = self.rng.integers(0, 1000, size=n)
        if dtype == "f8":
            return [float(v) for v in vals]
        return [int(v) for v in vals]

    def _pick_obj(self, thread: int, kinds=("array", "matrix",
                                            "scalar")) -> Optional[_Obj]:
        cands = [o for o in self.objs.values()
                 if o.kind in kinds
                 and (o.visible_to is None or o.visible_to == thread)]
        if not cands:
            return None
        return cands[int(self.rng.integers(len(cands)))]

    def _pick_span(self, mask: np.ndarray, want: int
                   ) -> Optional[Tuple[int, int]]:
        """A (start, count<=want) span of all-True ``mask`` cells, or
        None.  Samples a few random starts, then falls back to the
        first admissible cell."""
        n = len(mask)
        for _ in range(6):
            start = int(self.rng.integers(n))
            if not mask[start]:
                continue
            end = start
            while end < n and end - start < want and mask[end]:
                end += 1
            return start, end - start
        idx = np.flatnonzero(mask)
        if len(idx) == 0:
            return None
        return int(idx[0]), 1

    # -- object creation ---------------------------------------------------

    def _decl_statics(self) -> None:
        for _ in range(int(self.rng.integers(1, 3))):
            self.locks.append(LockDecl(
                obj=self._fresh_obj_id(),
                owner_thread=int(self.rng.integers(self.nthreads))))
        for _ in range(int(self.rng.integers(1, 3))):
            obj = self._fresh_obj_id()
            dtype = str(self.rng.choice(DTYPES))
            self.scalars.append(ScalarDecl(
                obj=obj, owner_thread=int(self.rng.integers(self.nthreads)),
                dtype=dtype))
            self.objs[obj] = _Obj(obj=obj, kind="scalar", nelems=1,
                                  dtype=dtype)

    def _alloc_args(self) -> Tuple[int, dict]:
        obj = self._fresh_obj_id()
        nelems = int(bounded_geometric(self.rng, 48, 8, self.max_elems))
        # Small blocks force affinity splits; None-ish big blocks keep
        # some arrays purely blocked.
        blocksize = int(self.rng.choice([2, 4, 8, 16,
                                         max(1, nelems // self.nthreads)]))
        dtype = str(self.rng.choice(DTYPES))
        return obj, {"nelems": nelems, "blocksize": blocksize,
                     "dtype": dtype}

    def _alloc_matrix_args(self) -> Tuple[int, dict]:
        obj = self._fresh_obj_id()
        tile_r = int(self.rng.choice([1, 2, 4]))
        tile_c = int(self.rng.choice([2, 4]))
        rows = tile_r * int(self.rng.integers(2, 5))
        cols = tile_c * int(self.rng.integers(2, 5))
        dtype = str(self.rng.choice(DTYPES))
        return obj, {"rows": rows, "cols": cols, "tile_r": tile_r,
                     "tile_c": tile_c, "dtype": dtype}

    def _register(self, obj: int, kind: str, args: dict,
                  visible_to: Optional[int] = None) -> None:
        if kind == "matrix":
            self.objs[obj] = _Obj(
                obj=obj, kind="matrix",
                nelems=args["rows"] * args["cols"], dtype=args["dtype"],
                blocksize=args["tile_r"] * args["tile_c"],
                rows=args["rows"], cols=args["cols"],
                tile_r=args["tile_r"], tile_c=args["tile_c"],
                visible_to=visible_to)
        else:
            self.objs[obj] = _Obj(
                obj=obj, kind="array", nelems=args["nelems"],
                dtype=args["dtype"],
                blocksize=args.get("blocksize") or args["nelems"],
                visible_to=visible_to)

    # -- per-thread op draws -----------------------------------------------

    def _draw_thread_op(self, t: int) -> Optional[Op]:
        kind = self._weighted(self._op_weights)
        rng = self.rng
        if kind in ("kv_get", "kv_put", "kv_del", "kv_mget"):
            o = self._pick_obj(t, kinds=("kv",))
            if o is None:
                return None
            return self._draw_kv_op(t, o, kind)
        if kind == "fence":
            for o in self.objs.values():
                o.fenced[o.writer == t] = True
            return Op("fence", thread=t)
        if kind == "compute":
            return Op("compute", thread=t,
                      args={"usec": int(rng.integers(1, 30))})
        if kind == "poll":
            return Op("poll", thread=t)
        if kind in ("global_alloc", "local_alloc"):
            if len(self.objs) >= self.max_live + len(self.scalars):
                return None
            obj, args = self._alloc_args()
            if kind == "local_alloc":
                args.pop("blocksize")
            self._register(obj, "array", args, visible_to=t)
            return Op(kind, thread=t, obj=obj, args=args)
        if kind == "lock_add":
            if not self.locks:
                return None
            cands = [o for o in self.objs.values()
                     if o.kind != "kv" and o.dtype in ("u4", "u8", "i8")
                     and (o.visible_to is None or o.visible_to == t)]
            lock = self.locks[int(rng.integers(len(self.locks)))]
            cands = [o for o in cands if o.lockable(lock.obj).any()]
            if not cands:
                return None
            o = cands[int(rng.integers(len(cands)))]
            span = self._pick_span(o.lockable(lock.obj), 1)
            if span is None:
                return None
            idx = span[0]
            o.writer[idx] = -2
            o.fenced[idx] = False
            o.lockid[idx] = lock.obj
            return Op("lock_add", thread=t, obj=o.obj,
                      args={"lock": lock.obj, "index": idx,
                            "delta": int(rng.integers(1, 9))})
        if kind in ("get_rc", "put_rc", "memget_row"):
            o = self._pick_obj(t, kinds=("matrix",))
            if o is None:
                return None
            return self._draw_matrix_op(t, o, kind)
        o = self._pick_obj(t, kinds=("array", "matrix", "scalar"))
        if o is None:
            return None
        return self._draw_data_op(t, o, kind)

    def _draw_matrix_op(self, t: int, o: _Obj, kind: str) -> Optional[Op]:
        rng = self.rng
        r = int(rng.integers(o.rows))
        if kind == "memget_row":
            tile_col = int(rng.integers(o.cols // o.tile_c))
            c0 = tile_col * o.tile_c + int(rng.integers(o.tile_c))
            limit = (tile_col + 1) * o.tile_c - c0
            cnt = int(rng.integers(1, limit + 1))
            lin = self._mat_linear(o, r, c0)
            if not o.readable(t)[lin:lin + cnt].all():
                return None
            o.mark_read(t, lin, cnt)
            return Op("memget_row", thread=t, obj=o.obj,
                      args={"r": r, "c0": c0, "nelems": cnt})
        c = int(rng.integers(o.cols))
        lin = self._mat_linear(o, r, c)
        if kind == "get_rc":
            if not o.readable(t)[lin]:
                return None
            o.mark_read(t, lin)
            return Op("get_rc", thread=t, obj=o.obj,
                      args={"r": r, "c": c})
        if not o.writable(t)[lin]:
            return None
        o.writer[lin] = t
        o.fenced[lin] = False
        return Op("put_rc", thread=t, obj=o.obj,
                  args={"r": r, "c": c,
                        "value": self._values(o.dtype, 1)[0]})

    def _draw_kv_op(self, t: int, o: _Obj, kind: str) -> Optional[Op]:
        """One kv op respecting the bucket-granular discipline.

        Key draws are biased toward already-live keys so updates,
        collisions and genuine deletes all happen; the key universe
        (``key_max > nbuckets * slots``) guarantees both bucket
        collisions and capacity pressure."""
        rng = self.rng
        nb = o.nelems
        readable = o.readable(t)
        writable = o.writable(t)

        def draw_key(bias_live: float) -> int:
            live = o.live_keys()
            if live and rng.random() < bias_live:
                return int(live[int(rng.integers(len(live)))])
            return int(rng.integers(o.key_max))

        if kind == "kv_get":
            for _ in range(6):
                key = draw_key(0.5)
                if readable[key % nb]:
                    o.mark_read(t, key % nb)
                    return Op("kv_get", thread=t, obj=o.obj,
                              args={"key": key})
            return None
        if kind == "kv_mget":
            keys = []
            for _ in range(int(rng.integers(2, 7))):
                key = draw_key(0.5)
                if readable[key % nb]:
                    keys.append(key)
                    o.mark_read(t, key % nb)
            if not keys:
                return None
            return Op("kv_mget", thread=t, obj=o.obj,
                      args={"keys": keys})
        if kind == "kv_put":
            for _ in range(8):
                key = draw_key(0.3)
                b = key % nb
                ks = o.keysets[b]
                if not writable[b]:
                    continue
                if key not in ks and len(ks) >= o.slots:
                    continue
                o.writer[b] = t
                o.fenced[b] = True   # fences inside the lock ("s")
                ks.add(key)
                return Op("kv_put", thread=t, obj=o.obj,
                          args={"key": key,
                                "value": int(rng.integers(1000))})
            return None
        # kv_del (deleting an absent key is legal and checked: the
        # found-flag return is deterministic under the discipline).
        for _ in range(6):
            key = draw_key(0.7)
            b = key % nb
            if not writable[b]:
                continue
            o.writer[b] = t
            o.fenced[b] = True
            o.keysets[b].discard(key)
            return Op("kv_del", thread=t, obj=o.obj, args={"key": key})
        return None

    @staticmethod
    def _mat_linear(o: _Obj, r: int, c: int) -> int:
        tiles_c = o.cols // o.tile_c
        tile = (r // o.tile_r) * tiles_c + (c // o.tile_c)
        within = (r % o.tile_r) * o.tile_c + (c % o.tile_c)
        return tile * o.tile_r * o.tile_c + within

    def _draw_data_op(self, t: int, o: _Obj, kind: str) -> Optional[Op]:
        rng = self.rng
        if o.kind == "scalar" and kind in ("memget_v", "memput_v",
                                           "gather", "ptr_walk"):
            kind = "get" if kind in ("memget_v", "gather",
                                     "ptr_walk") else "put"
        readable = o.readable(t)
        writable = o.writable(t)
        if kind == "get":
            span = self._pick_span(readable, 1)
            if span is None:
                return None
            o.mark_read(t, span[0])
            return Op("get", thread=t, obj=o.obj,
                      args={"index": span[0]})
        if kind in ("put", "put_strict"):
            # Stay inside one affine block (scalar-path contract).
            span = self._pick_span(writable, 1)
            if span is None:
                return None
            idx = span[0]
            o.writer[idx] = t
            o.fenced[idx] = kind == "put_strict"
            return Op(kind, thread=t, obj=o.obj,
                      args={"index": idx,
                            "values": self._values(o.dtype, 1)})
        if kind == "memget":
            want = int(bounded_geometric(rng, 24, 1, o.nelems))
            span = self._pick_span(readable, want)
            if span is None:
                return None
            o.mark_read(t, span[0], span[1])
            return Op("memget", thread=t, obj=o.obj,
                      args={"index": span[0], "nelems": span[1]})
        if kind == "memput":
            want = int(bounded_geometric(rng, 16, 1, o.nelems))
            span = self._pick_span(writable, want)
            if span is None:
                return None
            start, cnt = span
            o.writer[start:start + cnt] = t
            o.fenced[start:start + cnt] = False
            return Op("memput", thread=t, obj=o.obj,
                      args={"index": start,
                            "values": self._values(o.dtype, cnt)})
        if kind == "memget_v":
            spans = []
            for _ in range(int(rng.integers(2, 5))):
                sp = self._pick_span(readable,
                                     int(bounded_geometric(rng, 8, 1, 32)))
                if sp is not None:
                    spans.append([sp[0], sp[1]])
                    o.mark_read(t, sp[0], sp[1])
            if not spans:
                return None
            return Op("memget_v", thread=t, obj=o.obj,
                      args={"spans": spans})
        if kind == "memput_v":
            puts = []
            for _ in range(int(rng.integers(2, 4))):
                sp = self._pick_span(writable,
                                     int(bounded_geometric(rng, 6, 1, 24)))
                if sp is None:
                    continue
                start, cnt = sp
                o.writer[start:start + cnt] = t
                o.fenced[start:start + cnt] = False
                writable = o.writable(t)
                puts.append([start, self._values(o.dtype, cnt)])
            if not puts:
                return None
            return Op("memput_v", thread=t, obj=o.obj,
                      args={"puts": puts})
        if kind == "gather":
            nelems = int(rng.choice([1, 1, 1, 2, 3]))
            idxs = []
            for _ in range(int(rng.integers(2, 7))):
                sp = self._pick_span(readable, nelems)
                if sp is not None and sp[1] >= nelems:
                    idxs.append(sp[0])
                    o.mark_read(t, sp[0], nelems)
            if not idxs:
                return None
            args = {"indices": idxs,
                    "width": int(rng.integers(1, 5))}
            if nelems != 1:
                args["nelems"] = nelems
            return Op("gather", thread=t, obj=o.obj, args=args)
        if kind == "ptr_walk":
            span = self._pick_span(readable, 1)
            if span is None:
                return None
            target = span[0]
            o.mark_read(t, target)
            base = int(rng.integers(o.nelems))
            return Op("ptr_walk", thread=t, obj=o.obj,
                      args={"index": base, "delta": target - base})
        return None

    # -- phases ------------------------------------------------------------

    def _emit_parallel(self, budget: int) -> int:
        per_thread: List[List[Op]] = [[] for _ in range(self.nthreads)]
        want = min(budget, int(self.rng.integers(
            self.nthreads, 4 * self.nthreads + 1)))
        emitted = 0
        attempts = 0
        while emitted < want and attempts < want * 6:
            attempts += 1
            t = int(self.rng.integers(self.nthreads))
            op = self._draw_thread_op(t)
            if op is None:
                continue
            per_thread[t].append(op)
            emitted += 1
        if emitted == 0:
            return 0
        self.phases.append(Phase(per_thread=tuple(
            tuple(lst) for lst in per_thread)))
        return emitted

    def _kv_create_args(self) -> Tuple[int, dict]:
        rng = self.rng
        obj = self._fresh_obj_id()
        nbuckets = int(rng.integers(4, 9))
        slots = int(rng.integers(2, 5))
        access = str(rng.choice(("onesided", "rpc")))
        lock = self.locks[int(rng.integers(len(self.locks)))].obj
        span = 2 * slots
        if access == "rpc":
            # RPC handlers execute at the bucket's single home node.
            blocksize = span * int(rng.choice((1, 2)))
        else:
            # Sub-span blocks make buckets straddle affinity
            # boundaries — every fetch exercises segment splitting.
            blocksize = int(rng.choice((2, span, span * 2)))
        return obj, {"nbuckets": nbuckets, "slots": slots,
                     "access": access, "lock": lock,
                     "blocksize": blocksize}

    def _emit_collective(self, kind: Optional[str] = None) -> None:
        rng = self.rng
        if kind is None:
            kind = self._weighted(self._collective_weights)
        if kind == "kv_create":
            if len(self.objs) >= self.max_live + len(self.scalars) \
                    or not self.locks:
                kind = "barrier"
            else:
                obj, args = self._kv_create_args()
                self.objs[obj] = _Obj(
                    obj=obj, kind="kv", nelems=args["nbuckets"],
                    dtype="u8", blocksize=args["blocksize"],
                    slots=args["slots"], access=args["access"],
                    lock=args["lock"],
                    key_max=args["nbuckets"] * (args["slots"] + 1))
                self.phases.append(Phase(collective=Op(
                    "kv_create", obj=obj, args=args)))
                return
        if kind == "kv_free":
            kvs = [o for o in self.objs.values() if o.kind == "kv"]
            if not kvs:
                kind = "barrier"
            else:
                victim = kvs[int(rng.integers(len(kvs)))]
                del self.objs[victim.obj]
                self.phases.append(Phase(collective=Op(
                    "kv_free", obj=victim.obj)))
                self._clear_masks()
                return
        if kind == "alloc":
            if len(self.objs) >= self.max_live + len(self.scalars):
                kind = "free"
            else:
                obj, args = self._alloc_args()
                self._register(obj, "array", args)
                self.phases.append(Phase(collective=Op(
                    "alloc", obj=obj, args=args)))
                return
        if kind == "alloc_matrix":
            if len(self.objs) >= self.max_live + len(self.scalars):
                kind = "barrier"
            else:
                obj, args = self._alloc_matrix_args()
                self._register(obj, "matrix", args)
                self.phases.append(Phase(collective=Op(
                    "alloc_matrix", obj=obj, args=args)))
                return
        if kind == "free":
            freeable = [o for o in self.objs.values()
                        if o.kind not in ("scalar", "kv")
                        and o.visible_to is None]
            if not freeable:
                kind = "barrier"
            else:
                victim = freeable[int(rng.integers(len(freeable)))]
                del self.objs[victim.obj]
                self.phases.append(Phase(collective=Op(
                    "free", obj=victim.obj)))
                self._clear_masks()
                return
        if kind == "split_barrier":
            self.phases.append(Phase(collective=Op(
                "split_barrier",
                args={"compute": [int(rng.integers(0, 25))
                                  for _ in range(self.nthreads)]})))
            self._clear_masks()
            return
        if kind == "all_reduce":
            dtype = str(rng.choice(("i8", "f8")))
            self.phases.append(Phase(collective=Op(
                "all_reduce",
                args={"op": str(rng.choice(("sum", "max", "min"))),
                      "dtype": dtype,
                      "values": self._values(dtype, self.nthreads)})))
            return
        if kind == "broadcast":
            self.phases.append(Phase(collective=Op(
                "broadcast", args={"value": int(rng.integers(1000))})))
            return
        self.phases.append(Phase(collective=Op("barrier")))
        self._clear_masks()

    def _clear_masks(self) -> None:
        for o in self.objs.values():
            o.clear()

    # -- top level -----------------------------------------------------------

    def generate(self, n_ops: int) -> Program:
        """Build a validated program of roughly ``n_ops`` operations."""
        self._decl_statics()
        # Open with a collective allocation so there is always data.
        self._emit_collective("alloc")
        self._emit_collective("barrier")
        emitted = 2
        if self.kv:
            # Guarantee at least one store exists from the start;
            # later kv_create/kv_free churn may add/remove more.
            self._emit_collective("kv_create")
            emitted += 1
        while emitted < n_ops:
            emitted += self._emit_parallel(n_ops - emitted)
            self._emit_collective()
            emitted += 1
        if self.phases and not self.phases[-1].fencing:
            self._emit_collective("barrier")
        else:
            # Always end on an explicit barrier: the final invariant
            # sweep and state comparison anchor here.
            self._emit_collective("barrier")
        program = Program(nthreads=self.nthreads,
                          scalars=tuple(self.scalars),
                          locks=tuple(self.locks),
                          phases=tuple(self.phases),
                          seed=self.seed)
        validate(program)
        return program


def generate_program(seed: int, n_ops: int = 100,
                     nthreads: int = 4, max_live_objects: int = 5,
                     max_elems: int = 192, kv: bool = False) -> Program:
    """One-shot convenience wrapper around :class:`ProgramGenerator`."""
    return ProgramGenerator(
        seed, nthreads=nthreads, max_live_objects=max_live_objects,
        max_elems=max_elems, kv=kv).generate(n_ops)


def generate_service_program(seed: int, n_ops: int = 100,
                             nthreads: int = 4,
                             max_live_objects: int = 5,
                             max_elems: int = 192) -> Program:
    """A program with kv-store traffic mixed into the usual churn —
    the service-level differential suite's generator entry point."""
    return generate_program(seed, n_ops=n_ops, nthreads=nthreads,
                            max_live_objects=max_live_objects,
                            max_elems=max_elems, kv=True)
