"""The differential runner: one program, many configurations.

Replays a fuzz :class:`~repro.testing.program.Program` on the real
runtime under every :class:`ConfigPoint` of a config matrix — GM vs
LAPI vs TCP vs BG/L transports, polling vs interrupt progress, cache
on/off/capacity/eviction-policy, RDMA-PUT on/off, bulk engine
on/off/window/coalescing, piggyback modes — and checks three things
against the flat-memory oracle:

1. every *checked* op (reads, gathers, reduces, broadcasts, pointer
   walks) returned bit-identical values;
2. the final contents of every still-live shared object match;
3. runtime **invariants** hold at every fencing collective:

   * every address-cache entry refers to a *live* handle and stores
     exactly the base address the directory would hand out today
     (stale entries after a free are the paper's consistency hazard);
   * every pinned-table entry refers to a live handle, is actually
     pinned, and resolves to its recorded physical address;
   * a thread exiting a fence/barrier has no unapplied relaxed puts;
   * the virtual clock never runs backwards across barriers.

Because programs are race-free by construction, *any* disagreement is
a real runtime bug (or a generator/validator bug — either way worth a
report), never timing noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.address_cache import DEFAULT_CAPACITY, EvictionPolicy
from repro.core.piggyback import PiggybackConfig, PiggybackMode
from repro.network.params import MACHINES
from repro.runtime.pointer import PointerToShared
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.service.kvstore import kv_create as kv_create_collective
from repro.testing.oracle import (
    OpKey,
    OracleResult,
    canonical,
    run_oracle,
    values_equal,
)
from repro.testing.program import CHECKED_KINDS, Program, live_objects_at_end


# ---------------------------------------------------------------------------
# The configuration matrix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConfigPoint:
    """One named cell of the differential config matrix."""

    name: str
    machine: str = "gm"
    #: 4-thread programs on tpn=2 span two nodes (network traffic plus
    #: same-node shm accesses); tpn=1 makes every access remote.
    threads_per_node: int = 2
    cache_enabled: bool = True
    cache_capacity: int = DEFAULT_CAPACITY
    cache_policy: EvictionPolicy = EvictionPolicy.LRU
    #: None = the machine's native progress engine.
    progress: Optional[str] = None
    use_rdma_put: Optional[bool] = None
    bulk_enabled: bool = True
    bulk_max_inflight: int = 8
    bulk_max_coalesce_bytes: int = 64 * 1024
    piggyback: Optional[PiggybackMode] = None

    def runtime_config(self, nthreads: int, seed: int = 0) -> RuntimeConfig:
        machine = MACHINES[self.machine]
        if (self.progress is not None
                and machine.transport.progress != self.progress):
            machine = replace(machine, transport=machine.transport
                              .with_overrides(progress=self.progress))
        kw = dict(
            machine=machine,
            nthreads=nthreads,
            threads_per_node=self.threads_per_node,
            cache_enabled=self.cache_enabled,
            cache_capacity=self.cache_capacity,
            cache_policy=self.cache_policy,
            use_rdma_put=self.use_rdma_put,
            bulk_enabled=self.bulk_enabled,
            bulk_max_inflight=self.bulk_max_inflight,
            bulk_max_coalesce_bytes=self.bulk_max_coalesce_bytes,
            seed=seed,
        )
        if self.piggyback is not None:
            kw["piggyback"] = PiggybackConfig(mode=self.piggyback)
        return RuntimeConfig(**kw)


#: The smoke matrix: one representative per mechanism under test.
QUICK_MATRIX: Tuple[ConfigPoint, ...] = (
    ConfigPoint("gm-base"),
    ConfigPoint("gm-nocache", cache_enabled=False),
    ConfigPoint("gm-serial", bulk_enabled=False),
    ConfigPoint("gm-cap4-random", cache_capacity=4,
                cache_policy=EvictionPolicy.RANDOM),
    ConfigPoint("gm-tpn1", threads_per_node=1),
    ConfigPoint("lapi-base", machine="lapi"),
)

#: The full matrix the acceptance run sweeps.
FULL_MATRIX: Tuple[ConfigPoint, ...] = QUICK_MATRIX + (
    ConfigPoint("gm-cap4-fifo", cache_capacity=4,
                cache_policy=EvictionPolicy.FIFO),
    ConfigPoint("gm-win1", bulk_max_inflight=1,
                bulk_max_coalesce_bytes=0),
    ConfigPoint("gm-interrupt", progress="interrupt"),
    ConfigPoint("gm-rdmaput-off", use_rdma_put=False),
    ConfigPoint("gm-pb-explicit", piggyback=PiggybackMode.EXPLICIT),
    ConfigPoint("lapi-polling", machine="lapi", progress="polling"),
    ConfigPoint("lapi-rdmaput", machine="lapi", use_rdma_put=True),
    ConfigPoint("lapi-serial-tpn1", machine="lapi", threads_per_node=1,
                bulk_enabled=False),
    ConfigPoint("tcp", machine="tcp"),
    ConfigPoint("bgl", machine="bgl"),
)

MATRICES = {"quick": QUICK_MATRIX, "full": FULL_MATRIX}


def config_by_name(name: str) -> ConfigPoint:
    """Look one matrix cell up by name (reproducer snippets use this)."""
    for point in FULL_MATRIX:
        if point.name == name:
            return point
    raise KeyError(f"unknown config point {name!r}; choose from "
                   f"{[p.name for p in FULL_MATRIX]}")


# ---------------------------------------------------------------------------
# Divergence reports
# ---------------------------------------------------------------------------

@dataclass
class Divergence:
    """One oracle/runtime disagreement (or invariant violation)."""

    config: str
    kind: str                      # return | final | invariant | crash
    detail: str
    op_key: Optional[OpKey] = None
    expected: object = None
    actual: object = None
    program: Optional[Program] = None

    def describe(self) -> str:
        lines = [f"[{self.config}] {self.kind} divergence: {self.detail}"]
        if self.op_key is not None:
            pi, t, oi = self.op_key
            where = ("collective" if oi == -1
                     else f"op #{oi} of thread {t}")
            lines.append(f"  at phase {pi}, {where}")
        if self.expected is not None or self.actual is not None:
            lines.append(f"  oracle : {self.expected!r}")
            lines.append(f"  runtime: {self.actual!r}")
        if self.program is not None:
            lines.append(f"  program: {self.program.n_ops} ops, "
                         f"seed={self.program.seed}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Invariant checking
# ---------------------------------------------------------------------------

def check_invariants(rt: Runtime, handle_map: Dict, where: str) -> List[str]:
    """Audit the runtime's internal tables against directory truth.

    ``handle_map`` maps SVD handle -> live shared object (maintained by
    the driver as the program allocates and frees).  Runs synchronously
    (no simulator yields), so the audit is atomic with respect to the
    cooperative threads.
    """
    problems: List[str] = []
    for node in rt.cluster.nodes:
        cache = rt.addr_cache(node.id)
        for (handle, target), base in cache.entries().items():
            obj = handle_map.get(handle)
            if obj is None or getattr(obj, "freed", False):
                problems.append(
                    f"{where}: node {node.id} address cache holds "
                    f"{handle} which is freed/unknown (stale entry "
                    "survived eager invalidation)")
                continue
            if handle not in rt.svd(node.id):
                problems.append(
                    f"{where}: node {node.id} caches {handle} but its "
                    "own SVD replica says it is dead")
                continue
            truth = rt.ops._target_base_addr(obj, rt.cluster.node(target))
            if truth is not None and base != truth:
                problems.append(
                    f"{where}: node {node.id} caches base {base:#x} "
                    f"for ({handle}, node {target}) but the directory "
                    f"says {truth:#x}")
        table = rt.pinned_table(node.id)
        for entry in list(table._by_vaddr.values()):
            obj = handle_map.get(entry.handle)
            if obj is None or getattr(obj, "freed", False):
                problems.append(
                    f"{where}: node {node.id} pinned table still holds "
                    f"{entry.handle} after free (pin leak)")
                continue
            if not table.pins.is_pinned(entry.vaddr, entry.size):
                problems.append(
                    f"{where}: node {node.id} pinned table entry "
                    f"{entry.vaddr:#x}+{entry.size} is not actually "
                    "pinned")
                continue
            if table.pins.phys_addr(entry.vaddr) != entry.phys:
                problems.append(
                    f"{where}: node {node.id} pinned entry "
                    f"{entry.vaddr:#x} physical address drifted")
    return problems


# ---------------------------------------------------------------------------
# The driver kernel: executing a Program on the real runtime
# ---------------------------------------------------------------------------

class _Driver:
    """Shared state for one (program, config) replay."""

    def __init__(self, rt: Runtime, program: Program) -> None:
        self.rt = rt
        self.program = program
        self.objs: Dict[int, object] = {}
        self.locks: Dict[int, object] = {}
        #: SVD handle -> live shared object, for the invariant audit.
        self.handle_map: Dict[object, object] = {}
        self.returns: Dict[OpKey, object] = {}
        self.problems: List[str] = []
        self._last_barrier_now = -1.0
        # Static (pre-run) objects: scalars and locks.
        for s in program.scalars:
            sc = rt.alloc_scalar(s.owner_thread, dtype=s.dtype)
            self.objs[s.obj] = sc
            self.handle_map[sc.handle] = sc
        for l in program.locks:
            lck = rt.alloc_lock(l.owner_thread)
            self.locks[l.obj] = lck
            self.handle_map[lck.handle] = lck

    # -- post-fence bookkeeping -------------------------------------------

    def after_fencing(self, th, where: str) -> None:
        """Per-thread checks at every fencing collective."""
        pending = [ev for ev in th._outstanding_puts if not ev.processed]
        if pending:
            self.problems.append(
                f"{where}: thread {th.id} has {len(pending)} unapplied "
                "puts after its fence (fence did not drain)")
        if th.id == 0:
            now = self.rt.sim.now
            if now < self._last_barrier_now:
                self.problems.append(
                    f"{where}: virtual clock ran backwards "
                    f"({self._last_barrier_now} -> {now})")
            self._last_barrier_now = now
            self.problems.extend(
                check_invariants(self.rt, self.handle_map, where))

    # -- the per-thread kernel --------------------------------------------

    def kernel(self, th):
        t = th.id
        for pi, phase in enumerate(self.program.phases):
            if phase.is_collective:
                yield from self._collective(th, phase.collective, pi)
            else:
                for oi, op in enumerate(phase.per_thread[t]):
                    yield from self._thread_op(th, op, (pi, t, oi))

    def _collective(self, th, op, pi: int):
        t = th.id
        a = op.args
        if op.kind == "barrier":
            yield from th.barrier()
            self.after_fencing(th, f"barrier@phase{pi}")
        elif op.kind == "split_barrier":
            yield from th.barrier_notify()
            yield from th.compute(a["compute"][t])
            yield from th.barrier_wait()
            self.after_fencing(th, f"split_barrier@phase{pi}")
        elif op.kind == "alloc":
            arr = yield from th.all_alloc(a["nelems"],
                                          blocksize=a["blocksize"],
                                          dtype=a["dtype"])
            self.objs[op.obj] = arr
            self.handle_map[arr.handle] = arr
        elif op.kind == "alloc_matrix":
            mat = yield from th.all_alloc_matrix(
                a["rows"], a["cols"], a["tile_r"], a["tile_c"],
                dtype=a["dtype"])
            self.objs[op.obj] = mat
            self.handle_map[mat.handle] = mat
        elif op.kind == "free":
            arr = self.objs[op.obj]
            yield from th.all_free(arr)
            if t == 0:
                self.objs.pop(op.obj, None)
                self.handle_map.pop(arr.handle, None)
            self.after_fencing(th, f"free@phase{pi}")
        elif op.kind == "all_reduce":
            dt = np.dtype(a["dtype"])
            mine = dt.type(a["values"][t])
            fold = {"sum": None,
                    "max": lambda x, y: max(x, y),
                    "min": lambda x, y: min(x, y)}[a["op"]]
            v = yield from th.all_reduce(mine, op=fold)
            self.returns[(pi, t, -1)] = canonical(v)
        elif op.kind == "broadcast":
            v = yield from th.all_broadcast(
                a["value"] if t == 0 else None)
            self.returns[(pi, t, -1)] = canonical(v)
        elif op.kind == "kv_create":
            lock_id = a.get("lock", -1)
            locks = [self.locks[lock_id]] if lock_id != -1 else None
            store = yield from kv_create_collective(
                th, a["nbuckets"], a["slots"],
                access=a.get("access", "onesided"), locks=locks,
                blocksize=a.get("blocksize"))
            # Every thread builds an equivalent wrapper around the
            # one collectively-allocated backing array.
            self.objs[op.obj] = store
            self.handle_map[store.array.handle] = store.array
        elif op.kind == "kv_free":
            store = self.objs[op.obj]
            yield from th.all_free(store.array)
            if t == 0:
                self.objs.pop(op.obj, None)
                self.handle_map.pop(store.array.handle, None)
            self.after_fencing(th, f"kv_free@phase{pi}")
        else:  # pragma: no cover - validator rejects these
            raise ValueError(f"driver: unknown collective {op.kind!r}")

    def _thread_op(self, th, op, key: OpKey):
        a = op.args
        if op.kind == "fence":
            yield from th.fence()
            return
        if op.kind == "compute":
            yield from th.compute(a["usec"])
            return
        if op.kind == "poll":
            yield from th.poll()
            return
        if op.kind == "global_alloc":
            arr = yield from th.global_alloc(
                a["nelems"], blocksize=a.get("blocksize"),
                dtype=a["dtype"])
            self.objs[op.obj] = arr
            self.handle_map[arr.handle] = arr
            return
        if op.kind == "local_alloc":
            arr = yield from th.local_alloc(a["nelems"], dtype=a["dtype"])
            self.objs[op.obj] = arr
            self.handle_map[arr.handle] = arr
            return
        obj = self.objs[op.obj]
        record = None
        if op.kind == "get":
            record = yield from th.get(obj, a["index"])
        elif op.kind == "put":
            yield from th.put(obj, a["index"], a["values"])
        elif op.kind == "put_strict":
            yield from th.put_strict(obj, a["index"], a["values"])
        elif op.kind == "memget":
            record = yield from th.memget(obj, a["index"], a["nelems"])
        elif op.kind == "memput":
            yield from th.memput(obj, a["index"], a["values"])
        elif op.kind == "memget_v":
            record = yield from th.memget_v(
                obj, [tuple(sp) for sp in a["spans"]])
        elif op.kind == "memput_v":
            yield from th.memput_v(obj, [(i, v) for i, v in a["puts"]])
        elif op.kind == "gather":
            record = yield from th.gather(
                obj, a["indices"], width=a.get("width", 4),
                nelems=a.get("nelems", 1))
        elif op.kind == "ptr_walk":
            # Exercise pointer-to-shared arithmetic: walk delta from a
            # base pointer, then read through the resulting index.
            ptr = PointerToShared.from_index(obj.layout, a["index"])
            ptr = ptr + a["delta"]
            record = yield from th.get(obj, ptr.to_index())
        elif op.kind == "lock_add":
            lck = self.locks[a["lock"]]
            yield from th.lock(lck)
            v = yield from th.get(obj, a["index"])
            yield from th.put(obj, a["index"],
                              obj.dtype.type(v + a["delta"]))
            # The new value must be applied at the owner before the
            # lock releases, or the next locker reads a stale value.
            yield from th.fence()
            yield from th.unlock(lck)
        elif op.kind == "get_rc":
            record = yield from th.get_rc(obj, a["r"], a["c"])
        elif op.kind == "put_rc":
            yield from th.put_rc(obj, a["r"], a["c"], a["value"])
        elif op.kind == "memget_row":
            record = yield from th.memget_row(obj, a["r"], a["c0"],
                                              a["nelems"])
        elif op.kind == "kv_get":
            record = yield from obj.get(th, a["key"])
        elif op.kind == "kv_put":
            yield from obj.put(th, a["key"], a["value"])
        elif op.kind == "kv_del":
            record = yield from obj.delete(th, a["key"])
        elif op.kind == "kv_mget":
            record = yield from obj.multi_get(th, a["keys"])
        else:  # pragma: no cover - validator rejects these
            raise ValueError(f"driver: unknown op {op.kind!r}")
        if record is not None and op.kind in CHECKED_KINDS:
            self.returns[key] = canonical(record)


# ---------------------------------------------------------------------------
# Differential comparison
# ---------------------------------------------------------------------------

def run_config(program: Program, point: ConfigPoint,
               oracle: OracleResult,
               fault_plan=None, link_trace=None,
               repair_policy=None) -> List[Divergence]:
    """Replay ``program`` under one config; return its divergences.

    With ``fault_plan`` set the run executes under deterministic fault
    injection — drops, duplicates, stalls, pin exhaustion — and the
    reliability layer (see :mod:`repro.faults`) must still deliver
    oracle-identical values.  Any divergence under faults is a real
    recovery bug: a lost retry, a double-applied duplicate, a degraded
    handle serving stale data.  ``link_trace`` (a
    :class:`repro.faults.LinkTrace`) swaps the static plan for a
    time-evolving lossy fabric, optionally watched by a
    ``repair_policy`` (:data:`repro.faults.POLICIES` name) — again,
    answers must not change, only timing.
    """
    divs: List[Divergence] = []

    def div(kind, detail, **kw):
        if fault_plan is not None:
            detail = f"[fault seed {fault_plan.seed}] {detail}"
        if link_trace is not None:
            detail = (f"[trace seed {link_trace.seed} "
                      f"policy {repair_policy or 'none'}] {detail}")
        divs.append(Divergence(config=point.name, kind=kind,
                               detail=detail, program=program, **kw))

    cfg = point.runtime_config(program.nthreads,
                               seed=program.seed or 0)
    if fault_plan is not None:
        cfg = replace(cfg, fault_plan=fault_plan)
    if link_trace is not None:
        cfg = replace(cfg, link_trace=link_trace,
                      repair_policy=repair_policy)
    rt = Runtime(cfg)
    driver = _Driver(rt, program)
    rt.spawn(driver.kernel)
    try:
        rt.run()
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        div("crash", f"{type(exc).__name__}: {exc}")
        return divs

    for msg in driver.problems:
        div("invariant", msg)

    keys = set(oracle.returns) | set(driver.returns)
    for key in sorted(keys):
        if key not in driver.returns:
            div("return", "runtime recorded no value", op_key=key,
                expected=oracle.returns[key])
        elif key not in oracle.returns:
            div("return", "runtime recorded an unexpected value",
                op_key=key, actual=driver.returns[key])
        elif not values_equal(oracle.returns[key], driver.returns[key]):
            div("return", "checked op returned a different value",
                op_key=key, expected=oracle.returns[key],
                actual=driver.returns[key])

    for obj_id in live_objects_at_end(program):
        want = oracle.final.get(obj_id)
        obj = driver.objs.get(obj_id)
        if obj is None:
            got = None
        elif isinstance(want, dict):
            # kv stores compare at the service level: the decoded
            # {key: value} snapshot vs the oracle's flat dict (slot
            # placement inside buckets is an implementation detail).
            got = obj.snapshot()
        else:
            got = obj.data
        if got is None:
            div("final", f"object {obj_id} missing at program end",
                expected=want)
        elif not values_equal(want, got):
            div("final", f"object {obj_id} final contents differ",
                expected=want, actual=got.copy())
    return divs


def run_differential(program: Program,
                     configs: Optional[List[ConfigPoint]] = None,
                     oracle_result: Optional[OracleResult] = None,
                     stop_on_first: bool = False,
                     fault_plan=None, link_trace=None,
                     repair_policy=None) -> List[Divergence]:
    """Replay ``program`` across ``configs`` (default: quick matrix)
    and return every divergence from the flat oracle."""
    oracle = oracle_result or run_oracle(program)
    divs: List[Divergence] = []
    for point in configs if configs is not None else list(QUICK_MATRIX):
        divs.extend(run_config(program, point, oracle,
                               fault_plan=fault_plan,
                               link_trace=link_trace,
                               repair_policy=repair_policy))
        if divs and stop_on_first:
            break
    return divs


# ---------------------------------------------------------------------------
# The fuzz loop (CLI + test entry point)
# ---------------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seeds_run: List[int] = field(default_factory=list)
    programs_run: int = 0
    ops_run: int = 0
    configs: List[str] = field(default_factory=list)
    failures: List[Divergence] = field(default_factory=list)
    #: Shrunk reproducer programs, parallel to ``failures`` batches.
    reproducers: List[Program] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def record_flight(program: Program, point: ConfigPoint,
                  path: str, fault_plan=None) -> int:
    """Replay ``program`` under ``point`` with the flight recorder on
    and dump the event log as JSONL to ``path``.

    The replay is expected to diverge or even crash — that is why it
    is being recorded — so the run is wrapped and whatever events were
    captured up to the failure are flushed.  Returns the number of
    events written.
    """
    import os

    from repro.obs.events import EventLog
    from repro.obs.export import dump_jsonl

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    events = EventLog()
    cfg = replace(point.runtime_config(program.nthreads,
                                       seed=program.seed or 0),
                  events=events, fault_plan=fault_plan)
    rt = Runtime(cfg)
    driver = _Driver(rt, program)
    rt.spawn(driver.kernel)
    try:
        rt.run()
    except Exception:  # noqa: BLE001 - the crash is the point
        pass
    dump_jsonl(events, path)
    return len(events)


def fuzz(seeds, n_ops: int = 200, nthreads: int = 4,
         configs: Optional[List[ConfigPoint]] = None,
         shrink_failures: bool = True,
         corpus_dir: Optional[str] = None,
         trace_dir: Optional[str] = None,
         fault_plan=None,
         kv: bool = False,
         log=print) -> FuzzReport:
    """Generate-one, replay-everywhere, shrink-on-failure.

    ``seeds`` is any iterable of ints.  On a divergence the failing
    program is greedily shrunk (re-validating every candidate, so the
    minimized program is still race-free) and the reproducer is
    printed as a pytest snippet; with ``corpus_dir`` set it is also
    serialized there as JSON for the regression corpus.  With
    ``trace_dir`` set each shrunk failing program is additionally
    replayed under the first failing config with the protocol flight
    recorder on, and the JSONL event log is written there (uploaded as
    a CI artifact on failure; see docs/OBSERVABILITY.md).

    With ``fault_plan`` set every replay runs under deterministic
    fault injection, each program under its own derived fault seed
    (``plan.with_seed``) so a campaign explores many fault schedules
    while any failure stays replayable from the two seeds alone.
    """
    from repro.testing.generator import generate_program
    from repro.testing.shrink import shrink

    matrix = list(configs) if configs is not None else list(QUICK_MATRIX)
    report = FuzzReport(configs=[p.name for p in matrix])
    for seed in seeds:
        program = generate_program(seed, n_ops=n_ops, nthreads=nthreads,
                                   kv=kv)
        report.seeds_run.append(seed)
        report.programs_run += 1
        report.ops_run += program.n_ops
        plan = None
        if fault_plan is not None:
            plan = fault_plan.with_seed(fault_plan.seed + 1000003 * seed)
        divs = run_differential(program, configs=matrix, fault_plan=plan)
        if not divs:
            log(f"seed {seed}: {program.n_ops} ops x "
                f"{len(matrix)} configs ok"
                + (f" (fault seed {plan.seed})" if plan else ""))
            continue
        log(f"seed {seed}: {len(divs)} divergence(s); first:\n"
            f"{divs[0].describe()}")
        report.failures.extend(divs)
        reproducer = program
        if shrink_failures:
            failing = {d.config for d in divs}
            points = [p for p in matrix if p.name in failing]

            def still_fails(candidate: Program) -> bool:
                return bool(run_differential(candidate, configs=points,
                                             stop_on_first=True,
                                             fault_plan=plan))

            reproducer = shrink(program, still_fails)
            log(f"seed {seed}: shrunk {program.n_ops} -> "
                f"{reproducer.n_ops} ops")
        report.reproducers.append(reproducer)
        first_cfg = divs[0].config
        log("reproducer (pytest):\n"
            + reproducer.to_pytest_snippet(config_name=first_cfg))
        if corpus_dir is not None:
            import os
            os.makedirs(corpus_dir, exist_ok=True)
            path = os.path.join(corpus_dir,
                                f"shrunk-seed{seed}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(reproducer.dumps(indent=2) + "\n")
            log(f"saved reproducer to {path}")
        if trace_dir is not None:
            import os
            os.makedirs(trace_dir, exist_ok=True)
            path = os.path.join(
                trace_dir, f"shrunk-seed{seed}-{first_cfg}.events.jsonl")
            point = next(p for p in matrix if p.name == first_cfg)
            n = record_flight(reproducer, point, path, fault_plan=plan)
            log(f"saved flight-recorder log ({n} events) to {path}")
    return report
