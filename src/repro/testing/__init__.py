"""Model-based differential testing for the simulated XLUPC runtime.

The paper's central claim is that the remote address cache + RDMA fast
path is *semantically invisible*: every GET/PUT returns exactly what
the slow SVD/AM path would have returned, under any transport,
progress engine, eviction policy, and bulk-engine setting.  This
package searches that space mechanically:

* :mod:`~repro.testing.program` — race-free random UPC programs as
  data (JSON-serializable, validated);
* :mod:`~repro.testing.generator` — the seeded op-sequence generator;
* :mod:`~repro.testing.oracle` — a flat-memory reference executor
  (no SVD, no cache, no network) producing ground truth;
* :mod:`~repro.testing.runner` — the differential runner sweeping the
  config matrix, checking oracle equality plus runtime invariants;
* :mod:`~repro.testing.shrink` — greedy minimization of failures to
  pytest-snippet reproducers.

Entry points: ``python -m repro fuzz --seed N --ops M`` and the
fixed-seed corpus in ``tests/fuzz/``.
"""

from repro.testing.generator import (
    ProgramGenerator,
    generate_program,
    generate_service_program,
)
from repro.testing.oracle import (
    FlatOracle,
    OracleResult,
    canonical,
    run_oracle,
    values_equal,
)
from repro.testing.program import (
    Op,
    Phase,
    Program,
    ProgramError,
    live_objects_at_end,
    validate,
)
from repro.testing.runner import (
    FULL_MATRIX,
    MATRICES,
    QUICK_MATRIX,
    ConfigPoint,
    Divergence,
    FuzzReport,
    check_invariants,
    config_by_name,
    fuzz,
    record_flight,
    run_config,
    run_differential,
)
from repro.testing.shrink import shrink

__all__ = [
    "ConfigPoint",
    "Divergence",
    "FlatOracle",
    "FULL_MATRIX",
    "FuzzReport",
    "MATRICES",
    "Op",
    "OracleResult",
    "Phase",
    "Program",
    "ProgramError",
    "ProgramGenerator",
    "QUICK_MATRIX",
    "canonical",
    "check_invariants",
    "config_by_name",
    "fuzz",
    "generate_program",
    "generate_service_program",
    "live_objects_at_end",
    "record_flight",
    "run_config",
    "run_differential",
    "run_oracle",
    "shrink",
    "validate",
    "values_equal",
]
