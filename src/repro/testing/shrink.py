"""Greedy minimization of failing fuzz programs.

``shrink(program, predicate)`` returns the smallest program it can
find for which ``predicate`` still holds (predicate = "the differential
runner still reports a divergence").  The strategy is ddmin-flavoured
greedy deletion at two granularities:

1. contiguous *phase* ranges (alloc/free churn, whole parallel
   sections), largest chunks first;
2. contiguous op runs inside each thread's list of every parallel
   phase, largest chunks first;

plus a final sweep dropping statically-declared scalars/locks nothing
references.  Every candidate is re-validated with
:func:`repro.testing.program.validate` before the predicate runs, so a
shrunk reproducer is still race-free — a persistent failure can never
be an artifact of an invalid (timing-dependent) program.

The predicate is the expensive part (each call replays the candidate
on real runtimes), so the total number of predicate calls is bounded
by ``max_checks``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.testing.program import (
    Phase,
    Program,
    ProgramError,
    validate,
)


def _candidate(base: Program, phases, scalars=None,
               locks=None) -> Optional[Program]:
    cand = Program(
        nthreads=base.nthreads,
        scalars=tuple(scalars if scalars is not None else base.scalars),
        locks=tuple(locks if locks is not None else base.locks),
        phases=tuple(phases),
        seed=base.seed,
    )
    try:
        validate(cand)
    except ProgramError:
        return None
    return cand


class _Budget:
    """Caps predicate calls; a spent budget fails every candidate."""

    def __init__(self, predicate: Callable[[Program], bool],
                 max_checks: int) -> None:
        self.predicate = predicate
        self.remaining = max_checks

    def ok(self, cand: Optional[Program]) -> bool:
        if cand is None or self.remaining <= 0:
            return False
        self.remaining -= 1
        return self.predicate(cand)


def _sweep_phases(current: Program, budget: _Budget):
    """Delete contiguous phase ranges, biggest chunks first."""
    improved = False
    chunk = max(1, len(current.phases) // 2)
    while chunk >= 1:
        i = 0
        while i + chunk <= len(current.phases):
            phases = list(current.phases)
            cand = _candidate(current, phases[:i] + phases[i + chunk:])
            if budget.ok(cand):
                current = cand
                improved = True
                # Stay at i: the next chunk slid into this window.
            else:
                i += 1
        chunk //= 2
    return current, improved


def _sweep_ops(current: Program, budget: _Budget):
    """Delete op runs inside each thread's list of parallel phases."""
    improved = False
    for pi in range(len(current.phases)):
        if current.phases[pi].is_collective:
            continue
        for t in range(current.nthreads):
            ops0 = current.phases[pi].per_thread[t]
            chunk = max(1, len(ops0) // 2) if ops0 else 0
            while chunk >= 1:
                i = 0
                while True:
                    ph = current.phases[pi]
                    ops: List = list(ph.per_thread[t])
                    if i + chunk > len(ops):
                        break
                    per = list(ph.per_thread)
                    per[t] = tuple(ops[:i] + ops[i + chunk:])
                    phases = list(current.phases)
                    phases[pi] = Phase(per_thread=tuple(per))
                    cand = _candidate(current, phases)
                    if budget.ok(cand):
                        current = cand
                        improved = True
                    else:
                        i += 1
                chunk //= 2
    return current, improved


def _sweep_statics(current: Program, budget: _Budget):
    """Drop scalar/lock declarations nothing references anymore."""
    improved = False
    used = set()
    for op in current.iter_ops():
        used.add(op.obj)
        if op.kind == "lock_add":
            used.add(op.args["lock"])
        elif op.kind == "kv_create" and op.args.get("lock", -1) != -1:
            used.add(op.args["lock"])
    for s in current.scalars:
        if s.obj in used:
            continue
        cand = _candidate(
            current, current.phases,
            scalars=[x for x in current.scalars if x.obj != s.obj])
        if budget.ok(cand):
            current = cand
            improved = True
    for l in current.locks:
        if l.obj in used:
            continue
        cand = _candidate(
            current, current.phases,
            locks=[x for x in current.locks if x.obj != l.obj])
        if budget.ok(cand):
            current = cand
            improved = True
    return current, improved


def shrink(program: Program, predicate: Callable[[Program], bool],
           max_checks: int = 300) -> Program:
    """Greedily minimize ``program`` while ``predicate`` holds.

    ``predicate(program)`` must be True for the input; the result is a
    (locally) 1-minimal program under the deletion moves above.
    """
    budget = _Budget(predicate, max_checks)
    current = program
    improved = True
    while improved and budget.remaining > 0:
        improved = False
        for sweep in (_sweep_phases, _sweep_ops, _sweep_statics):
            current, did = sweep(current, budget)
            improved = improved or did
    return current
