"""The flat-memory reference oracle.

Executes a fuzz :class:`~repro.testing.program.Program` against plain
in-process NumPy arrays — no SVD, no address cache, no pinning, no
network, no virtual clock.  Because programs are race-free (see the
program-module docstring), *any* sequential execution order yields the
semantics every legal runtime interleaving must produce; the oracle
runs threads in id order within each phase.

The oracle's outputs are the ground truth the differential runner
compares every configuration against:

* ``returns[op_seq][thread]`` — the value(s) each *checked* op
  returned (reads, gathers, reduces, broadcasts, pointer walks);
* ``final[obj_id]`` — the bytes of every still-live shared object at
  the program's closing barrier.

Deliberate independence: the oracle never imports the runtime.  Index
arithmetic (block spans, tile-major matrix mapping, pointer walks) is
reimplemented from the *definitions*, so a bug in the runtime's layout
or pointer code shows up as a divergence instead of being mirrored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.testing.program import Op, Program, _matrix_linear, _ObjState


#: Op identity shared by oracle and runner: ``(phase index, thread,
#: position in that thread's op list)``; collectives use position -1
#: and record one return per thread.
OpKey = Tuple[int, int, int]


@dataclass
class OracleResult:
    """Ground truth for one program."""

    #: :data:`OpKey` -> canonicalized return value (checked ops only).
    returns: Dict[OpKey, object] = field(default_factory=dict)
    #: Still-live object id -> final element values.
    final: Dict[int, np.ndarray] = field(default_factory=dict)


def canonical(value) -> object:
    """Returns comparable across oracle and runtime: scalars stay
    scalars, arrays become ndarray, sequences stay lists."""
    if isinstance(value, list):
        return [canonical(v) for v in value]
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, np.generic):
        return value.item()
    return value


def values_equal(a, b) -> bool:
    """Bit-strict equality over the canonical shapes."""
    if isinstance(a, list) or isinstance(b, list):
        if not (isinstance(a, list) and isinstance(b, list)):
            return False
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) or isinstance(b, dict):
        # kv-store snapshots: plain {key: value} dicts.
        if not (isinstance(a, dict) and isinstance(b, dict)):
            return False
        return a.keys() == b.keys() and all(
            values_equal(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        return a.dtype == b.dtype and a.shape == b.shape and bool(
            np.array_equal(a, b))
    return type(a) is type(b) and a == b


class FlatOracle:
    """Executes one program over flat NumPy storage."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.mem: Dict[int, np.ndarray] = {}
        #: kv stores: object id -> flat model dict ({key: value}).
        #: Capacity (bucket overflow) is the validator's concern; a
        #: validated program never overflows, so the model needs no
        #: bucket structure at all — that asymmetry is the point of a
        #: differential oracle.
        self.kv: Dict[int, Dict[int, int]] = {}
        #: Object id -> matrix geometry (tile-major mapping inputs).
        self.shapes: Dict[int, _ObjState] = {}
        self.result = OracleResult()
        for s in program.scalars:
            self.mem[s.obj] = np.zeros(1, dtype=np.dtype(s.dtype))

    # -- op execution ------------------------------------------------------

    def run(self) -> OracleResult:
        for pi, phase in enumerate(self.program.phases):
            if phase.is_collective:
                self._collective(phase.collective, pi)
                continue
            assert phase.per_thread is not None
            for t, ops in enumerate(phase.per_thread):
                for oi, op in enumerate(ops):
                    self._thread_op(op, (pi, t, oi))
        self.result.final = {k: v.copy() for k, v in self.mem.items()}
        self.result.final.update(
            {k: dict(v) for k, v in self.kv.items()})
        return self.result

    def _collective(self, op: Op, pi: int) -> None:
        p = self.program
        if op.kind == "alloc":
            self.mem[op.obj] = np.zeros(
                op.args["nelems"], dtype=np.dtype(op.args["dtype"]))
        elif op.kind == "alloc_matrix":
            a = op.args
            st = _ObjState(a["rows"] * a["cols"], a["dtype"], "matrix",
                           rows=a["rows"], cols=a["cols"],
                           tile_r=a["tile_r"], tile_c=a["tile_c"])
            self.shapes[op.obj] = st
            self.mem[op.obj] = np.zeros(st.nelems,
                                        dtype=np.dtype(a["dtype"]))
        elif op.kind == "free":
            self.mem.pop(op.obj, None)
            self.shapes.pop(op.obj, None)
        elif op.kind == "kv_create":
            self.kv[op.obj] = {}
        elif op.kind == "kv_free":
            self.kv.pop(op.obj, None)
        elif op.kind == "all_reduce":
            dt = np.dtype(op.args["dtype"])
            vals = [dt.type(v) for v in op.args["values"]]
            kind = op.args["op"]
            # Thread-id-order fold — the runtime Reducer's documented
            # contract, so non-commutative float sums still agree.
            acc = vals[0]
            for v in vals[1:]:
                if kind == "sum":
                    acc = dt.type(acc + v)
                elif kind == "max":
                    acc = max(acc, v)
                else:
                    acc = min(acc, v)
            for t in range(p.nthreads):
                self.result.returns[(pi, t, -1)] = canonical(acc)
        elif op.kind == "broadcast":
            for t in range(p.nthreads):
                self.result.returns[(pi, t, -1)] = op.args["value"]
        # barrier / split_barrier: pure synchronization, no values.

    def _thread_op(self, op: Op, key: OpKey) -> None:
        a = op.args
        if op.kind in ("fence", "compute", "poll"):
            return
        if op.kind in ("global_alloc", "local_alloc"):
            self.mem[op.obj] = np.zeros(a["nelems"],
                                        dtype=np.dtype(a["dtype"]))
            return
        if op.kind in ("kv_get", "kv_put", "kv_del", "kv_mget"):
            kv = self.kv[op.obj]
            if op.kind == "kv_get":
                self.result.returns[key] = kv.get(a["key"], -1)
            elif op.kind == "kv_put":
                kv[a["key"]] = a["value"]
            elif op.kind == "kv_del":
                self.result.returns[key] = kv.pop(a["key"], None) \
                    is not None
            else:
                self.result.returns[key] = [kv.get(k, -1)
                                            for k in a["keys"]]
            return
        mem = self.mem[op.obj]
        dt = mem.dtype
        record = None
        if op.kind == "get":
            record = mem[a["index"]]
        elif op.kind in ("put", "put_strict"):
            vals = np.asarray(a["values"], dtype=dt)
            mem[a["index"]:a["index"] + len(vals)] = vals
        elif op.kind == "memget":
            record = mem[a["index"]:a["index"] + a["nelems"]].copy()
        elif op.kind == "memput":
            vals = np.asarray(a["values"], dtype=dt)
            mem[a["index"]:a["index"] + len(vals)] = vals
        elif op.kind == "memget_v":
            record = [mem[i:i + n].copy() for i, n in a["spans"]]
        elif op.kind == "memput_v":
            for i, vals in a["puts"]:
                vv = np.asarray(vals, dtype=dt)
                mem[i:i + len(vv)] = vv
        elif op.kind == "gather":
            n = a.get("nelems", 1)
            if n == 1:
                record = [mem[i] for i in a["indices"]]
            else:
                record = [mem[i:i + n].copy() for i in a["indices"]]
        elif op.kind == "ptr_walk":
            # Pointer-to-shared arithmetic walks global layout order,
            # which is *by definition* index + delta.
            record = mem[a["index"] + a["delta"]]
        elif op.kind == "lock_add":
            mem[a["index"]] = dt.type(mem[a["index"]] + dt.type(
                a["delta"]))
        elif op.kind in ("get_rc", "put_rc", "memget_row"):
            st = self.shapes[op.obj]
            if op.kind == "memget_row":
                lin = _matrix_linear(st, a["r"], a["c0"])
                record = mem[lin:lin + a["nelems"]].copy()
            else:
                lin = _matrix_linear(st, a["r"], a["c"])
                if op.kind == "get_rc":
                    record = mem[lin]
                else:
                    mem[lin] = dt.type(a["value"])
        else:
            raise ValueError(f"oracle: unknown op kind {op.kind!r}")
        if record is not None:
            self.result.returns[key] = canonical(record)


def run_oracle(program: Program) -> OracleResult:
    return FlatOracle(program).run()
