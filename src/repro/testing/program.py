"""The fuzzer's program IR: randomized UPC programs as data.

A :class:`Program` is a deterministic, *race-free* UPC program over
shared scalars/arrays/matrices, structured as alternating **phases**:

* a ``parallel`` phase holds one op list per UPC thread; the lists run
  concurrently with whatever interleaving the simulator (and the
  config under test) produces;
* a ``collective`` phase holds a single op every thread executes
  (barrier, split-phase barrier, collective alloc/free, reduce,
  broadcast).

Race freedom is the load-bearing property: the differential harness
asserts that *every* configuration (protocols, progress engines,
eviction policies, bulk-engine knobs) produces bit-identical results,
which is only a theorem for programs whose visible values do not
depend on message timing.  The discipline (enforced by the generator,
re-checked by :func:`validate`) is the UPC relaxed-consistency
contract:

1. within a phase an element is written by at most one thread, and
   only if no other thread's write to it is still undrained from an
   earlier phase;
2. a thread may read an element only if nobody wrote it this phase —
   unless the reader itself wrote it *and* has fenced since;
3. elements touched by lock-protected read-modify-writes are touched
   only by lock ops *holding the same lock* until the next fencing
   collective (their final value is then order-independent; their
   intermediate reads are not compared — and RMWs under different
   locks would interleave their get/put and lose updates);
4. writes become globally visible only at *fencing* collectives
   (barrier, split-phase barrier, collective free); a collective that
   synchronizes without fencing (alloc, reduce, broadcast) does not
   publish anything.

Programs serialize to plain JSON (the regression-corpus format) and
print as runnable pytest snippets for shrunk failure reproducers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Op kinds that every thread executes together (one per phase).
COLLECTIVE_KINDS = frozenset({
    "barrier", "split_barrier", "alloc", "alloc_matrix", "free",
    "all_reduce", "broadcast", "kv_create", "kv_free",
})

#: Collectives that imply a fence on every thread (publish writes).
FENCING_KINDS = frozenset({"barrier", "split_barrier", "free",
                           "kv_free"})

#: Per-thread op kinds.
THREAD_KINDS = frozenset({
    "get", "put", "put_strict", "memget", "memput", "memget_v",
    "memput_v", "gather", "fence", "compute", "poll", "lock_add",
    "ptr_walk", "get_rc", "put_rc", "memget_row", "global_alloc",
    "local_alloc", "kv_get", "kv_put", "kv_del", "kv_mget",
})

#: Kinds whose return value is deterministic and compared against the
#: oracle.  ``lock_add`` returns the pre-increment value, which depends
#: on acquisition order — its *effect* is checked via final state only.
#: kv lookups/deletes are deterministic under the kv discipline (one
#: writer per bucket per phase), so their returns are compared too.
CHECKED_KINDS = frozenset({
    "get", "memget", "memget_v", "gather", "ptr_walk", "get_rc",
    "memget_row", "all_reduce", "broadcast", "kv_get", "kv_mget",
    "kv_del",
})

#: Per-thread op kinds that target a kv store (see the kv discipline
#: note in :func:`validate`).
KV_THREAD_KINDS = frozenset({"kv_get", "kv_put", "kv_del", "kv_mget"})

#: dtypes the generator draws from (exact under every arithmetic the
#: programs perform, so oracle comparison is bit-strict).
DTYPES = ("u4", "u8", "i8", "f8")


@dataclass(frozen=True)
class Op:
    """One operation.  ``args`` is a kind-specific dict of plain JSON
    types (ints, strings, lists) so programs round-trip losslessly."""

    kind: str
    #: Issuing thread for per-thread ops; -1 for collectives.
    thread: int = -1
    #: Target object id (index into the program's object table); -1
    #: when the op touches no shared object (barrier, fence, compute).
    obj: int = -1
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        d = {"kind": self.kind}
        if self.thread != -1:
            d["thread"] = self.thread
        if self.obj != -1:
            d["obj"] = self.obj
        if self.args:
            d["args"] = self.args
        return d

    @staticmethod
    def from_json(d: dict) -> "Op":
        return Op(kind=d["kind"], thread=d.get("thread", -1),
                  obj=d.get("obj", -1), args=d.get("args", {}))


@dataclass(frozen=True)
class Phase:
    """``collective`` (one op, all threads) or ``parallel`` (one op
    list per thread, run concurrently)."""

    collective: Optional[Op] = None
    per_thread: Optional[Tuple[Tuple[Op, ...], ...]] = None

    def __post_init__(self) -> None:
        if (self.collective is None) == (self.per_thread is None):
            raise ValueError("phase is either collective or parallel")

    @property
    def is_collective(self) -> bool:
        return self.collective is not None

    @property
    def fencing(self) -> bool:
        return (self.collective is not None
                and self.collective.kind in FENCING_KINDS)

    def ops(self) -> Iterator[Op]:
        if self.collective is not None:
            yield self.collective
        else:
            for lst in self.per_thread or ():
                yield from lst

    def to_json(self) -> dict:
        if self.collective is not None:
            return {"collective": self.collective.to_json()}
        return {"parallel": [[op.to_json() for op in lst]
                             for lst in self.per_thread]}

    @staticmethod
    def from_json(d: dict) -> "Phase":
        if "collective" in d:
            return Phase(collective=Op.from_json(d["collective"]))
        return Phase(per_thread=tuple(
            tuple(Op.from_json(o) for o in lst) for lst in d["parallel"]))


@dataclass(frozen=True)
class ScalarDecl:
    """A statically-allocated shared scalar (exists before the run)."""

    obj: int
    owner_thread: int
    dtype: str

    def to_json(self) -> dict:
        return {"obj": self.obj, "owner": self.owner_thread,
                "dtype": self.dtype}

    @staticmethod
    def from_json(d: dict) -> "ScalarDecl":
        return ScalarDecl(obj=d["obj"], owner_thread=d["owner"],
                          dtype=d["dtype"])


@dataclass(frozen=True)
class LockDecl:
    """A statically-allocated upc_lock_t."""

    obj: int
    owner_thread: int

    def to_json(self) -> dict:
        return {"obj": self.obj, "owner": self.owner_thread}

    @staticmethod
    def from_json(d: dict) -> "LockDecl":
        return LockDecl(obj=d["obj"], owner_thread=d["owner"])


@dataclass(frozen=True)
class Program:
    """One complete fuzz program (see module docstring)."""

    nthreads: int
    scalars: Tuple[ScalarDecl, ...] = ()
    locks: Tuple[LockDecl, ...] = ()
    phases: Tuple[Phase, ...] = ()
    #: Provenance, carried through shrinking for reproducibility notes.
    seed: Optional[int] = None

    # -- sizing ----------------------------------------------------------

    @property
    def n_ops(self) -> int:
        """Total op count (collectives count once)."""
        return sum(1 for ph in self.phases for _ in ph.ops())

    def iter_ops(self) -> Iterator[Op]:
        for ph in self.phases:
            yield from ph.ops()

    # -- serialization ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": 1,
            "nthreads": self.nthreads,
            "seed": self.seed,
            "scalars": [s.to_json() for s in self.scalars],
            "locks": [l.to_json() for l in self.locks],
            "phases": [ph.to_json() for ph in self.phases],
        }

    def dumps(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_json(), indent=indent)

    @staticmethod
    def from_json(d: dict) -> "Program":
        if d.get("version") != 1:
            raise ValueError(f"unknown program version {d.get('version')}")
        return Program(
            nthreads=d["nthreads"],
            seed=d.get("seed"),
            scalars=tuple(ScalarDecl.from_json(s) for s in d["scalars"]),
            locks=tuple(LockDecl.from_json(l) for l in d["locks"]),
            phases=tuple(Phase.from_json(p) for p in d["phases"]),
        )

    @staticmethod
    def loads(text: str) -> "Program":
        return Program.from_json(json.loads(text))

    # -- reproducer ------------------------------------------------------

    def to_pytest_snippet(self, config_name: str = "gm-base") -> str:
        """A runnable pytest reproducer for this program."""
        body = self.dumps(indent=2).replace("\n", "\n    ")
        return (
            "import json\n"
            "\n"
            "from repro.testing import Program, run_differential\n"
            "from repro.testing.runner import config_by_name\n"
            "\n"
            "PROGRAM_JSON = \"\"\"\\\n"
            f"    {body}\n"
            "\"\"\"\n"
            "\n"
            "\n"
            "def test_reproducer():\n"
            "    program = Program.loads(PROGRAM_JSON)\n"
            "    divergences = run_differential(\n"
            f"        program, configs=[config_by_name({config_name!r})])\n"
            "    assert not divergences, divergences[0].describe()\n"
        )


# ---------------------------------------------------------------------------
# Validation: well-formedness + the race-freedom discipline
# ---------------------------------------------------------------------------

class ProgramError(ValueError):
    """The program violates well-formedness or the race discipline."""


class _ObjState:
    """Validator-side model of one shared object's element states."""

    __slots__ = ("nelems", "dtype", "kind", "writer", "fenced",
                 "readers", "lockid", "visible_to", "blocksize",
                 "rows", "cols", "tile_r", "tile_c", "slots",
                 "keysets")

    def __init__(self, nelems: int, dtype: str, kind: str,
                 blocksize: int = 0, visible_to: Optional[int] = None,
                 rows: int = 0, cols: int = 0, tile_r: int = 0,
                 tile_c: int = 0, slots: int = 0) -> None:
        self.nelems = nelems
        self.dtype = dtype
        self.kind = kind           # "array" | "matrix" | "scalar" | "kv"
        self.blocksize = blocksize
        #: kv stores: slots per bucket (capacity) and the evolving set
        #: of live keys per bucket, for overflow checking.  For kv
        #: stores ``nelems`` counts *buckets* — the race discipline is
        #: enforced at bucket granularity, since every kv op touches
        #: whole buckets.
        self.slots = slots
        self.keysets = ([set() for _ in range(nelems)]
                        if kind == "kv" else None)
        self.rows, self.cols = rows, cols
        self.tile_r, self.tile_c = tile_r, tile_c
        #: -1 free, -2 lock-touched, else writer thread id.
        self.writer = np.full(nelems, -1, dtype=np.int64)
        self.fenced = np.zeros(nelems, dtype=bool)
        #: Bitmask of threads that *read* the element this phase.  A
        #: same-phase read and write by different threads race in both
        #: orders (the ops run concurrently whatever their positions in
        #: the per-thread lists), so writes require no foreign readers.
        self.readers = np.zeros(nelems, dtype=np.int64)
        #: The lock guarding this element's RMWs this phase (-1 none).
        #: lock_add is only atomic against other lock_adds holding the
        #: *same* lock — two RMWs under different locks interleave
        #: their get/put and can lose an increment.
        self.lockid = np.full(nelems, -1, dtype=np.int64)
        #: None = every thread may touch it; else only this thread
        #: (non-collective allocation before its publishing barrier).
        self.visible_to = visible_to


def _op_spans(op: Op) -> List[Tuple[int, int, str]]:
    """(start, nelems, mode) element spans an op touches.

    mode is ``r`` (read), ``w`` (write), ``s`` (strict/fenced write)
    or ``l`` (lock-protected RMW).
    """
    a = op.args
    k = op.kind
    if k == "get":
        return [(a["index"], 1, "r")]
    if k == "put":
        return [(a["index"], len(a["values"]), "w")]
    if k == "put_strict":
        return [(a["index"], len(a["values"]), "s")]
    if k == "memget":
        return [(a["index"], a["nelems"], "r")]
    if k == "memput":
        return [(a["index"], len(a["values"]), "w")]
    if k == "memget_v":
        return [(i, n, "r") for i, n in a["spans"]]
    if k == "memput_v":
        return [(i, len(v), "w") for i, v in a["puts"]]
    if k == "gather":
        return [(i, a.get("nelems", 1), "r") for i in a["indices"]]
    if k == "ptr_walk":
        return [(a["index"] + a["delta"], 1, "r")]
    if k == "lock_add":
        return [(a["index"], 1, "l")]
    return []


def validate(program: Program) -> None:
    """Raise :class:`ProgramError` unless ``program`` is well-formed
    and race-free per the module-docstring discipline.

    The shrinker leans on this: any candidate reduction that survives
    validation is guaranteed deterministic, so a persistent failure is
    a real runtime divergence, never an artifact of an invalid program.
    """
    n = program.nthreads
    if n < 1:
        raise ProgramError(f"nthreads must be >= 1, got {n}")
    objs: Dict[int, _ObjState] = {}
    lock_ids = set()
    for s in program.scalars:
        if not 0 <= s.owner_thread < n:
            raise ProgramError(f"scalar {s.obj}: bad owner")
        objs[s.obj] = _ObjState(1, s.dtype, "scalar")
    for l in program.locks:
        if not 0 <= l.owner_thread < n:
            raise ProgramError(f"lock {l.obj}: bad owner")
        lock_ids.add(l.obj)

    def live(obj_id: int, thread: int) -> _ObjState:
        st = objs.get(obj_id)
        if st is None:
            raise ProgramError(f"op touches dead/unknown object {obj_id}")
        if st.visible_to is not None and st.visible_to != thread:
            raise ProgramError(
                f"object {obj_id} not yet published to thread {thread}")
        return st

    def check_thread_op(op: Op) -> None:
        t = op.thread
        if not 0 <= t < n:
            raise ProgramError(f"{op.kind}: bad thread {t}")
        if op.kind in ("fence", "compute", "poll"):
            if op.kind == "fence":
                for st in objs.values():
                    st.fenced[st.writer == t] = True
            return
        if op.kind in ("global_alloc", "local_alloc"):
            if op.obj in objs or op.obj in lock_ids:
                raise ProgramError(f"object id {op.obj} reused")
            objs[op.obj] = _ObjState(
                op.args["nelems"], op.args["dtype"], "array",
                blocksize=op.args.get("blocksize") or op.args["nelems"],
                visible_to=t)
            return
        st = live(op.obj, t)
        if op.kind in KV_THREAD_KINDS:
            if st.kind != "kv":
                raise ProgramError(f"{op.kind} on non-kv object {op.obj}")
        elif st.kind == "kv":
            raise ProgramError(
                f"{op.kind} on kv store {op.obj} (use kv_* ops)")
        if op.kind == "lock_add":
            if op.args["lock"] not in lock_ids:
                raise ProgramError(f"lock_add: {op.args['lock']} is "
                                   "not a lock")
            if st.dtype not in ("u4", "u8", "i8"):
                raise ProgramError("lock_add target must be integer "
                                   "(float adds do not commute)")
        if op.kind in ("get_rc", "put_rc", "memget_row"):
            if st.kind != "matrix":
                raise ProgramError(f"{op.kind} on non-matrix {op.obj}")
            r = op.args["r"]
            if op.kind == "memget_row":
                c0, cnt = op.args["c0"], op.args["nelems"]
                if (c0 // st.tile_c) != ((c0 + cnt - 1) // st.tile_c):
                    raise ProgramError("memget_row crosses tile column")
                lin = _matrix_linear(st, r, c0)
                spans = [(lin, cnt, "r")]
            else:
                lin = _matrix_linear(st, r, op.args["c"])
                spans = [(lin, 1,
                          "r" if op.kind == "get_rc" else "w")]
        elif op.kind in KV_THREAD_KINDS:
            # kv discipline: bucket-granular.  Lookups read their
            # key's bucket; updates are fenced writes ("s" — the
            # one-sided path fences inside the lock before releasing,
            # so the writer may re-read its bucket later in the
            # phase).  PUTs additionally respect bucket capacity:
            # occupancy counts *live* keys (deleted slots are
            # immediately reusable), folded in program order — within
            # a phase all same-bucket updates come from one thread,
            # so program order is execution order.
            keys = (list(op.args["keys"]) if op.kind == "kv_mget"
                    else [op.args["key"]])
            for k in keys:
                if not isinstance(k, int) or isinstance(k, bool) or k < 0:
                    raise ProgramError(f"{op.kind}: bad key {k!r}")
            if op.kind == "kv_put":
                v = op.args["value"]
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    raise ProgramError(f"kv_put: bad value {v!r}")
                key = op.args["key"]
                ks = st.keysets[key % st.nelems]
                if key not in ks and len(ks) >= st.slots:
                    raise ProgramError(
                        f"kv_put t{t}: bucket {key % st.nelems} of obj "
                        f"{op.obj} would overflow ({st.slots} slots)")
            mode = "r" if op.kind in ("kv_get", "kv_mget") else "s"
            spans = [(b, 1, mode)
                     for b in sorted({k % st.nelems for k in keys})]
        else:
            spans = _op_spans(op)
        if op.kind in ("get", "put", "put_strict"):
            # Scalar-path ops must stay inside one affine block.
            if st.kind == "array" and st.blocksize:
                for start, cnt, _ in spans:
                    if cnt > 1 and (start // st.blocksize
                                    != (start + cnt - 1) // st.blocksize):
                        raise ProgramError(
                            f"{op.kind} span [{start},{start + cnt}) "
                            "crosses a block boundary")
        for start, cnt, mode in spans:
            if start < 0 or start + cnt > st.nelems:
                raise ProgramError(
                    f"{op.kind}: span [{start}, {start + cnt}) outside "
                    f"object {op.obj} of {st.nelems} elems")
            if cnt == 0:
                continue
            w = st.writer[start:start + cnt]
            f = st.fenced[start:start + cnt]
            r = st.readers[start:start + cnt]
            if mode == "r":
                ok = (w == -1) | ((w == t) & f)
                if not ok.all():
                    raise ProgramError(
                        f"racy read: {op.kind} t{t} reads "
                        f"[{start},{start + cnt}) of obj {op.obj} "
                        "written this phase")
                st.readers[start:start + cnt] = r | (1 << t)
            elif mode in ("w", "s"):
                ok = ((w == -1) | ((w == t) & f)) & ((r & ~(1 << t)) == 0)
                if not ok.all():
                    raise ProgramError(
                        f"racy write: {op.kind} t{t} overwrites "
                        f"[{start},{start + cnt}) of obj {op.obj} "
                        "read or written this phase")
                w[:] = t
                f[:] = mode == "s"
                st.writer[start:start + cnt] = w
                st.fenced[start:start + cnt] = f
            elif mode == "l":
                lk = st.lockid[start:start + cnt]
                lock = op.args["lock"]
                ok = (((w == -1) | (w == -2)) & (r == 0)
                      & ((lk == -1) | (lk == lock)))
                if not ok.all():
                    raise ProgramError(
                        f"lock_add t{t} on obj {op.obj}[{start}] "
                        "mixed with plain accesses or a different "
                        "lock this phase")
                st.writer[start:start + cnt] = -2
                st.fenced[start:start + cnt] = False
                st.lockid[start:start + cnt] = lock
        if op.kind == "kv_put":
            st.keysets[op.args["key"] % st.nelems].add(op.args["key"])
        elif op.kind == "kv_del":
            st.keysets[op.args["key"] % st.nelems].discard(op.args["key"])

    for ph in program.phases:
        if ph.is_collective:
            op = ph.collective
            assert op is not None
            if op.kind not in COLLECTIVE_KINDS:
                raise ProgramError(f"{op.kind} is not collective")
            if op.kind in ("alloc", "alloc_matrix"):
                if op.obj in objs or op.obj in lock_ids:
                    raise ProgramError(f"object id {op.obj} reused")
                if op.kind == "alloc":
                    objs[op.obj] = _ObjState(
                        op.args["nelems"], op.args["dtype"], "array",
                        blocksize=op.args["blocksize"])
                else:
                    a = op.args
                    objs[op.obj] = _ObjState(
                        a["rows"] * a["cols"], a["dtype"], "matrix",
                        blocksize=a["tile_r"] * a["tile_c"],
                        rows=a["rows"], cols=a["cols"],
                        tile_r=a["tile_r"], tile_c=a["tile_c"])
            elif op.kind == "free":
                st = objs.pop(op.obj, None)
                if st is None:
                    raise ProgramError(f"free of dead object {op.obj}")
                if st.kind == "scalar":
                    raise ProgramError("scalars are static; no free")
                if st.kind == "kv":
                    raise ProgramError("kv stores are freed via kv_free")
            elif op.kind == "kv_create":
                if op.obj in objs or op.obj in lock_ids:
                    raise ProgramError(f"object id {op.obj} reused")
                a = op.args
                nb, slots = a["nbuckets"], a["slots"]
                if nb <= 0 or slots <= 0:
                    raise ProgramError("kv_create: bad geometry")
                access = a.get("access", "onesided")
                if access not in ("onesided", "rpc"):
                    raise ProgramError(
                        f"kv_create: unknown access path {access!r}")
                lock = a.get("lock", -1)
                if lock != -1 and lock not in lock_ids:
                    raise ProgramError(f"kv_create: {lock} is not a lock")
                span = 2 * slots
                bs = a.get("blocksize") or span
                if access == "rpc" and bs % span != 0:
                    raise ProgramError(
                        "kv_create: rpc stores need bucket-aligned "
                        f"blocks (blocksize {bs}, bucket span {span})")
                objs[op.obj] = _ObjState(nb, "u8", "kv", blocksize=bs,
                                         slots=slots)
            elif op.kind == "kv_free":
                st = objs.pop(op.obj, None)
                if st is None or st.kind != "kv":
                    raise ProgramError(
                        f"kv_free of dead/non-kv object {op.obj}")
            if ph.fencing:
                for st in objs.values():
                    st.writer[:] = -1
                    st.fenced[:] = False
                    st.readers[:] = 0
                    st.lockid[:] = -1
                    st.visible_to = None
        else:
            assert ph.per_thread is not None
            if len(ph.per_thread) != n:
                raise ProgramError(
                    f"parallel phase has {len(ph.per_thread)} op lists "
                    f"for {n} threads")
            for lst in ph.per_thread:
                for op in lst:
                    if op.kind not in THREAD_KINDS:
                        raise ProgramError(
                            f"{op.kind} not valid inside a parallel "
                            "phase")
                    check_thread_op(op)
    last = program.phases[-1] if program.phases else None
    if last is None or not last.fencing:
        raise ProgramError("program must end with a fencing collective "
                           "(final state is compared after it)")


def _matrix_linear(st: _ObjState, r: int, c: int) -> int:
    """Tile-major (row, col) -> linear — the validator/oracle's own
    arithmetic, independent of SharedMatrix.linear (differential)."""
    if not (0 <= r < st.rows and 0 <= c < st.cols):
        raise ProgramError(f"({r},{c}) outside {st.rows}x{st.cols}")
    tiles_c = st.cols // st.tile_c
    tile = (r // st.tile_r) * tiles_c + (c // st.tile_c)
    within = (r % st.tile_r) * st.tile_c + (c % st.tile_c)
    return tile * st.tile_r * st.tile_c + within


def live_objects_at_end(program: Program) -> List[int]:
    """Object ids (arrays/matrices/scalars) still live at program end —
    the ones whose final state the differential comparison covers."""
    live = {s.obj for s in program.scalars}
    for ph in program.phases:
        if not ph.is_collective:
            for lst in ph.per_thread or ():
                for op in lst:
                    if op.kind in ("global_alloc", "local_alloc"):
                        live.add(op.obj)
            continue
        op = ph.collective
        assert op is not None
        if op.kind in ("alloc", "alloc_matrix", "kv_create"):
            live.add(op.obj)
        elif op.kind in ("free", "kv_free"):
            live.discard(op.obj)
    return sorted(live)
