"""Paraver-style execution tracing (section 4.6 methodology).

    "We analyzed the behavior of this benchmark using the Paraver
    performance analysis toolkit.  The trace showed that the remote
    GET and PUT access times at the 'overhangs' were abnormally large
    when address cache was not in use."

A :class:`~repro.trace.tracer.Tracer` attached to a
:class:`~repro.runtime.runtime.RuntimeConfig` records per-thread state
intervals (compute, remote GET/PUT by protocol, barrier, ...);
:mod:`repro.trace.analysis` answers the questions the paper asked of
Paraver: where does time go per state, and which operations are
abnormal outliers.
"""

from repro.trace.tracer import StateRecord, Tracer
from repro.trace.analysis import (
    TraceProfile,
    find_outliers,
    profile,
    render_profile,
)
from repro.trace.export import dump_csv, dumps, load_csv, loads

__all__ = [
    "Tracer",
    "StateRecord",
    "TraceProfile",
    "profile",
    "find_outliers",
    "render_profile",
    "dump_csv",
    "load_csv",
    "dumps",
    "loads",
]
