"""State-interval recording."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

#: Canonical state names used by the runtime's instrumentation.
ST_COMPUTE = "compute"
ST_GET_LOCAL = "get:local"
ST_GET_SHM = "get:shm"
ST_GET_AM = "get:am"
ST_GET_RDMA = "get:rdma"
ST_PUT_LOCAL = "put:local"
ST_PUT_SHM = "put:shm"
ST_PUT_AM = "put:am"
ST_PUT_RDMA = "put:rdma"
ST_BARRIER = "barrier"
ST_LOCK = "lock"


@dataclass(frozen=True)
class StateRecord:
    """One interval of one UPC thread spent in one state."""

    thread: int
    state: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(
                f"interval ends before it starts: {self.t0} .. {self.t1}")


class Tracer:
    """Collects state records; cheap enough to leave on in tests.

    ``max_records`` bounds memory on huge runs (drop-newest semantics:
    the first ``max_records`` records are kept, every later one is
    dropped and ``dropped_records`` counts them).
    """

    __slots__ = ("records", "max_records", "dropped_records", "enabled")

    def __init__(self, max_records: Optional[int] = None) -> None:
        self.records: List[StateRecord] = []
        self.max_records = max_records
        self.dropped_records = 0
        self.enabled = True

    def record(self, thread: int, state: str, t0: float, t1: float) -> None:
        if not self.enabled:
            return
        if (self.max_records is not None
                and len(self.records) >= self.max_records):
            self.dropped_records += 1
            return
        self.records.append(StateRecord(thread=thread, state=state,
                                        t0=t0, t1=t1))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[StateRecord]:
        return iter(self.records)

    def by_state(self, state: str) -> List[StateRecord]:
        return [r for r in self.records if r.state == state]

    def by_thread(self, thread: int) -> List[StateRecord]:
        return [r for r in self.records if r.thread == thread]

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0
