"""Trace export/import: move simulated traces in and out of files.

The paper's workflow ("We analyzed the behavior ... using the Paraver
performance analysis toolkit") implies traces on disk.  We export to
a simple, columnar CSV — one state interval per line — which both
round-trips through :func:`load_csv` and opens in any spreadsheet or
pandas for ad-hoc digging.
"""

from __future__ import annotations

import csv
import io
from typing import TextIO, Union

from repro.trace.tracer import StateRecord, Tracer

_HEADER = ["thread", "state", "t0", "t1"]


def dump_csv(tracer: Tracer, dest: Union[str, TextIO]) -> int:
    """Write every record to ``dest`` (path or file object).

    Returns the number of records written.
    """
    if isinstance(dest, str):
        with open(dest, "w", newline="") as fh:
            return dump_csv(tracer, fh)
    writer = csv.writer(dest)
    writer.writerow(_HEADER)
    n = 0
    for rec in tracer:
        writer.writerow([rec.thread, rec.state,
                         repr(rec.t0), repr(rec.t1)])
        n += 1
    return n


def load_csv(src: Union[str, TextIO]) -> Tracer:
    """Read a trace written by :func:`dump_csv`."""
    if isinstance(src, str):
        with open(src, newline="") as fh:
            return load_csv(fh)
    reader = csv.reader(src)
    header = next(reader, None)
    if header != _HEADER:
        raise ValueError(f"not a trace CSV (header {header!r})")
    tracer = Tracer()
    for row in reader:
        if len(row) != 4:
            raise ValueError(f"malformed trace row {row!r}")
        tracer.record(int(row[0]), row[1], float(row[2]), float(row[3]))
    return tracer


def dumps(tracer: Tracer) -> str:
    """Trace as a CSV string."""
    buf = io.StringIO()
    dump_csv(tracer, buf)
    return buf.getvalue()


def loads(text: str) -> Tracer:
    """Inverse of :func:`dumps`."""
    return load_csv(io.StringIO(text))
