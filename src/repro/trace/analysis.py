"""Trace analysis: the questions the paper asked of Paraver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.trace.tracer import StateRecord, Tracer
from repro.util.stats import RunningStats


@dataclass
class TraceProfile:
    """Aggregated time-by-state view of a trace."""

    by_state: Dict[str, RunningStats] = field(default_factory=dict)
    total_time: float = 0.0

    def fraction(self, state: str) -> float:
        stats = self.by_state.get(state)
        if stats is None or self.total_time == 0:
            return 0.0
        return stats.total / self.total_time


def profile(tracer: Tracer) -> TraceProfile:
    """Time spent per state, across all threads."""
    out = TraceProfile()
    for rec in tracer:
        stats = out.by_state.setdefault(rec.state, RunningStats())
        stats.add(rec.duration)
        out.total_time += rec.duration
    return out


def find_outliers(tracer: Tracer, state: str,
                  factor: float = 4.0) -> List[StateRecord]:
    """Records of ``state`` lasting more than ``factor`` x the mean —
    the "abnormally large ... access times" detector of section 4.6."""
    records = tracer.by_state(state)
    if not records:
        return []
    mean = sum(r.duration for r in records) / len(records)
    return [r for r in records if r.duration > factor * mean]


def render_profile(tracer: Tracer) -> str:
    """Human-readable time-by-state table."""
    prof = profile(tracer)
    lines = [f"{'state':>12} {'count':>7} {'total_us':>12} "
             f"{'mean_us':>9} {'max_us':>9} {'share':>6}"]
    for state in sorted(prof.by_state):
        s = prof.by_state[state]
        lines.append(
            f"{state:>12} {s.n:>7} {s.total:>12.1f} {s.mean:>9.2f} "
            f"{s.max:>9.2f} {prof.fraction(state):>6.1%}")
    return "\n".join(lines)
