"""Trace analysis: the questions the paper asked of Paraver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.tracer import StateRecord, Tracer
from repro.util.stats import RunningStats


@dataclass
class TraceProfile:
    """Aggregated time-by-state view of a trace."""

    by_state: Dict[str, RunningStats] = field(default_factory=dict)
    total_time: float = 0.0

    def fraction(self, state: str) -> float:
        stats = self.by_state.get(state)
        if stats is None or self.total_time == 0:
            return 0.0
        return stats.total / self.total_time


def profile(tracer: Tracer) -> TraceProfile:
    """Time spent per state, across all threads."""
    out = TraceProfile()
    for rec in tracer:
        stats = out.by_state.setdefault(rec.state, RunningStats())
        stats.add(rec.duration)
        out.total_time += rec.duration
    return out


def find_outliers(tracer: Tracer, state: str, factor: float = 4.0,
                  p: Optional[float] = None) -> List[StateRecord]:
    """Records of ``state`` lasting more than ``factor`` x the mean —
    the "abnormally large ... access times" detector of section 4.6.

    With ``p`` set (e.g. ``p=99``) the threshold is the ``p``-th
    percentile of the state's durations instead.  A mean-relative
    factor drowns in bimodal traces (cache hits pull the mean far
    below the miss mode, flagging every miss); the percentile form
    flags only the true tail.
    """
    records = tracer.by_state(state)
    if not records:
        return []
    if p is not None:
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        durations = sorted(r.duration for r in records)
        rank = (p / 100.0) * (len(durations) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(durations) - 1)
        threshold = (durations[lo]
                     + (durations[hi] - durations[lo]) * (rank - lo))
    else:
        mean = sum(r.duration for r in records) / len(records)
        threshold = factor * mean
    return [r for r in records if r.duration > threshold]


def render_profile(tracer: Tracer, metrics=None) -> str:
    """Human-readable time-by-state table.

    ``metrics`` (a :class:`~repro.runtime.metrics.RuntimeMetrics` with
    shard metrics attached) appends the sharded core's per-shard
    rollup below the state table, so one call renders the whole
    profile of a sharded run."""
    prof = profile(tracer)
    lines = [f"{'state':>12} {'count':>7} {'total_us':>12} "
             f"{'mean_us':>9} {'max_us':>9} {'share':>6}"]
    for state in sorted(prof.by_state):
        s = prof.by_state[state]
        lines.append(
            f"{state:>12} {s.n:>7} {s.total:>12.1f} {s.mean:>9.2f} "
            f"{s.max:>9.2f} {prof.fraction(state):>6.1%}")
    if tracer.dropped_records:
        lines.append(f"({tracer.dropped_records} record(s) dropped at "
                     f"the max_records={tracer.max_records} cap; "
                     "totals undercount the run's tail)")
    if metrics is not None and getattr(metrics, "shards", None):
        s = metrics.shard_summary()
        lines.append(
            f"shards: {s['shards']} — {s['sync_rounds']} sync rounds, "
            f"{s['sync_stall_grains']} stall grains "
            f"(mean {s['sync_stall_mean']:.2f}/shard), "
            f"{s['channel_msgs']} channel msgs / "
            f"{s['channel_bytes']:,} bytes")
        for m in metrics.shards:
            d = m.as_dict()
            lines.append(
                f"  shard {d['shard']}: nodes {d['nodes'][0]}.."
                f"{d['nodes'][1] - 1}, {d['events']} events, "
                f"backlog {d['max_backlog']}, clock "
                f"{d['final_clock_us']:.1f}us, busy {d['busy_s']:.3f}s")
    return "\n".join(lines)
