"""Deterministic fault injection and the reliability layer.

The paper's protocols assume a lossless fabric (GM/Myrinet, LAPI/HPS)
and unbounded registration memory.  This package relaxes both:

* :mod:`repro.faults.plan` — a declarative, JSON-round-trippable
  :class:`FaultPlan`: per-link drop/duplicate/delay rules with
  probabilities and time windows, transient NIC stalls, target-handler
  slowdowns, and injected pin-registration budgets;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that draws
  every fault from a seeded RNG, so any failure is replayable from
  ``(workload seed, fault seed)`` alone;
* :mod:`repro.faults.reliability` — the knobs and data structures of
  the recovery protocols: :class:`ReliabilityConfig` (timeouts, capped
  exponential backoff), the :class:`DedupLedger` that makes retried AM
  handlers idempotent, and :class:`ReliabilityError`;
* :mod:`repro.faults.profiles` — named canned plans for CLI/chaos use.

The recovery logic itself lives where the protocols live: sequence
numbers, retries and dedup in :mod:`repro.network.transport`; RDMA
completion timeouts with cache invalidation and AM fallback plus
pin-failure degradation in :mod:`repro.runtime.ops`.

With no plan installed (or an empty one) the runtime takes the exact
pre-fault code paths: zero extra simulator events, bit-identical
virtual time (``benchmarks/bench_fault_overhead.py`` holds the bar).
"""

from repro.faults.injector import NO_FAULT, Fate, FaultInjector
from repro.faults.plan import (
    ANY_NODE,
    FaultPlan,
    HandlerStall,
    LinkFault,
    NicStall,
    PinBudget,
)
from repro.faults.profiles import PROFILES, resolve_profile
from repro.faults.reliability import (
    DedupLedger,
    ReliabilityConfig,
    ReliabilityError,
)

__all__ = [
    "ANY_NODE",
    "DedupLedger",
    "Fate",
    "FaultInjector",
    "FaultPlan",
    "HandlerStall",
    "LinkFault",
    "NicStall",
    "NO_FAULT",
    "PinBudget",
    "PROFILES",
    "ReliabilityConfig",
    "ReliabilityError",
    "resolve_profile",
]
