"""Deterministic fault injection and the reliability layer.

The paper's protocols assume a lossless fabric (GM/Myrinet, LAPI/HPS)
and unbounded registration memory.  This package relaxes both:

* :mod:`repro.faults.plan` — a declarative, JSON-round-trippable
  :class:`FaultPlan`: per-link drop/duplicate/delay rules with
  probabilities and time windows, transient NIC stalls, target-handler
  slowdowns, and injected pin-registration budgets;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that draws
  every fault from a seeded RNG, so any failure is replayable from
  ``(workload seed, fault seed)`` alone;
* :mod:`repro.faults.reliability` — the knobs and data structures of
  the recovery protocols: :class:`ReliabilityConfig` (timeouts, capped
  exponential backoff), the :class:`DedupLedger` that makes retried AM
  handlers idempotent, and :class:`ReliabilityError`;
* :mod:`repro.faults.profiles` — named canned plans for CLI/chaos use.

The recovery logic itself lives where the protocols live: sequence
numbers, retries and dedup in :mod:`repro.network.transport`; RDMA
completion timeouts with cache invalidation and AM fallback plus
pin-failure degradation in :mod:`repro.runtime.ops`.

With no plan installed (or an empty one) the runtime takes the exact
pre-fault code paths: zero extra simulator events, bit-identical
virtual time (``benchmarks/bench_fault_overhead.py`` holds the bar).
"""

from repro.faults.health import HealthTracker, WindowStats, fold_ewma
from repro.faults.injector import NO_FAULT, Fate, FaultInjector
from repro.faults.plan import (
    ANY_NODE,
    FaultPlan,
    HandlerStall,
    LinkFault,
    NicStall,
    PinBudget,
)
from repro.faults.policy import (
    POLICIES,
    LinkMode,
    PolicyConfig,
    PolicyEngine,
    decisions_digest,
)
from repro.faults.profiles import PROFILES, resolve_profile, resolve_trace
from repro.faults.reliability import (
    DedupLedger,
    ReliabilityConfig,
    ReliabilityError,
)
from repro.faults.trace import (
    COMPRESSED_TRACE_KW,
    TRACE_SHAPES,
    LinkRule,
    LinkTrace,
    TraceSegment,
    fate_hash,
    fate_u01,
    make_trace,
    sniff_trace_json,
)

__all__ = [
    "ANY_NODE",
    "DedupLedger",
    "Fate",
    "FaultInjector",
    "FaultPlan",
    "HandlerStall",
    "HealthTracker",
    "LinkFault",
    "LinkMode",
    "LinkRule",
    "COMPRESSED_TRACE_KW",
    "LinkTrace",
    "NicStall",
    "NO_FAULT",
    "PinBudget",
    "POLICIES",
    "PolicyConfig",
    "PolicyEngine",
    "PROFILES",
    "ReliabilityConfig",
    "ReliabilityError",
    "TRACE_SHAPES",
    "TraceSegment",
    "WindowStats",
    "decisions_digest",
    "fate_hash",
    "fate_u01",
    "fold_ewma",
    "make_trace",
    "resolve_profile",
    "resolve_trace",
    "sniff_trace_json",
]
