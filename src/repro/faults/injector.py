"""The fault injector: seeded draws against a :class:`FaultPlan`.

One injector is built per :class:`~repro.runtime.runtime.Runtime` when
a non-empty plan is configured.  Every decision — does this message
drop, does this NIC stall, is this pin granted — is drawn from
``seeded_rng(plan.seed, 0xFA17)`` in simulator order, which is itself
deterministic, so a ``(workload seed, fault plan)`` pair replays the
identical failure sequence.  Each fault that actually fires emits a
``FAULT_INJECT`` flight-recorder event with the causal ``op_id`` and
bumps ``metrics.faults_injected``; a rule that matches but whose
probability draw says "healthy" costs one RNG draw and nothing else.

The injector only *decides*; the transport, progress engines and op
engine consult it and act (pay the delay, lose the message, fail the
pin).  With no injector installed (``faults is None``) those layers
never branch into fault code at all.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan
from repro.obs.events import FAULT_INJECT
from repro.util.rng import seeded_rng

#: RNG stream salt for fault draws (distinct from cache/workload
#: streams so adding faults never perturbs their sequences).
_FAULT_STREAM = 0xFA17
#: Separate salt for link-trace draws, so adding a trace to a plan
#: never perturbs the plan's own fault sequence.
_TRACE_STREAM = 0x7ACE


class Fate:
    """Outcome of the draws for one message (or one RDMA op).

    ``drop_request``/``drop_reply`` lose that leg in the fabric (for
    RDMA, ``drop_request`` means the completion never arrives);
    ``duplicate`` delivers the request a second time; ``delay_us`` is
    extra wire latency added to each surviving leg.
    """

    __slots__ = ("drop_request", "drop_reply", "duplicate", "delay_us")

    def __init__(self, drop_request: bool = False, drop_reply: bool = False,
                 duplicate: bool = False, delay_us: float = 0.0) -> None:
        self.drop_request = drop_request
        self.drop_reply = drop_reply
        self.duplicate = duplicate
        self.delay_us = delay_us

    @property
    def healthy(self) -> bool:
        return not (self.drop_request or self.drop_reply or self.duplicate
                    or self.delay_us)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = [n for n in ("drop_request", "drop_reply", "duplicate")
                if getattr(self, n)]
        if self.delay_us:
            bits.append(f"delay={self.delay_us}us")
        return f"<Fate {' '.join(bits) or 'healthy'}>"


#: Shared healthy fate — used by the transport when no injector is
#: installed so the protocol generators take one code path.
NO_FAULT = Fate()


class FaultInjector:
    """Draws fault decisions for one runtime.

    ``sim`` supplies the clock (rule time windows), ``events`` the
    flight recorder (may be None or disabled), ``metrics`` the
    runtime's counter block (may be None for unit tests).
    """

    __slots__ = ("plan", "sim", "events", "metrics", "injected",
                 "_rng", "_am_links", "_rdma_links", "_pin_granted",
                 "trace", "policy", "health", "_trace_rng")

    def __init__(self, plan: FaultPlan, sim, events=None,
                 metrics=None, trace=None, policy=None,
                 health=None) -> None:
        self.plan = plan
        self.sim = sim
        self.events = events
        self.metrics = metrics
        #: Faults that actually fired (all kinds).
        self.injected = 0
        self._rng = seeded_rng(plan.seed, _FAULT_STREAM)
        self._am_links = tuple(l for l in plan.links
                               if l.scope in ("am", "both"))
        self._rdma_links = tuple(l for l in plan.links
                                 if l.scope in ("rdma", "both"))
        #: node id -> pin bytes already granted against the budget.
        self._pin_granted = {}
        #: Optional time-evolving :class:`~repro.faults.trace.LinkTrace`
        #: layered on top of the plan's static rules.
        self.trace = trace if trace is not None and not trace.empty \
            else None
        #: Optional :class:`~repro.faults.policy.PolicyEngine` — when a
        #: link is detoured by ``disable_and_repair`` its trace fates
        #: stop applying (the traffic no longer crosses the sick link).
        self.policy = policy
        #: Optional :class:`~repro.faults.health.HealthTracker`; every
        #: fate draw records one attempt against the link it rode.
        self.health = health
        self._trace_rng = (seeded_rng(self.trace.seed, _TRACE_STREAM)
                           if self.trace is not None else None)

    # -- bookkeeping ---------------------------------------------------

    def _fired(self, fault: str, op_id: int, node: int, **attrs) -> None:
        self.injected += 1
        if self.metrics is not None:
            self.metrics.faults_injected += 1
        ev = self.events
        if ev is not None and ev.enabled:
            ev.emit(self.sim.now, FAULT_INJECT, op=op_id, node=node,
                    fault=fault, **attrs)

    # -- message fates -------------------------------------------------

    def _link_fate(self, rules, src: int, dst: int, op_id: int) -> Fate:
        now = self.sim.now
        fate = NO_FAULT
        for rule in rules:
            if not rule.matches(src, dst, now):
                continue
            if self._rng.random() >= rule.prob:
                continue
            if fate is NO_FAULT:
                fate = Fate()
            if rule.kind == "drop":
                # One draw decides the request leg; the reply leg is a
                # separate message and only at risk if the request got
                # through.
                if not fate.drop_request and not fate.drop_reply:
                    if self._rng.random() < 0.5:
                        fate.drop_request = True
                        self._fired("drop_request", op_id, dst,
                                    src=src, dst=dst)
                    else:
                        fate.drop_reply = True
                        self._fired("drop_reply", op_id, dst,
                                    src=src, dst=dst)
            elif rule.kind == "duplicate":
                if not fate.duplicate:
                    fate.duplicate = True
                    self._fired("duplicate", op_id, dst, src=src, dst=dst)
            else:  # delay
                fate.delay_us += rule.delay_us
                self._fired("delay", op_id, dst, src=src, dst=dst,
                            delay_us=rule.delay_us)
        return fate

    def _trace_fate(self, src: int, dst: int, op_id: int) -> Fate:
        """Fate contribution of the link trace at the current instant.

        A link detoured by ``disable_and_repair`` no longer crosses the
        sick fabric segment, so its trace condition stops applying (the
        wire layer charges the two-hop detour latency instead).
        """
        now = self.sim.now
        if self.policy is not None:
            mode = self.policy.mode_of(src, dst, now)
            if mode.mode == "disabled" and mode.via is not None:
                return NO_FAULT
        loss, corrupt, delay = self.trace.at(src, dst, now)
        if loss == 0.0 and corrupt == 0.0 and delay == 0.0:
            return NO_FAULT
        fate = Fate(delay_us=delay)
        if loss and self._trace_rng.random() < loss:
            if self._trace_rng.random() < 0.5:
                fate.drop_request = True
                self._fired("trace_drop_request", op_id, dst,
                            src=src, dst=dst)
            else:
                fate.drop_reply = True
                self._fired("trace_drop_reply", op_id, dst,
                            src=src, dst=dst)
        elif corrupt and self._trace_rng.random() < corrupt:
            # A corrupt frame is detected and discarded by the
            # receiver: it behaves like a lost request leg but is
            # accounted separately.
            fate.drop_request = True
            self._fired("trace_corrupt", op_id, dst, src=src, dst=dst)
        return fate

    def _combine(self, a: Fate, b: Fate) -> Fate:
        if a is NO_FAULT:
            return b
        if b is NO_FAULT:
            return a
        return Fate(drop_request=a.drop_request or b.drop_request,
                    drop_reply=a.drop_reply or b.drop_reply,
                    duplicate=a.duplicate or b.duplicate,
                    delay_us=a.delay_us + b.delay_us)

    def _observe(self, src: int, dst: int, fate: Fate) -> None:
        """Record one attempt's health against the link it rode."""
        dropped = fate.drop_request or fate.drop_reply
        self.health.record(self.sim.now, src, dst, attempts=1,
                           timeouts=1 if dropped else 0,
                           deliveries=0 if dropped else 1)

    def am_fate(self, src: int, dst: int, op_id: int = -1) -> Fate:
        """Fate for one AM request/reply exchange attempt."""
        fate = (self._link_fate(self._am_links, src, dst, op_id)
                if self._am_links else NO_FAULT)
        if self.trace is not None:
            fate = self._combine(fate, self._trace_fate(src, dst, op_id))
        if self.health is not None:
            self._observe(src, dst, fate)
        return fate

    def rdma_fate(self, src: int, dst: int, op_id: int = -1) -> Fate:
        """Fate for one one-sided RDMA operation.  A ``drop`` rule
        firing (either leg) means the completion is lost."""
        fate = (self._link_fate(self._rdma_links, src, dst, op_id)
                if self._rdma_links else NO_FAULT)
        if self.trace is not None:
            fate = self._combine(fate, self._trace_fate(src, dst, op_id))
        if fate.drop_reply:
            if fate is NO_FAULT:  # pragma: no cover - defensive
                fate = Fate()
            fate.drop_request = True
        if self.health is not None:
            self._observe(src, dst, fate)
        return fate

    # -- node-local stalls ---------------------------------------------

    def nic_stall(self, node: int, op_id: int = -1) -> float:
        """Extra µs this NIC injection pays (0.0 when healthy)."""
        total = 0.0
        now = self.sim.now
        for rule in self.plan.nic_stalls:
            if rule.matches(node, now) and self._rng.random() < rule.prob:
                total += rule.stall_us
                self._fired("nic_stall", op_id, node,
                            stall_us=rule.stall_us)
        return total

    def handler_stall(self, node: int, op_id: int = -1) -> float:
        """Extra µs this AM handler dispatch pays (0.0 when healthy)."""
        total = 0.0
        now = self.sim.now
        for rule in self.plan.handler_stalls:
            if rule.matches(node, now) and self._rng.random() < rule.prob:
                total += rule.stall_us
                self._fired("handler_stall", op_id, node,
                            stall_us=rule.stall_us)
        return total

    # -- pin budget ----------------------------------------------------

    def pin_allowed(self, node: int, nbytes: int,
                    op_id: int = -1) -> bool:
        """Charge ``nbytes`` against the node's injected registration
        budget.  Grants are cumulative; the first denial is permanent
        for the requesting object (the op engine marks it unpinnable).
        """
        budget: Optional[int] = None
        for rule in self.plan.pin_budgets:
            if rule.matches(node):
                budget = (rule.budget_bytes if budget is None
                          else min(budget, rule.budget_bytes))
        if budget is None:
            return True
        spent = self._pin_granted.get(node, 0)
        if spent + nbytes > budget:
            self._fired("pin_deny", op_id, node, nbytes=nbytes,
                        budget_bytes=budget, granted_bytes=spent)
            return False
        self._pin_granted[node] = spent + nbytes
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultInjector plan={self.plan.name or 'custom'} "
                f"seed={self.plan.seed} injected={self.injected}>")
