"""Reliability-protocol knobs and data structures.

The transport's recovery protocols (see ``docs/FAULTS.md``) are built
from three pieces kept deliberately free of simulator dependencies so
they unit-test in isolation:

* :class:`ReliabilityConfig` — initiator-side retransmit/completion
  timeouts and a capped exponential backoff schedule.  The schedule is
  a pure function of the attempt number: determinism of the recovery
  path reduces to determinism of the fault draws.
* :class:`DedupLedger` — the target-side idempotence ledger.  AM
  requests carry ``(initiator node, sequence number)``; the first
  delivery records the handler's reply under that key, and any replay
  (retransmission after a lost reply, or an injected duplicate) is
  answered from the ledger without re-running the handler — no double
  pin, no double SVD charge, no second piggyback.
* :class:`ReliabilityError` — raised by the initiator once the retry
  budget is exhausted; it propagates out of ``Runtime.run`` like any
  program error so a partitioned fabric fails loudly, never silently.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class ReliabilityError(RuntimeError):
    """Retry budget exhausted — the fabric is effectively partitioned.

    Carries the offending ``(src, dst)`` link, the attempt count, and
    the op id as structured attributes so a policy misfire is
    triageable straight from the exception (or the matching ``retry``
    flight-recorder event) without parsing the message.
    """

    def __init__(self, message: str, *, src: Optional[int] = None,
                 dst: Optional[int] = None,
                 attempts: Optional[int] = None,
                 op_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.attempts = attempts
        self.op_id = op_id

    @property
    def link(self) -> Optional[Tuple[int, int]]:
        if self.src is None or self.dst is None:
            return None
        return (self.src, self.dst)


@dataclass(frozen=True)
class ReliabilityConfig:
    """Timeout and backoff knobs, in virtual microseconds.

    Defaults are sized against the modeled machines: a remote AM GET
    round trip costs ~10–20 µs on GM/LAPI, an RDMA read ~5–10 µs, so
    the timers fire comfortably after a healthy op would have finished
    yet fast enough that a retry storm stays visible in short runs.
    """

    #: Retransmit timer for AM request/reply round trips.
    am_timeout_us: float = 60.0
    #: Completion timer for one-sided RDMA reads/writes.
    rdma_timeout_us: float = 40.0
    #: Retransmissions after the first attempt before giving up.
    max_retries: int = 24
    #: Backoff after the k-th timeout: min(cap, base * factor**k).
    backoff_base_us: float = 4.0
    backoff_factor: float = 2.0
    backoff_max_us: float = 128.0
    #: Entries the target-side dedup ledger retains (FIFO eviction).
    ledger_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.am_timeout_us <= 0 or self.rdma_timeout_us <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if (self.backoff_base_us < 0 or self.backoff_factor < 1.0
                or self.backoff_max_us < self.backoff_base_us):
            raise ValueError("bad backoff schedule "
                             f"(base={self.backoff_base_us}, "
                             f"factor={self.backoff_factor}, "
                             f"max={self.backoff_max_us})")
        if self.ledger_capacity < 1:
            raise ValueError("ledger_capacity must be >= 1")

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retransmission ``attempt + 1`` (0-based count
        of timeouts already suffered).  Pure and deterministic."""
        return min(self.backoff_max_us,
                   self.backoff_base_us * self.backoff_factor ** attempt)


#: What the ledger stores per request: (reply payload, extra reply
#: bytes) — everything needed to replay the reply without the handler.
LedgerEntry = Tuple[Any, int]


class DedupLedger:
    """Target-side replay ledger keyed by ``(src node, seq)``.

    Bounded FIFO (an :class:`~collections.OrderedDict`): old entries
    age out once ``capacity`` newer requests have been recorded, which
    is safe because an initiator retires its sequence number as soon as
    a reply arrives — only a reply outstanding *right now* can be
    replayed, and those are always among the newest entries.
    """

    __slots__ = ("capacity", "_entries", "hits", "records", "evictions")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ledger capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], LedgerEntry]" = \
            OrderedDict()
        self.hits = 0
        self.records = 0
        self.evictions = 0

    def get(self, key: Tuple[int, int]) -> Optional[LedgerEntry]:
        """Ledger entry for ``key``, or None for a first delivery."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
        return entry

    def record(self, key: Tuple[int, int], payload: Any,
               extra_bytes: int) -> None:
        """Remember the reply for ``key`` (idempotent re-record keeps
        the first value — a replayed handler never overwrites)."""
        if key in self._entries:
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = (payload, extra_bytes)
        self.records += 1

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DedupLedger {len(self._entries)}/{self.capacity} "
                f"hits={self.hits} evictions={self.evictions}>")
