"""Per-link health signals: windowed counters + delivery EWMA.

Repair policies must see the same history whatever shard layout runs
the workload, so health is accumulated with the same discipline as
every other mergeable statistic in the sharded core:

* events land in **fixed-width time windows** (``index = floor(t /
  window_us)``) as commutative counter adds — attempts, timeouts,
  retries, deliveries per (src, dst) link;
* consumers only read **closed** windows (``index < floor(now /
  window_us)``).  A window closes when simulated time passes its end;
  from that point nothing can be recorded into it, because recorders
  stamp events at or after their own process time and the simulator
  processes strictly earlier times first.  Same-timestamp
  interleavings across layouts therefore cannot change what a policy
  reads;
* the **delivery EWMA** is a pure fold over closed windows in index
  order, memoized monotonically — re-evaluating at a later horizon
  continues the fold, never restarts it.

The tracker is plain bookkeeping: it never touches the simulator, so
recording health leaves runs bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

Link = Tuple[int, int]

#: Counter slots per window: attempts, timeouts, retries, deliveries.
_ATT, _TMO, _RTY, _DLV = range(4)


class WindowStats:
    """Plain view of one closed window's counters."""

    __slots__ = ("index", "attempts", "timeouts", "retries",
                 "deliveries")

    def __init__(self, index: int, counters: List[int]) -> None:
        self.index = index
        self.attempts = counters[_ATT]
        self.timeouts = counters[_TMO]
        self.retries = counters[_RTY]
        self.deliveries = counters[_DLV]

    @property
    def timeout_rate(self) -> float:
        return self.timeouts / self.attempts if self.attempts else 0.0

    @property
    def delivery_rate(self) -> float:
        return self.deliveries / self.attempts if self.attempts else 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<WindowStats[{self.index}] att={self.attempts} "
                f"tmo={self.timeouts} rty={self.retries} "
                f"dlv={self.deliveries}>")


class HealthTracker:
    """Windowed per-link health accounting.

    ``record`` may be called with event times at or *after* the
    caller's process time (the traffic harness records a whole
    precomputed retry chain at issue time); reads via
    :meth:`closed_windows` only ever surface windows strictly before
    the reader's horizon, which is what keeps policy inputs
    layout-invariant.
    """

    def __init__(self, window_us: float = 500.0) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = float(window_us)
        #: link -> window index -> [attempts, timeouts, retries,
        #: deliveries].
        self._windows: Dict[Link, Dict[int, List[int]]] = {}
        #: Run totals per link (metrics/report rollups).
        self.totals: Dict[Link, List[int]] = {}

    def _slot(self, link: Link, t: float) -> List[int]:
        per_link = self._windows.get(link)
        if per_link is None:
            per_link = self._windows[link] = {}
            self.totals[link] = [0, 0, 0, 0]
        idx = int(t // self.window_us)
        ctr = per_link.get(idx)
        if ctr is None:
            ctr = per_link[idx] = [0, 0, 0, 0]
        return ctr

    def record(self, t: float, src: int, dst: int, *, attempts: int = 0,
               timeouts: int = 0, retries: int = 0,
               deliveries: int = 0) -> None:
        """Commutative add into the window containing ``t``."""
        link = (src, dst)
        ctr = self._slot(link, t)
        tot = self.totals[link]
        if attempts:
            ctr[_ATT] += attempts
            tot[_ATT] += attempts
        if timeouts:
            ctr[_TMO] += timeouts
            tot[_TMO] += timeouts
        if retries:
            ctr[_RTY] += retries
            tot[_RTY] += retries
        if deliveries:
            ctr[_DLV] += deliveries
            tot[_DLV] += deliveries

    def horizon(self, now: float) -> int:
        """First window index that is still open at time ``now``."""
        return int(now // self.window_us)

    def closed_windows(self, src: int, dst: int, after: int,
                       upto: int) -> List[WindowStats]:
        """Windows of link ``(src, dst)`` with ``after < index <
        upto`` that saw any traffic, in index order — the policy
        engine's fold input."""
        per_link = self._windows.get((src, dst))
        if not per_link:
            return []
        return [WindowStats(i, per_link[i])
                for i in sorted(per_link)
                if after < i < upto]

    def link_totals(self) -> Dict[Link, dict]:
        """Run-total health per link, as plain dicts (mergeable across
        shards by key-wise summation)."""
        return {link: {"attempts": tot[_ATT], "timeouts": tot[_TMO],
                       "retries": tot[_RTY], "deliveries": tot[_DLV]}
                for link, tot in self.totals.items()}

    @staticmethod
    def merge_totals(batches) -> Dict[Link, dict]:
        """Merge per-shard :meth:`link_totals` exports (key-wise sum —
        commutative, hence layout-invariant)."""
        merged: Dict[Link, dict] = {}
        for batch in batches:
            for link, tot in batch.items():
                m = merged.setdefault(
                    tuple(link), {"attempts": 0, "timeouts": 0,
                                  "retries": 0, "deliveries": 0})
                for k in m:
                    m[k] += tot[k]
        return merged


def fold_ewma(prev: float, delivery_rate: float, alpha: float) -> float:
    """One EWMA step — kept as a free pure function so the hypothesis
    suite can state determinism/commutation properties directly."""
    return alpha * delivery_rate + (1.0 - alpha) * prev
