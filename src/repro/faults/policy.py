"""Pluggable repair policies over per-link health signals.

A :class:`PolicyEngine` watches the :class:`~repro.faults.health.
HealthTracker`'s closed windows for each (src, dst) link and drives a
small per-link mode machine:

``do_nothing``
    the control arm: always ``normal``;
``retransmit_tuning``
    an unhealthy link gets aggressive per-link retransmit knobs
    (timeout and backoff scaled down) until it has been healthy for
    ``recover_windows`` consecutive observed windows;
``disable_and_repair``
    an unhealthy link is taken out of service for ``repair_delay_us``:
    its traffic detours via an alternate next-hop (paying two healthy
    hops instead of one lossy one) — or, with no third node, falls
    back to the AM/RPC path — and the link is restored when the repair
    timer expires (health state resets, so a later flap re-trips it);
``path_failover``
    the Storm result as a policy: KV stores flip affected traffic from
    the one-sided path to RPC while the link is unhealthy (an RPC
    retry re-issues cheaply; a one-sided retry pays RDMA invalidation
    + AM re-validation on top).

Determinism: every decision is a pure fold over *closed* health
windows in index order (see :mod:`repro.faults.health` for why closed
windows are layout-invariant), so the same trace + seed produces the
identical decision sequence across shard layouts and backends.
Queries for a *future* instant (the traffic harness plans whole retry
chains at issue time) pass the issue time as ``horizon`` — state only
ever advances on knowledge that was closed at the horizon, while the
returned mode accounts for repair timers expiring before the queried
instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.health import HealthTracker, fold_ewma
from repro.faults.trace import fate_hash

Link = Tuple[int, int]

#: Per-link modes.
MODE_NORMAL = "normal"
MODE_TUNED = "tuned"
MODE_DISABLED = "disabled"
MODE_FAILOVER = "failover"

#: Policy registry order is also the bench's comparison order.
POLICIES = ("do_nothing", "retransmit_tuning", "disable_and_repair",
            "path_failover")

_MASK64 = (1 << 64) - 1
_ACTION_CODE = {"tune": 1, "untune": 2, "disable": 3, "restore": 4,
                "failover": 5, "failback": 6}


@dataclass(frozen=True)
class PolicyConfig:
    """Thresholds and knobs shared by every policy."""

    #: Health-window width (µs of virtual time).
    window_us: float = 500.0
    #: Delivery-EWMA smoothing factor.
    ewma_alpha: float = 0.4
    #: A window is unhealthy when its timeout rate exceeds this ...
    timeout_rate_threshold: float = 0.08
    #: ... or the link's delivery EWMA has sunk below this.
    ewma_threshold: float = 0.85
    #: Windows a link must look healthy for before tuning/failover
    #: reverts.
    recover_windows: int = 2
    #: Minimum attempts in a window before it can flag unhealthy
    #: (tiny windows don't flap policies).
    min_attempts: int = 6
    #: How long ``disable_and_repair`` keeps a link out of service.
    repair_delay_us: float = 2500.0
    #: Per-link retransmit knobs while ``retransmit_tuning`` is active.
    tuned_timeout_scale: float = 0.5
    tuned_backoff_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.window_us <= 0:
            raise ValueError("window_us must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.repair_delay_us <= 0:
            raise ValueError("repair_delay_us must be positive")
        if self.tuned_timeout_scale <= 0 or self.tuned_backoff_scale < 0:
            raise ValueError("bad tuned scales")


class LinkMode:
    """What the actuation layers read back for one link."""

    __slots__ = ("mode", "timeout_scale", "backoff_scale", "via",
                 "until_us")

    def __init__(self, mode: str = MODE_NORMAL,
                 timeout_scale: float = 1.0, backoff_scale: float = 1.0,
                 via: Optional[int] = None,
                 until_us: float = 0.0) -> None:
        self.mode = mode
        self.timeout_scale = timeout_scale
        self.backoff_scale = backoff_scale
        self.via = via
        self.until_us = until_us

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" via={self.via}" if self.via is not None else ""
        return f"<LinkMode {self.mode}{extra}>"


#: Shared healthy mode — returned for untouched links.
NORMAL = LinkMode()


def decisions_digest(decisions) -> int:
    """Order-independent digest of a decision set (summed per-decision
    hashes, mod 2^64) — per-shard digests merge by modular addition
    into a layout-invariant whole.  Free function so harnesses that
    ship plain decision lists across process boundaries can digest
    them without reconstructing an engine."""
    acc = 0
    for d in decisions:
        acc = (acc + fate_hash(int(round(d["t_us"] * 1e6)),
                               d["src"], d["dst"],
                               _ACTION_CODE[d["action"]])) & _MASK64
    return acc


class _LinkState:
    """Per-link fold state (advanced monotonically, never rewound)."""

    __slots__ = ("ewma", "mode", "until_us", "via", "last_idx",
                 "healthy_run")

    def __init__(self) -> None:
        self.ewma = 1.0
        self.mode = MODE_NORMAL
        self.until_us = 0.0
        self.via: Optional[int] = None
        self.last_idx = -1
        self.healthy_run = 0


class PolicyEngine:
    """Folds link health into per-link modes for one run (or one
    shard of a run — links are keyed by source node, and all of a
    node's traffic lives on one shard, so per-shard engines never need
    cross-shard state).
    """

    def __init__(self, policy: str, config: Optional[PolicyConfig] = None,
                 health: Optional[HealthTracker] = None,
                 nnodes: int = 0,
                 on_decision: Optional[Callable[[dict], None]] = None
                 ) -> None:
        if policy not in POLICIES:
            names = ", ".join(POLICIES)
            raise ValueError(f"unknown repair policy {policy!r} "
                             f"(expected one of: {names})")
        self.policy = policy
        self.config = config or PolicyConfig()
        self.health = health or HealthTracker(self.config.window_us)
        if self.health.window_us != self.config.window_us:
            raise ValueError("health tracker and policy config disagree "
                             "on window_us")
        self.nnodes = nnodes
        #: Called with each decision dict as it is made (flight
        #: recorder / SLO hookup); decisions also accumulate below.
        self.on_decision = on_decision
        self.decisions: List[dict] = []
        self._states: Dict[Link, _LinkState] = {}

    # -- decision bookkeeping -------------------------------------------

    def _decide(self, t_us: float, link: Link, action: str, mode: str,
                until_us: float = 0.0) -> None:
        d = {"t_us": t_us, "src": link[0], "dst": link[1],
             "action": action, "mode": mode, "until_us": until_us,
             "policy": self.policy}
        self.decisions.append(d)
        if self.on_decision is not None:
            self.on_decision(d)

    def decisions_digest(self) -> int:
        """Order-independent digest of this engine's decision set —
        see :func:`decisions_digest`."""
        return decisions_digest(self.decisions)

    @staticmethod
    def merge_digests(digests) -> int:
        acc = 0
        for d in digests:
            acc = (acc + d) & _MASK64
        return acc

    # -- the fold -------------------------------------------------------

    def _alternate_hop(self, link: Link) -> Optional[int]:
        """Deterministic detour node for a disabled link (the smallest
        node that is neither endpoint), or None on a 2-node fabric."""
        for via in range(self.nnodes):
            if via != link[0] and via != link[1]:
                return via
        return None

    def _advance(self, link: Link, upto: int) -> _LinkState:
        st = self._states.get(link)
        if st is None:
            st = self._states[link] = _LinkState()
        if self.policy == "do_nothing":
            return st
        cfg = self.config
        for w in self.health.closed_windows(link[0], link[1],
                                            st.last_idx, upto):
            st.last_idx = w.index
            w_start = w.index * cfg.window_us
            w_end = (w.index + 1) * cfg.window_us
            if st.mode == MODE_DISABLED:
                if w_start < st.until_us:
                    # Repair in progress: traffic is detoured, these
                    # windows say nothing about the broken link.
                    continue
                # Repair timer expired before this window: restore
                # (decision was recorded at disable time) and reset the
                # health fold so a re-flap re-trips the policy.
                st.mode = MODE_NORMAL
                st.ewma = 1.0
                st.healthy_run = 0
                st.via = None
            st.ewma = fold_ewma(st.ewma, w.delivery_rate, cfg.ewma_alpha)
            significant = w.attempts >= cfg.min_attempts
            unhealthy = significant and (
                w.timeout_rate > cfg.timeout_rate_threshold
                or st.ewma < cfg.ewma_threshold)
            healthy = (w.attempts > 0 and w.timeouts == 0
                       and st.ewma >= cfg.ewma_threshold)
            if unhealthy:
                st.healthy_run = 0
                if self.policy == "retransmit_tuning":
                    if st.mode != MODE_TUNED:
                        st.mode = MODE_TUNED
                        self._decide(w_end, link, "tune", MODE_TUNED)
                elif self.policy == "disable_and_repair":
                    st.mode = MODE_DISABLED
                    st.until_us = w_end + cfg.repair_delay_us
                    st.via = self._alternate_hop(link)
                    self._decide(w_end, link, "disable", MODE_DISABLED,
                                 until_us=st.until_us)
                    self._decide(st.until_us, link, "restore",
                                 MODE_NORMAL)
                elif self.policy == "path_failover":
                    if st.mode != MODE_FAILOVER:
                        st.mode = MODE_FAILOVER
                        self._decide(w_end, link, "failover",
                                     MODE_FAILOVER)
            elif healthy and st.mode in (MODE_TUNED, MODE_FAILOVER):
                st.healthy_run += 1
                if st.healthy_run >= cfg.recover_windows:
                    action = ("untune" if st.mode == MODE_TUNED
                              else "failback")
                    st.mode = MODE_NORMAL
                    st.healthy_run = 0
                    self._decide(w_end, link, action, MODE_NORMAL)
        return st

    # -- queries --------------------------------------------------------

    def mode_of(self, src: int, dst: int, t: float,
                horizon: Optional[float] = None) -> LinkMode:
        """The mode of link ``src -> dst`` at instant ``t``.

        ``horizon`` (default ``t``) bounds the health knowledge the
        answer may use: only windows closed at the horizon fold in.
        Callers planning future attempts pass their issue time, so the
        answer is identical whatever layout executes the plan.
        """
        if self.policy == "do_nothing":
            return NORMAL
        link = (src, dst)
        upto = self.health.horizon(horizon if horizon is not None else t)
        st = self._advance(link, upto)
        cfg = self.config
        if st.mode == MODE_TUNED:
            return LinkMode(MODE_TUNED,
                            timeout_scale=cfg.tuned_timeout_scale,
                            backoff_scale=cfg.tuned_backoff_scale)
        if st.mode == MODE_DISABLED:
            if t >= st.until_us:
                # Repair timer expires before the queried instant; the
                # stored transition happens on the next fold.
                return NORMAL
            return LinkMode(MODE_DISABLED, via=st.via,
                            until_us=st.until_us)
        if st.mode == MODE_FAILOVER:
            return LinkMode(MODE_FAILOVER)
        return NORMAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PolicyEngine {self.policy} "
                f"links={len(self._states)} "
                f"decisions={len(self.decisions)}>")
