"""Time-evolving per-link degradation traces.

Where a :class:`~repro.faults.plan.FaultPlan` states *static* per-link
probabilities, a :class:`LinkTrace` describes how a link's health
*evolves*: each ``(src, dst)`` link carries piecewise segments of loss
probability, corruption probability and latency inflation, optionally
linearly interpolated inside a segment.  Traces are JSON
round-trippable like plans (a ``"kind": "link-trace"`` marker lets
``resolve_profile``/``resolve_trace`` tell the two documents apart)
and carry their own seed.

Two draw disciplines consume a trace:

* the pooled runtime's :class:`~repro.faults.injector.FaultInjector`
  draws sequentially from its seeded RNG (deterministic in simulator
  order, like every static-plan draw);
* the sharded traffic harness draws each message's fate with
  :func:`fate_u01` — a pure integer hash of
  ``(seed, client, seq, attempt, leg)`` — so the fate of every attempt
  is a function of *identity*, not of cross-shard event interleaving.
  That is what makes "same trace + seed ⇒ bit-identical fate sequence
  across shards {1,2,4} and both backends" hold by construction.

Seeded generators build the linkguardian-style scenario shapes:
``flap`` (a link oscillating up/down), ``burst`` (short high-loss
storms), ``degrade`` (slow linear rot of loss + latency), and ``gray``
(low-grade silent corruption that never trips a hard failure).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, Tuple

from repro.faults.plan import ANY_NODE
from repro.util.rng import seeded_rng

#: Document marker distinguishing trace JSON from fault-plan JSON.
TRACE_KIND = "link-trace"

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """splitmix64 finalizer — a high-quality 64-bit avalanche."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


def fate_hash(*keys: int) -> int:
    """Pure 64-bit hash of an integer key tuple (order-sensitive)."""
    h = _GOLDEN
    for k in keys:
        h = _mix64(h ^ (int(k) & _MASK64))
    return h


def fate_u01(*keys: int) -> float:
    """Deterministic uniform draw in [0, 1) from an integer key tuple.

    A pure function of identity — no RNG state, no draw ordering — so
    per-message fate decisions keyed by ``(seed, client, seq, attempt,
    leg)`` are identical whatever shard layout processes them.
    """
    return fate_hash(*keys) / 2.0 ** 64


@dataclass(frozen=True)
class TraceSegment:
    """One time slice of a link's condition.

    ``loss``/``corrupt`` are per-message probabilities (a corrupt frame
    is detected and discarded by the receiver — it behaves like a loss
    but is accounted separately); ``delay_us`` is extra one-way wire
    latency.  The ``*_end`` fields, when set, linearly interpolate the
    value across the segment (slow-degradation shapes); ``None`` keeps
    it constant.
    """

    t_start: float
    t_end: float
    loss: float = 0.0
    corrupt: float = 0.0
    delay_us: float = 0.0
    loss_end: float | None = None
    corrupt_end: float | None = None
    delay_end_us: float | None = None

    def __post_init__(self) -> None:
        if self.t_start < 0 or self.t_end <= self.t_start:
            raise ValueError(
                f"bad segment window [{self.t_start}, {self.t_end})")
        for name in ("loss", "corrupt", "loss_end", "corrupt_end"):
            v = getattr(self, name)
            if v is not None and not 0.0 <= v <= 1.0:
                raise ValueError(f"{name}={v} outside [0, 1]")
        for name in ("delay_us", "delay_end_us"):
            v = getattr(self, name)
            if v is not None and v < 0.0:
                raise ValueError(f"{name}={v} must be >= 0")

    def _lerp(self, a: float, b: float | None, t: float) -> float:
        if b is None or self.t_end == math.inf:
            return a
        frac = (t - self.t_start) / (self.t_end - self.t_start)
        return a + (b - a) * min(max(frac, 0.0), 1.0)

    def at(self, t: float) -> Tuple[float, float, float]:
        """``(loss, corrupt, delay_us)`` at instant ``t`` (must lie in
        the segment's window)."""
        return (self._lerp(self.loss, self.loss_end, t),
                self._lerp(self.corrupt, self.corrupt_end, t),
                self._lerp(self.delay_us, self.delay_end_us, t))

    def active(self, t: float) -> bool:
        return self.t_start <= t < self.t_end


@dataclass(frozen=True)
class LinkRule:
    """The degradation segments of one (possibly wildcarded) link."""

    src: int = ANY_NODE
    dst: int = ANY_NODE
    segments: Tuple[TraceSegment, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.segments, tuple):
            object.__setattr__(self, "segments", tuple(self.segments))

    def matches(self, src: int, dst: int) -> bool:
        return ((self.src == ANY_NODE or self.src == src)
                and (self.dst == ANY_NODE or self.dst == dst))

    def at(self, t: float) -> Tuple[float, float, float]:
        """Combined condition of this rule at ``t`` (overlapping
        segments compose: losses combine independently, delays add)."""
        loss = corrupt = 0.0
        delay = 0.0
        for seg in self.segments:
            if seg.active(t):
                sl, sc, sd = seg.at(t)
                loss = 1.0 - (1.0 - loss) * (1.0 - sl)
                corrupt = 1.0 - (1.0 - corrupt) * (1.0 - sc)
                delay += sd
        return loss, corrupt, delay


@dataclass(frozen=True)
class LinkTrace:
    """A seed plus per-link degradation rules.

    Empty trace == healthy fabric: nothing is installed and runs are
    bit-identical to a build without the trace plane (the same
    zero-cost-when-off bar :class:`~repro.faults.plan.FaultPlan`
    holds).
    """

    seed: int = 0
    links: Tuple[LinkRule, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.links, tuple):
            object.__setattr__(self, "links", tuple(self.links))

    @property
    def empty(self) -> bool:
        return not self.links

    def with_seed(self, seed: int) -> "LinkTrace":
        return replace(self, seed=seed)

    def at(self, src: int, dst: int, t: float) -> Tuple[float, float,
                                                        float]:
        """``(loss, corrupt, delay_us)`` for a message on link
        ``src -> dst`` at instant ``t``.  Multiple matching rules
        compose the same way overlapping segments do."""
        loss = corrupt = 0.0
        delay = 0.0
        for rule in self.links:
            if rule.matches(src, dst):
                rl, rc, rd = rule.at(t)
                loss = 1.0 - (1.0 - loss) * (1.0 - rl)
                corrupt = 1.0 - (1.0 - corrupt) * (1.0 - rc)
                delay += rd
        return loss, corrupt, delay

    def drop_prob(self, src: int, dst: int, t: float) -> float:
        """Probability the message does not arrive intact (loss or
        detected corruption)."""
        loss, corrupt, _ = self.at(src, dst, t)
        return 1.0 - (1.0 - loss) * (1.0 - corrupt)

    def affected_links(self, nnodes: int) -> Tuple[Tuple[int, int], ...]:
        """Concrete (src, dst) pairs the trace can bite, wildcards
        expanded against an ``nnodes``-node cluster."""
        pairs = []
        for rule in self.links:
            srcs = (range(nnodes) if rule.src == ANY_NODE
                    else (rule.src,))
            dsts = (range(nnodes) if rule.dst == ANY_NODE
                    else (rule.dst,))
            for s in srcs:
                for d in dsts:
                    if s != d and (s, d) not in pairs:
                        pairs.append((s, d))
        return tuple(pairs)

    # -- JSON round trip ------------------------------------------------

    def to_json(self, indent: int | None = None) -> str:
        doc = {"kind": TRACE_KIND, "seed": self.seed, "name": self.name,
               "links": [_rule_dict(r) for r in self.links]}
        return json.dumps(doc, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LinkTrace":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("link trace JSON must be an object")
        if doc.get("kind") != TRACE_KIND:
            raise ValueError(
                f"not a link trace (kind={doc.get('kind')!r}; "
                f"expected {TRACE_KIND!r}) — static fault plans go "
                f"through --fault-profile, not --link-trace")
        unknown = set(doc) - {"kind", "seed", "name", "links"}
        if unknown:
            raise ValueError(
                f"unknown link-trace keys: {sorted(unknown)}")
        links = []
        for r in doc.get("links", ()):
            segs = tuple(TraceSegment(**_coerce_inf(s))
                         for s in r.get("segments", ()))
            links.append(LinkRule(src=int(r.get("src", ANY_NODE)),
                                  dst=int(r.get("dst", ANY_NODE)),
                                  segments=segs))
        return cls(seed=int(doc.get("seed", 0)), links=tuple(links),
                   name=str(doc.get("name", "")))


def sniff_trace_json(text: str) -> bool:
    """True when ``text`` parses as JSON carrying the link-trace
    marker (used by profile resolution to route documents)."""
    try:
        doc = json.loads(text)
    except ValueError:
        return False
    return isinstance(doc, dict) and doc.get("kind") == TRACE_KIND


def _rule_dict(rule: LinkRule) -> dict:
    d = {"src": rule.src, "dst": rule.dst,
         "segments": [asdict(s) for s in rule.segments]}
    for s in d["segments"]:
        for k, v in list(s.items()):
            if v == math.inf:
                s[k] = "inf"
            elif v is None:
                del s[k]
    return d


def _coerce_inf(d: dict) -> dict:
    return {k: (math.inf if v == "inf" else v) for k, v in d.items()}


# ---------------------------------------------------------------------------
# Seeded scenario generators (linkguardian-style shapes)
# ---------------------------------------------------------------------------

def _pick_link(rng, nnodes: int) -> Tuple[int, int]:
    src = int(rng.integers(nnodes))
    dst = int(rng.integers(nnodes - 1))
    if dst >= src:
        dst += 1
    return src, dst


def flap_trace(nnodes: int, seed: int = 0, *, horizon_us: float = 20000.0,
               period_us: float = 2000.0, down_us: float = 800.0,
               down_loss: float = 0.9) -> LinkTrace:
    """A flapping link: up, then heavy loss for ``down_us`` of every
    ``period_us``, repeating until ``horizon_us``.  The shape repair
    policies are judged against — ``disable_and_repair`` should route
    around every down phase it has seen once."""
    rng = seeded_rng(seed, 0x71A9)
    src, dst = _pick_link(rng, nnodes)
    phase = float(rng.uniform(0.2, 0.8)) * period_us
    segs = []
    t = phase
    while t < horizon_us:
        segs.append(TraceSegment(t_start=t,
                                 t_end=min(t + down_us, horizon_us),
                                 loss=down_loss))
        t += period_us
    return LinkTrace(seed=seed, name="flap",
                     links=(LinkRule(src=src, dst=dst,
                                     segments=tuple(segs)),))


def burst_trace(nnodes: int, seed: int = 0, *,
                horizon_us: float = 20000.0, bursts: int = 4,
                burst_us: float = 600.0,
                burst_loss: float = 0.6) -> LinkTrace:
    """Short loss storms at random instants on one link (congestion
    collapse / transient optics trouble)."""
    rng = seeded_rng(seed, 0xB0B5)
    src, dst = _pick_link(rng, nnodes)
    starts = sorted(float(rng.uniform(0.05, 0.9)) * horizon_us
                    for _ in range(bursts))
    segs = []
    last_end = 0.0
    for s in starts:
        s = max(s, last_end + 1.0)
        if s >= horizon_us:
            break
        end = min(s + burst_us, horizon_us)
        segs.append(TraceSegment(t_start=s, t_end=end, loss=burst_loss))
        last_end = end
    return LinkTrace(seed=seed, name="burst",
                     links=(LinkRule(src=src, dst=dst,
                                     segments=tuple(segs)),))


def degrade_trace(nnodes: int, seed: int = 0, *,
                  horizon_us: float = 20000.0, final_loss: float = 0.45,
                  final_delay_us: float = 30.0) -> LinkTrace:
    """Slow rot: loss and latency inflation ramp linearly from healthy
    to ``final_*`` across the horizon (aging optics, creeping FEC
    retries) — the shape that exercises segment interpolation."""
    rng = seeded_rng(seed, 0xDE64)
    src, dst = _pick_link(rng, nnodes)
    onset = float(rng.uniform(0.1, 0.3)) * horizon_us
    seg = TraceSegment(t_start=onset, t_end=horizon_us,
                       loss=0.0, loss_end=final_loss,
                       delay_us=0.0, delay_end_us=final_delay_us)
    return LinkTrace(seed=seed, name="degrade",
                     links=(LinkRule(src=src, dst=dst,
                                     segments=(seg,)),))


def gray_trace(nnodes: int, seed: int = 0, *,
               horizon_us: float = 20000.0, corrupt: float = 0.12,
               delay_us: float = 6.0) -> LinkTrace:
    """Gray failure: a link that silently corrupts a steady small
    fraction of frames (receiver CRC drops them) with mild latency
    inflation — never bad enough to look hard-down, always bad enough
    to hurt the tail."""
    rng = seeded_rng(seed, 0x64A1)
    src, dst = _pick_link(rng, nnodes)
    onset = float(rng.uniform(0.05, 0.2)) * horizon_us
    seg = TraceSegment(t_start=onset, t_end=horizon_us,
                       corrupt=corrupt, delay_us=delay_us)
    return LinkTrace(seed=seed, name="gray",
                     links=(LinkRule(src=src, dst=dst,
                                     segments=(seg,)),))


#: Registry of scenario-shape builders: name -> f(nnodes, seed, **kw).
TRACE_SHAPES: Dict[str, Callable[..., LinkTrace]] = {
    "flap": flap_trace,
    "burst": burst_trace,
    "degrade": degrade_trace,
    "gray": gray_trace,
}


#: Generator overrides compressing each shape into a ~6 ms horizon so
#: short (smoke/CI) traffic windows still see several episodes.
#: Shared by the lossy-fabric bench and campaign lossy cells.
COMPRESSED_TRACE_KW: Dict[str, Dict[str, float]] = {
    "flap": dict(horizon_us=6000.0, period_us=2000.0, down_us=800.0),
    "burst": dict(horizon_us=6000.0, bursts=3),
    "degrade": dict(horizon_us=6000.0),
    "gray": dict(horizon_us=6000.0),
}


def make_trace(shape: str, nnodes: int, seed: int = 0,
               **kwargs) -> LinkTrace:
    """Build a named scenario shape for an ``nnodes``-node cluster."""
    try:
        builder = TRACE_SHAPES[shape]
    except KeyError:
        names = ", ".join(sorted(TRACE_SHAPES))
        raise ValueError(f"unknown trace shape {shape!r} "
                         f"(expected one of: {names})") from None
    return builder(nnodes, seed, **kwargs)
