"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of
*what can go wrong* in a run: per-link message perturbations, NIC
stalls, handler slowdowns, and injected pin-registration budgets.  It
carries its own seed; *when* each fault actually fires is decided by
the :class:`~repro.faults.injector.FaultInjector` drawing from
``seeded_rng(plan.seed, ...)``, so a plan plus a workload seed replays
the exact same failure sequence — the property that lets a fuzz
counterexample or a chaos-CI failure be attached to a bug report as a
short JSON document.

All times are virtual microseconds.  ``src``/``dst``/``node`` fields
accept :data:`ANY_NODE` (``-1``) as a wildcard; ``t_end`` of ``inf``
means "until the end of the run".
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, replace
from typing import Tuple

#: Wildcard for ``src``/``dst``/``node`` rule fields.
ANY_NODE = -1

#: Message perturbations a :class:`LinkFault` can inject.
LINK_KINDS = ("drop", "duplicate", "delay")

#: Protocol scopes a :class:`LinkFault` applies to.
LINK_SCOPES = ("am", "rdma", "both")


def _check_window(t_start: float, t_end: float) -> None:
    if t_start < 0 or t_end < t_start:
        raise ValueError(f"bad time window [{t_start}, {t_end})")


def _check_prob(prob: float) -> None:
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"probability {prob} outside [0, 1]")


@dataclass(frozen=True)
class LinkFault:
    """Perturb messages crossing one (or any) link.

    ``drop`` loses the message in the fabric (request and reply are
    separate messages and are drawn independently); ``duplicate``
    delivers the request a second time (the dedup ledger must absorb
    it); ``delay`` adds ``delay_us`` of extra wire latency.  ``scope``
    selects which protocol family the rule bites: AM request/reply
    traffic, one-sided RDMA, or both.
    """

    kind: str
    prob: float
    src: int = ANY_NODE
    dst: int = ANY_NODE
    delay_us: float = 0.0
    t_start: float = 0.0
    t_end: float = math.inf
    scope: str = "am"

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(f"unknown link-fault kind {self.kind!r}; "
                             f"expected one of {LINK_KINDS}")
        if self.scope not in LINK_SCOPES:
            raise ValueError(f"unknown link-fault scope {self.scope!r}; "
                             f"expected one of {LINK_SCOPES}")
        _check_prob(self.prob)
        _check_window(self.t_start, self.t_end)
        if self.kind == "delay" and self.delay_us <= 0.0:
            raise ValueError("delay fault needs a positive delay_us")

    def matches(self, src: int, dst: int, now: float) -> bool:
        return ((self.src == ANY_NODE or self.src == src)
                and (self.dst == ANY_NODE or self.dst == dst)
                and self.t_start <= now < self.t_end)


@dataclass(frozen=True)
class NicStall:
    """Transient NIC brown-out: every injection on ``node`` during the
    window pays an extra ``stall_us`` before touching the wire (DMA
    engine backpressure / firmware hiccup)."""

    stall_us: float
    node: int = ANY_NODE
    prob: float = 1.0
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        if self.stall_us <= 0.0:
            raise ValueError("NIC stall needs a positive stall_us")
        _check_prob(self.prob)
        _check_window(self.t_start, self.t_end)

    def matches(self, node: int, now: float) -> bool:
        return ((self.node == ANY_NODE or self.node == node)
                and self.t_start <= now < self.t_end)


@dataclass(frozen=True)
class HandlerStall:
    """Slow or wedged target: AM handler dispatch on ``node`` pays an
    extra ``stall_us`` during the window (CPU contention on the
    polling core, interrupt storm on the LAPI dispatcher)."""

    stall_us: float
    node: int = ANY_NODE
    prob: float = 1.0
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        if self.stall_us <= 0.0:
            raise ValueError("handler stall needs a positive stall_us")
        _check_prob(self.prob)
        _check_window(self.t_start, self.t_end)

    def matches(self, node: int, now: float) -> bool:
        return ((self.node == ANY_NODE or self.node == node)
                and self.t_start <= now < self.t_end)


@dataclass(frozen=True)
class PinBudget:
    """Injected registration-memory budget: once ``budget_bytes`` of
    pin registrations have been granted on ``node``, further
    ``PinnedAddressTable.register`` calls fail and the affected object
    degrades to the AM path forever.  Tighter than any configured
    ``pin_max_total_bytes``, this exercises exhaustion without needing
    a workload large enough to blow the real limit."""

    budget_bytes: int
    node: int = ANY_NODE

    def __post_init__(self) -> None:
        if self.budget_bytes < 0:
            raise ValueError("pin budget must be >= 0")

    def matches(self, node: int) -> bool:
        return self.node == ANY_NODE or self.node == node


#: rule-list field name -> element class, for JSON (de)serialisation.
_RULE_FIELDS = {
    "links": LinkFault,
    "nic_stalls": NicStall,
    "handler_stalls": HandlerStall,
    "pin_budgets": PinBudget,
}


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus rule lists.  Empty plan == lossless fabric: the
    runtime installs no injector and takes the exact pre-fault paths.
    """

    seed: int = 0
    links: Tuple[LinkFault, ...] = ()
    nic_stalls: Tuple[NicStall, ...] = ()
    handler_stalls: Tuple[HandlerStall, ...] = ()
    pin_budgets: Tuple[PinBudget, ...] = ()
    #: Free-form label (profile name) carried through JSON for reports.
    name: str = ""

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built plans / JSON loading.
        for fname in _RULE_FIELDS:
            val = getattr(self, fname)
            if not isinstance(val, tuple):
                object.__setattr__(self, fname, tuple(val))

    @property
    def empty(self) -> bool:
        return not (self.links or self.nic_stalls
                    or self.handler_stalls or self.pin_budgets)

    def with_seed(self, seed: int) -> "FaultPlan":
        """Same rules, different draw sequence — how the fuzz runner
        derives a per-program plan from one base plan."""
        return replace(self, seed=seed)

    # -- JSON round trip ------------------------------------------------
    def to_json(self, indent: int | None = None) -> str:
        doc = {"seed": self.seed, "name": self.name}
        for fname in _RULE_FIELDS:
            rules = getattr(self, fname)
            if rules:
                doc[fname] = [_rule_dict(r) for r in rules]
        return json.dumps(doc, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("fault plan JSON must be an object")
        known = {"seed", "name", *_RULE_FIELDS}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        kwargs = {"seed": int(doc.get("seed", 0)),
                  "name": str(doc.get("name", ""))}
        for fname, rule_cls in _RULE_FIELDS.items():
            kwargs[fname] = tuple(rule_cls(**_coerce_inf(r))
                                  for r in doc.get(fname, ()))
        return cls(**kwargs)


def _rule_dict(rule) -> dict:
    # JSON has no inf literal; spell open-ended windows as "inf".
    d = asdict(rule)
    for k, v in list(d.items()):
        if v == math.inf:
            d[k] = "inf"
    return d


def _coerce_inf(d: dict) -> dict:
    return {k: (math.inf if v == "inf" else v) for k, v in d.items()}
