"""Named fault profiles for the CLI, CI chaos job, and fuzz runner.

A profile is just a :class:`FaultPlan` template under a stable name;
``--fault-profile chaos --fault-seed 7`` reproduces the exact run
anywhere.  ``resolve_profile`` also accepts inline JSON or a path to a
plan file, so a failing plan attached to a bug report replays with the
same flag.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.faults.plan import FaultPlan, HandlerStall, LinkFault, \
    NicStall, PinBudget

#: Registry of canned plans (seed 0; override with ``--fault-seed``).
PROFILES: Dict[str, FaultPlan] = {
    # Lossy fabric: ~5% of messages vanish, AM and RDMA alike.
    "drop": FaultPlan(
        name="drop",
        links=(LinkFault(kind="drop", prob=0.05, scope="both"),),
    ),
    # At-least-once fabric: ~5% of AM requests delivered twice.
    "dup": FaultPlan(
        name="dup",
        links=(LinkFault(kind="duplicate", prob=0.05, scope="am"),),
    ),
    # Congested fabric: ~20% of messages pay 25 µs extra latency.
    "delay": FaultPlan(
        name="delay",
        links=(LinkFault(kind="delay", prob=0.2, delay_us=25.0,
                         scope="both"),),
    ),
    # Wedged targets: handler dispatch and NIC injections stall.
    "stall": FaultPlan(
        name="stall",
        nic_stalls=(NicStall(stall_us=15.0, prob=0.1),),
        handler_stalls=(HandlerStall(stall_us=30.0, prob=0.1),),
    ),
    # Registration memory runs out after 16 KiB of pins per node.
    "pin": FaultPlan(
        name="pin",
        pin_budgets=(PinBudget(budget_bytes=16 * 1024),),
    ),
    # The acceptance profile: drop + duplicate + pin exhaustion —
    # exercises every recovery path (retry/backoff, dedup ledger,
    # RDMA→AM fallback, unpinnable degradation) at once.
    "chaos": FaultPlan(
        name="chaos",
        links=(LinkFault(kind="drop", prob=0.04, scope="both"),
               LinkFault(kind="duplicate", prob=0.04, scope="am")),
        pin_budgets=(PinBudget(budget_bytes=16 * 1024),),
    ),
}


def resolve_profile(spec: str,
                    fault_seed: Optional[int] = None) -> FaultPlan:
    """Turn a ``--fault-profile`` argument into a plan.

    ``spec`` may be a registry name (``chaos``), inline JSON
    (``'{"seed": 3, "links": [...]}'``), or a path to a JSON plan
    file.  ``fault_seed`` overrides the plan's seed when given.
    """
    if spec in PROFILES:
        plan = PROFILES[spec]
    elif spec.lstrip().startswith("{"):
        plan = FaultPlan.from_json(spec)
    elif os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
    else:
        names = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown fault profile {spec!r} "
                         f"(not a name [{names}], inline JSON, or file)")
    if fault_seed is not None:
        plan = plan.with_seed(fault_seed)
    return plan
