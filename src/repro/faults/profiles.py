"""Named fault profiles for the CLI, CI chaos job, and fuzz runner.

A profile is just a :class:`FaultPlan` template under a stable name;
``--fault-profile chaos --fault-seed 7`` reproduces the exact run
anywhere.  ``resolve_profile`` also accepts inline JSON or a path to a
plan file, so a failing plan attached to a bug report replays with the
same flag.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.faults.plan import FaultPlan, HandlerStall, LinkFault, \
    NicStall, PinBudget
from repro.faults.trace import LinkTrace, TRACE_SHAPES, make_trace, \
    sniff_trace_json

#: Registry of canned plans (seed 0; override with ``--fault-seed``).
PROFILES: Dict[str, FaultPlan] = {
    # Lossy fabric: ~5% of messages vanish, AM and RDMA alike.
    "drop": FaultPlan(
        name="drop",
        links=(LinkFault(kind="drop", prob=0.05, scope="both"),),
    ),
    # At-least-once fabric: ~5% of AM requests delivered twice.
    "dup": FaultPlan(
        name="dup",
        links=(LinkFault(kind="duplicate", prob=0.05, scope="am"),),
    ),
    # Congested fabric: ~20% of messages pay 25 µs extra latency.
    "delay": FaultPlan(
        name="delay",
        links=(LinkFault(kind="delay", prob=0.2, delay_us=25.0,
                         scope="both"),),
    ),
    # Wedged targets: handler dispatch and NIC injections stall.
    "stall": FaultPlan(
        name="stall",
        nic_stalls=(NicStall(stall_us=15.0, prob=0.1),),
        handler_stalls=(HandlerStall(stall_us=30.0, prob=0.1),),
    ),
    # Registration memory runs out after 16 KiB of pins per node.
    "pin": FaultPlan(
        name="pin",
        pin_budgets=(PinBudget(budget_bytes=16 * 1024),),
    ),
    # The acceptance profile: drop + duplicate + pin exhaustion —
    # exercises every recovery path (retry/backoff, dedup ledger,
    # RDMA→AM fallback, unpinnable degradation) at once.
    "chaos": FaultPlan(
        name="chaos",
        links=(LinkFault(kind="drop", prob=0.04, scope="both"),
               LinkFault(kind="duplicate", prob=0.04, scope="am")),
        pin_budgets=(PinBudget(budget_bytes=16 * 1024),),
    ),
}


def resolve_profile(spec: str,
                    fault_seed: Optional[int] = None) -> FaultPlan:
    """Turn a ``--fault-profile`` argument into a plan.

    ``spec`` may be a registry name (``chaos``), inline JSON
    (``'{"seed": 3, "links": [...]}'``), or a path to a JSON plan
    file.  ``fault_seed`` overrides the plan's seed when given.
    """
    if spec in PROFILES:
        plan = PROFILES[spec]
    elif spec.lstrip().startswith("{"):
        _reject_trace_spec(spec)
        plan = FaultPlan.from_json(spec)
    elif os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as fh:
            text = fh.read()
        _reject_trace_spec(text, origin=spec)
        plan = FaultPlan.from_json(text)
    else:
        names = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown fault profile {spec!r} "
                         f"(not a name [{names}], inline JSON, or file)")
    if fault_seed is not None:
        plan = plan.with_seed(fault_seed)
    return plan


def _reject_trace_spec(text: str, origin: str = "inline JSON") -> None:
    if sniff_trace_json(text):
        raise ValueError(
            f"{origin} is a link trace (kind=link-trace), not a static "
            f"fault plan — pass it via --link-trace, not --fault-profile")


def resolve_trace(spec: str,
                  nnodes: int,
                  trace_seed: Optional[int] = None) -> LinkTrace:
    """Turn a ``--link-trace`` argument into a :class:`LinkTrace`.

    ``spec`` may be a generator shape name (``flap``, ``burst``,
    ``degrade``, ``gray``), inline trace JSON (``{"kind":
    "link-trace", ...}``), or a path to a trace file.  ``trace_seed``
    overrides the trace's seed when given (and seeds the generators).
    """
    if spec in TRACE_SHAPES:
        trace = make_trace(spec, nnodes, trace_seed or 0)
        return trace
    if spec.lstrip().startswith("{"):
        if not sniff_trace_json(spec):
            raise ValueError(
                "inline JSON is not a link trace (no \"kind\": "
                "\"link-trace\" marker) — static fault plans go "
                "through --fault-profile, not --link-trace")
        trace = LinkTrace.from_json(spec)
    elif os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as fh:
            text = fh.read()
        if not sniff_trace_json(text):
            raise ValueError(
                f"{spec} is not a link trace (no \"kind\": "
                f"\"link-trace\" marker) — static fault plans go "
                f"through --fault-profile, not --link-trace")
        trace = LinkTrace.from_json(text)
    else:
        names = ", ".join(sorted(TRACE_SHAPES))
        raise ValueError(f"unknown link trace {spec!r} "
                         f"(not a shape [{names}], inline JSON, or "
                         f"file)")
    if trace_seed is not None:
        trace = trace.with_seed(trace_seed)
    return trace
