"""The remote data-structure service layer.

Everything below this package is mechanism — one-sided memget/memput,
the address cache, the bulk engine, locks, AM handlers.  This package
is the first *policy* layer built on top of it: distributed data
structures that serve requests, starting with the hashed key-value
store of :mod:`repro.service.kvstore` (the Storm / "RDMA vs. RPC for
Distributed Data Structures" scenario from PAPERS.md).
"""

from repro.service.kvstore import (
    ACCESS_PATHS,
    KV_MISSING,
    KVFullError,
    KVStore,
    KVStoreError,
    bucket_of,
    kv_create,
)

__all__ = [
    "ACCESS_PATHS",
    "KV_MISSING",
    "KVFullError",
    "KVStore",
    "KVStoreError",
    "bucket_of",
    "kv_create",
]
