"""A distributed hash table over PGAS shared memory.

The store's buckets live in one block-cyclic :class:`SharedArray`, so
every bucket has a *home* determined by ordinary UPC layout arithmetic
and remote buckets are reachable by the same one-sided machinery as
any shared array.  Two access paths serve the same bucket layout —
selectable per store, which is exactly the Storm / "RDMA vs. RPC for
Implementing Distributed Data Structures" comparison:

``onesided``
    GET: ``memget`` the bucket span and scan locally (RDMA when the
    address cache hits).  UPDATE: lock-RMW under a striped
    ``upc_lock_t`` — lock, read the bucket, write one slot, fence,
    unlock.  MULTI-GET: one vectored ``memget_v`` over the distinct
    bucket spans, so the bulk engine coalesces buckets that share a
    home node into single wire messages.

``rpc``
    Every op is one AM round trip to the bucket's home node; the
    handler scans/mutates the bucket in place and the reply carries
    the result.  Under fault plans the transport's dedup ledger makes
    handler execution exactly-once, so RPC mutations survive
    retransmits.  Requires buckets not to straddle affinity
    boundaries (``blocksize`` a multiple of the bucket span).

Bucket layout: ``slots_per_bucket`` slots of two cells each —
``[key_enc, value]`` with ``key_enc == 0`` meaning *empty* and
``key_enc == key + 1`` otherwise.  Deletion writes the empty sentinel
back (the slot is immediately reusable).  Slot choice is a
deterministic scan (matching key first, else first empty slot), so
both access paths produce byte-identical bucket images for the same
operation history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.obs.events import KV_DEL, KV_GET, KV_MGET, KV_PUT
from repro.runtime.errors import UPCRuntimeError
from repro.runtime.shared_array import SharedArray
from repro.runtime.shared_lock import SharedLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.thread import UPCThread

#: Sentinel returned by :meth:`KVStore.get` for absent keys.
KV_MISSING = -1

#: Key-cell encoding for an empty slot.
_EMPTY = 0

#: The two access paths a store can be built with.
ACCESS_PATHS = ("onesided", "rpc")

#: RPC reply sentinel for a full bucket (handlers must not raise: they
#: run inside the transport's service loop).
_RPC_FULL = "__kv_full__"

#: Modeled per-slot scan cost inside an RPC handler (µs).
_SCAN_US_PER_SLOT = 0.02


class KVStoreError(UPCRuntimeError):
    """Misuse of the store API (bad key/value, bad configuration)."""


class KVFullError(KVStoreError):
    """PUT into a bucket whose every slot holds a *different* key."""


def bucket_of(key: int, nbuckets: int) -> int:
    """The bucket serving ``key``.

    Identity-mod hashing keeps the mapping transparent to the test
    oracle and the sharded skeleton (both recompute it independently);
    key universes in tests are chosen to collide anyway.
    """
    return key % nbuckets


def _check_key(key) -> int:
    key = int(key)
    if not 0 <= key < (1 << 62):
        raise KVStoreError(f"key out of range: {key}")
    return key


def _check_value(value) -> int:
    value = int(value)
    if not 0 <= value < (1 << 62):
        raise KVStoreError(f"value out of range: {value}")
    return value


def _scan_get(cells: np.ndarray, key: int) -> int:
    """Value for ``key`` in a bucket image, or :data:`KV_MISSING`."""
    enc = key + 1
    for slot in range(len(cells) // 2):
        if int(cells[2 * slot]) == enc:
            return int(cells[2 * slot + 1])
    return KV_MISSING


def _scan_depth(cells: np.ndarray, key: int) -> int:
    """Slots a GET scan touches before resolving ``key`` (full bucket
    on a miss).  Observability-only: callers invoke it solely under an
    ``op_id >= 0`` guard, so disabled runs never pay the extra scan."""
    enc = key + 1
    nslots = len(cells) // 2
    for slot in range(nslots):
        if int(cells[2 * slot]) == enc:
            return slot + 1
    return nslots


def _scan_slot(cells: np.ndarray, key: int) -> int:
    """Slot index a PUT of ``key`` must write: the slot already
    holding ``key`` if any, else the first empty slot, else ``-1``."""
    enc = key + 1
    empty = -1
    for slot in range(len(cells) // 2):
        k = int(cells[2 * slot])
        if k == enc:
            return slot
        if k == _EMPTY and empty < 0:
            empty = slot
    return empty


class KVStore:
    """One distributed hash table (see module docstring).

    The wrapper itself is stateless beyond configuration: every UPC
    thread may share one instance (or hold equivalent wrappers around
    the same backing array).  All data-moving methods are generator
    coroutines taking the calling :class:`UPCThread` first.
    """

    def __init__(self, runtime, array: SharedArray, nbuckets: int,
                 slots_per_bucket: int,
                 locks: Optional[Sequence[SharedLock]] = None,
                 access: str = "onesided") -> None:
        if access not in ACCESS_PATHS:
            raise KVStoreError(f"unknown access path {access!r}")
        if nbuckets <= 0 or slots_per_bucket <= 0:
            raise KVStoreError("nbuckets and slots_per_bucket must be > 0")
        span = 2 * slots_per_bucket
        if array.nelems != nbuckets * span:
            raise KVStoreError(
                f"backing array has {array.nelems} cells, need "
                f"{nbuckets * span} for {nbuckets}x{slots_per_bucket}")
        if access == "rpc" and array.owner is None \
                and array.layout.blocksize % span != 0:
            raise KVStoreError(
                "rpc stores need buckets on single home nodes: "
                f"blocksize {array.layout.blocksize} is not a multiple "
                f"of the bucket span {span}")
        self.runtime = runtime
        self.array = array
        self.nbuckets = nbuckets
        self.slots_per_bucket = slots_per_bucket
        self.span = span
        self.locks = list(locks) if locks else []
        self.access = access

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<KVStore {self.access} buckets={self.nbuckets}"
                f"x{self.slots_per_bucket} arr={self.array.handle}>")

    # -- geometry -----------------------------------------------------

    def bucket_of(self, key: int) -> int:
        return bucket_of(key, self.nbuckets)

    def _base(self, bucket: int) -> int:
        return bucket * self.span

    def home_node(self, bucket: int) -> int:
        """Home node of a bucket's first cell (for ``rpc`` stores the
        whole bucket, by the blocksize precondition)."""
        return self.array.owner_node(self._base(bucket))

    def _lock_for(self, bucket: int) -> Optional[SharedLock]:
        if not self.locks:
            return None
        return self.locks[bucket % len(self.locks)]

    # -- access-path selection ----------------------------------------

    def _path(self, th: "UPCThread", bucket: int) -> str:
        """The access path serving this op: the configured one, except
        that a ``path_failover`` repair policy holding the link to the
        bucket's home in failover mode flips one-sided traffic to RPC
        for the duration (an RPC retry re-issues cheaply; a one-sided
        retry pays RDMA invalidation + re-validation on top)."""
        if self.access == "rpc":
            return "rpc"
        policy = getattr(self.runtime, "policy", None)
        if policy is None:
            return "onesided"
        home = self.home_node(bucket)
        if home != th.node.id and policy.mode_of(
                th.node.id, home, self.runtime.sim.now
        ).mode == "failover":
            self.runtime.metrics.kv_failover_ops += 1
            return "rpc"
        return "onesided"

    def _mget_path(self, th: "UPCThread", keys) -> str:
        """Batched variant: the whole batch fails over if any of its
        home links is in failover mode (homes are visited in sorted
        order, so the check is deterministic)."""
        if self.access == "rpc":
            return "rpc"
        policy = getattr(self.runtime, "policy", None)
        if policy is None:
            return "onesided"
        now = self.runtime.sim.now
        me = th.node.id
        for home in sorted({self.home_node(self.bucket_of(k))
                            for k in keys}):
            if home != me and policy.mode_of(me, home, now).mode \
                    == "failover":
                self.runtime.metrics.kv_failover_ops += 1
                return "rpc"
        return "onesided"

    # -- operations ---------------------------------------------------

    def get(self, th: "UPCThread", key):
        """Look up ``key``; returns the value or :data:`KV_MISSING`."""
        key = _check_key(key)
        op_id = th._span_begin(KV_GET)
        self.runtime.metrics.kv_gets += 1
        if self._path(th, self.bucket_of(key)) == "rpc":
            t0 = self.runtime.sim.now if op_id >= 0 else 0.0
            value = yield from self._rpc(th, "get", (key,))
            if op_id >= 0:
                th._span_end(op_id, key=key, hit=value != KV_MISSING,
                             path="rpc",
                             home=self.home_node(self.bucket_of(key)),
                             am_rtt_us=self.runtime.sim.now - t0)
        else:
            self.runtime.metrics.kv_onesided_ops += 1
            cells = yield from th.memget(self.array,
                                         self._base(self.bucket_of(key)),
                                         self.span)
            value = _scan_get(cells, key)
            if op_id >= 0:
                th._span_end(op_id, key=key, hit=value != KV_MISSING,
                             path="onesided",
                             scan_depth=_scan_depth(cells, key))
        return value

    def put(self, th: "UPCThread", key, value):
        """Insert or update ``key``.

        One-sided path: lock-RMW under the bucket's stripe lock —
        the read and the single-slot write are both one-sided, the
        fence orders the write before the unlock travels.  Raises
        :class:`KVFullError` when the bucket has no slot for a new
        key (existing keys always update in place).
        """
        key = _check_key(key)
        value = _check_value(value)
        op_id = th._span_begin(KV_PUT)
        self.runtime.metrics.kv_puts += 1
        if self._path(th, self.bucket_of(key)) == "rpc":
            t0 = self.runtime.sim.now if op_id >= 0 else 0.0
            yield from self._rpc(th, "put", (key, value))
            if op_id >= 0:
                th._span_end(op_id, key=key, path="rpc",
                             home=self.home_node(self.bucket_of(key)),
                             am_rtt_us=self.runtime.sim.now - t0)
        else:
            self.runtime.metrics.kv_onesided_ops += 1
            bucket = self.bucket_of(key)
            base = self._base(bucket)
            lck = self._lock_for(bucket)
            if lck is not None:
                yield from th.lock(lck)
            t_lock = self.runtime.sim.now if op_id >= 0 else 0.0
            try:
                cells = yield from th.memget(self.array, base, self.span)
                slot = _scan_slot(cells, key)
                if slot < 0:
                    raise KVFullError(
                        f"bucket {bucket} full "
                        f"({self.slots_per_bucket} slots), key {key}")
                yield from th.memput(
                    self.array, base + 2 * slot,
                    np.array([key + 1, value], dtype=self.array.dtype))
                yield from th.fence()
            finally:
                if lck is not None:
                    yield from th.unlock(lck)
            if op_id >= 0:
                th._span_end(op_id, key=key, path="onesided",
                             lock_hold_us=(self.runtime.sim.now - t_lock
                                           if lck is not None else 0.0))

    def delete(self, th: "UPCThread", key):
        """Remove ``key``; returns whether it was present."""
        key = _check_key(key)
        op_id = th._span_begin(KV_DEL)
        self.runtime.metrics.kv_dels += 1
        if self._path(th, self.bucket_of(key)) == "rpc":
            t0 = self.runtime.sim.now if op_id >= 0 else 0.0
            found = yield from self._rpc(th, "del", (key,))
            if op_id >= 0:
                th._span_end(op_id, key=key, hit=found, path="rpc",
                             home=self.home_node(self.bucket_of(key)),
                             am_rtt_us=self.runtime.sim.now - t0)
        else:
            self.runtime.metrics.kv_onesided_ops += 1
            bucket = self.bucket_of(key)
            base = self._base(bucket)
            lck = self._lock_for(bucket)
            if lck is not None:
                yield from th.lock(lck)
            t_lock = self.runtime.sim.now if op_id >= 0 else 0.0
            try:
                cells = yield from th.memget(self.array, base, self.span)
                enc = key + 1
                found = False
                for slot in range(self.slots_per_bucket):
                    if int(cells[2 * slot]) == enc:
                        yield from th.memput(
                            self.array, base + 2 * slot,
                            np.array([_EMPTY], dtype=self.array.dtype))
                        yield from th.fence()
                        found = True
                        break
            finally:
                if lck is not None:
                    yield from th.unlock(lck)
            if op_id >= 0:
                th._span_end(op_id, key=key, hit=found, path="onesided",
                             lock_hold_us=(self.runtime.sim.now - t_lock
                                           if lck is not None else 0.0))
        return bool(found)

    def multi_get(self, th: "UPCThread", keys):
        """Batched lookup; returns values in input-key order.

        One-sided path: one vectored ``memget_v`` over the distinct
        bucket spans — the bulk engine coalesces same-home buckets
        into single wire messages and pipelines across homes.  RPC
        path: one batched AM round trip per distinct home node.
        """
        keys = [_check_key(k) for k in keys]
        op_id = th._span_begin(KV_MGET)
        self.runtime.metrics.kv_mgets += 1
        if not keys:
            th._span_end(op_id, nkeys=0)
            return []
        if self._mget_path(th, keys) == "rpc":
            t0 = self.runtime.sim.now if op_id >= 0 else 0.0
            values = yield from self._rpc_mget(th, keys)
            if op_id >= 0:
                homes = sorted({self.home_node(self.bucket_of(k))
                                for k in keys})
                th._span_end(op_id, nkeys=len(keys), path="rpc",
                             nhomes=len(homes),
                             am_rtt_us=self.runtime.sim.now - t0)
        else:
            self.runtime.metrics.kv_onesided_ops += 1
            buckets = sorted({self.bucket_of(k) for k in keys})
            spans = [(self._base(b), self.span) for b in buckets]
            images = yield from th.memget_v(self.array, spans)
            table = dict(zip(buckets, images))
            values = [_scan_get(table[self.bucket_of(k)], k)
                      for k in keys]
            if op_id >= 0:
                th._span_end(op_id, nkeys=len(keys), path="onesided",
                             nbuckets=len(buckets))
        return values

    # -- the AM/RPC path ----------------------------------------------

    def _apply(self, verb: str, args) -> object:
        """Execute one op against the backing store's data plane —
        the body of the home-node handler (and of the local fast
        path).  Must not raise: error outcomes travel as payloads."""
        arr = self.array
        if verb == "get":
            (key,) = args
            base = self._base(self.bucket_of(key))
            return _scan_get(arr.read(base, self.span), key)
        if verb == "put":
            key, value = args
            base = self._base(self.bucket_of(key))
            cells = arr.read(base, self.span)
            slot = _scan_slot(cells, key)
            if slot < 0:
                return _RPC_FULL
            arr.write(base + 2 * slot,
                      np.array([key + 1, value], dtype=arr.dtype))
            return None
        if verb == "del":
            (key,) = args
            base = self._base(self.bucket_of(key))
            cells = arr.read(base, self.span)
            enc = key + 1
            for slot in range(self.slots_per_bucket):
                if int(cells[2 * slot]) == enc:
                    arr.write(base + 2 * slot,
                              np.array([_EMPTY], dtype=arr.dtype))
                    return True
            return False
        if verb == "mget":
            return [self._apply("get", (k,)) for k in args]
        raise KVStoreError(f"unknown rpc verb {verb!r}")  # pragma: no cover

    def _rpc_round_trip(self, th: "UPCThread", home: int, verb: str,
                        args, nbytes: int):
        """One AM round trip executing ``verb`` at ``home``.

        The handler runs on the home node's handler CPU (after the
        progress engine grants service — the GM polling pathology
        applies to RPC kv ops exactly as to any AM); with fault plans
        active the transport's dedup ledger guarantees the handler
        body runs once even when the request is retransmitted.
        """
        rt = self.runtime
        self.runtime.metrics.kv_rpc_ops += 1
        if home == th.node.id:
            yield rt.sim.sleep(rt.cluster.params.shm_access_us)
            return self._apply(verb, args)
        p = rt.cluster.params
        cost = p.svd_lookup_us + _SCAN_US_PER_SLOT * self.slots_per_bucket

        def handler(node, _verb=verb, _args=args, _cost=cost):
            return (_cost, self._apply(_verb, _args), 0)

        def _go():
            reply = yield from rt.cluster.transport.default_get(
                th.node, rt.cluster.node(home), nbytes, handler)
            return reply.payload

        payload = yield from th._in_runtime(_go())
        return payload

    def _rpc(self, th: "UPCThread", verb: str, args):
        key = args[0]
        home = self.home_node(self.bucket_of(key))
        nbytes = self.array.elem_size * (2 if verb == "put" else 1)
        result = yield from self._rpc_round_trip(th, home, verb, args,
                                                 nbytes)
        if result == _RPC_FULL:
            raise KVFullError(
                f"bucket {self.bucket_of(key)} full "
                f"({self.slots_per_bucket} slots), key {key}")
        return result

    def _rpc_mget(self, th: "UPCThread", keys: List[int]):
        groups: Dict[int, List[int]] = {}
        for k in keys:
            groups.setdefault(self.home_node(self.bucket_of(k)),
                              []).append(k)
        value_of: Dict[int, int] = {}
        for home in sorted(groups):
            group = groups[home]
            nbytes = self.array.elem_size * len(group)
            values = yield from self._rpc_round_trip(
                th, home, "mget", tuple(group), nbytes)
            value_of.update(zip(group, values))
        return [value_of[k] for k in keys]

    # -- test plane ---------------------------------------------------

    def snapshot(self) -> Dict[int, int]:
        """Decode the backing array into a plain dict (synchronous
        data-plane read — the differential harness's final-state
        view, not a timed operation)."""
        cells = self.array.data
        out: Dict[int, int] = {}
        for bucket in range(self.nbuckets):
            base = self._base(bucket)
            for slot in range(self.slots_per_bucket):
                enc = int(cells[base + 2 * slot])
                if enc != _EMPTY:
                    out[enc - 1] = int(cells[base + 2 * slot + 1])
        return out


def kv_create(th: "UPCThread", nbuckets: int, slots_per_bucket: int = 4,
              access: str = "onesided",
              locks: Optional[Sequence[SharedLock]] = None,
              blocksize: Optional[int] = None):
    """Collectively build a :class:`KVStore` (``upc_all_alloc`` of the
    backing array + a wrapper per thread; every thread must call).

    ``blocksize`` defaults to one bucket per affine block; pass a
    smaller value to make buckets straddle affinity boundaries
    (one-sided stores only — exercises the bulk engine's segment
    splitting on every bucket fetch).
    """
    span = 2 * slots_per_bucket
    if blocksize is None:
        blocksize = span
    arr = yield from th.all_alloc(nbuckets * span, blocksize=blocksize,
                                  dtype="u8")
    return KVStore(th.runtime, arr, nbuckets, slots_per_bucket,
                   locks=locks, access=access)
