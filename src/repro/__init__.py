"""repro — reproduction of *Scalable RDMA performance in PGAS
languages* (Farreras, Almási, Caşcaval, Cortes; IPDPS 2009).

The package rebuilds the paper's whole stack on a discrete-event
simulator:

* :mod:`repro.sim` — event-driven kernel (virtual clock in µs);
* :mod:`repro.memory` — per-node address spaces, pinning, pin-down
  caches;
* :mod:`repro.network` — Myrinet/GM and HPS/LAPI transport models
  (AM protocols, RDMA, polling vs interrupt progress);
* :mod:`repro.runtime` — the XLUPC runtime: Shared Variable Directory,
  shared objects, GET/PUT, collectives, hybrid thread mapping;
* :mod:`repro.core` — **the contribution**: the remote address cache
  and pinned address table;
* :mod:`repro.workloads` — GET/PUT microbenchmarks + the DIS
  Stressmark subset (Pointer, Update, Neighborhood, Field);
* :mod:`repro.experiments` — runners regenerating every evaluation
  figure (6, 7, 8, 9) and the section-6 overhead claim.

Quickstart::

    from repro import Runtime, RuntimeConfig, GM_MARENOSTRUM

    def kernel(th):
        arr = yield from th.all_alloc(4096, blocksize=64, dtype="u8")
        value = yield from th.get(arr, 1234)   # remote read
        yield from th.barrier()

    rt = Runtime(RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8))
    rt.spawn(kernel)
    result = rt.run()
    print(result.elapsed_us, result.cache_stats.hit_rate)
"""

from repro.core import (
    EvictionPolicy,
    PiggybackConfig,
    PiggybackMode,
    PinningPolicy,
    RemoteAddressCache,
)
from repro.network import (
    GM_MARENOSTRUM,
    LAPI_POWER5,
    MACHINES,
    MachineParams,
    TransportParams,
)
from repro.runtime import (
    Runtime,
    RuntimeConfig,
    RunResult,
    SharedArray,
    SVDHandle,
    UPCThread,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Runtime",
    "RuntimeConfig",
    "RunResult",
    "UPCThread",
    "SharedArray",
    "SVDHandle",
    "Simulator",
    "GM_MARENOSTRUM",
    "LAPI_POWER5",
    "MACHINES",
    "MachineParams",
    "TransportParams",
    "RemoteAddressCache",
    "EvictionPolicy",
    "PinningPolicy",
    "PiggybackConfig",
    "PiggybackMode",
    "__version__",
]
