"""Command-line entry point: regenerate figures, or fuzz the runtime.

Usage::

    python -m repro fig6_get [--quick]
    python -m repro fig6_put
    python -m repro fig7
    python -m repro fig8a | fig8b
    python -m repro fig9a | fig9b
    python -m repro miss_overhead
    python -m repro all [--quick]

    python -m repro fuzz --seed 0 --ops 200 --quick
    python -m repro fuzz --seed 0..9 --ops 500 --matrix full
    python -m repro fuzz --seed 0..24 --faults --fault-profile chaos

    python -m repro trace pointer --quick --format chrome
    python -m repro trace field --breakdown
    python -m repro trace pointer --fault-profile drop --fault-seed 3

    python -m repro run pointer --quick
    python -m repro run field --fault-profile chaos --fault-seed 7

    python -m repro campaign --spec smoke
    python -m repro campaign --spec service --workers 4

``--quick`` truncates size/scale sweeps for a fast look; the full
sweeps match EXPERIMENTS.md.  ``fuzz`` runs the model-based
differential harness (see :mod:`repro.testing`): each seed generates a
race-free random UPC program, replays it across the config matrix, and
compares every result with a flat-memory oracle, shrinking any failure
to a pytest reproducer; ``--faults`` additionally replays each program
under a deterministic fault plan — the reliability layer must still
converge to the oracle.  ``trace`` runs a stressmark with the protocol
flight recorder on and exports Chrome-trace / JSONL / CSV artifacts
plus the latency-breakdown table (see :mod:`repro.obs` and
docs/OBSERVABILITY.md).  ``run`` executes one DIS stressmark plainly
and prints its summary — the quickest way to watch a fault profile
(``--fault-profile``/``--fault-seed``, see docs/FAULTS.md) play out.
``campaign`` runs a declared config matrix across worker processes
with per-cell checkpoints: a killed campaign resumes without
re-executing completed cells, merges into ``BENCH_*`` trajectory
files and renders every figure in one command (docs/CAMPAIGNS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    GM_SCALES,
    LAPI_SCALES,
    fig6_get,
    fig6_put,
    fig7,
    fig8,
    fig9,
    miss_overhead,
)

_QUICK_SIZES = [1, 64, 1024, 16384, 262144, 4194304]
_QUICK_SCALES = [(8, 2), (32, 8), (128, 32)]
_QUICK_LAPI = [(4, 2), (32, 2), (128, 8)]


def _runners(quick: bool):
    reps = 5 if quick else 10
    sizes = _QUICK_SIZES if quick else None
    gm_scales = _QUICK_SCALES if quick else [s for s in GM_SCALES
                                             if s[0] <= 1024]
    lapi_scales = _QUICK_LAPI if quick else LAPI_SCALES
    fig8_scales = _QUICK_SCALES if quick else GM_SCALES
    seeds = (1, 2) if quick else (1, 2, 3)
    from repro.experiments.capacity import capacity_speedup
    from repro.experiments.scalability import (
        address_space_ablation,
        allocation_latency,
        directory_memory,
    )

    return {
        "fig6_get": lambda: fig6_get(sizes=sizes, reps=reps),
        "fig6_put": lambda: fig6_put(sizes=sizes, reps=reps),
        "fig7": lambda: fig7(reps=reps),
        "fig8a": lambda: fig8("pointer", scales=fig8_scales, seed=1),
        "fig8b": lambda: fig8("neighborhood", scales=fig8_scales, seed=1),
        "fig9a": lambda: fig9("gm", scales=gm_scales, seeds=seeds),
        "fig9b": lambda: fig9("lapi", scales=lapi_scales, seeds=seeds),
        "miss_overhead": lambda: miss_overhead(seeds=(1, 2, 3)),
        "capacity": lambda: capacity_speedup(
            threads=32 if quick else 64, nodes=8 if quick else 16),
        "directory_memory": lambda: directory_memory(),
        "address_ablation": lambda: address_space_ablation(),
        "alloc_latency": lambda: allocation_latency(),
    }


def _parse_seeds(text: str):
    """``"7"`` -> [7]; ``"0..9"`` -> [0, 1, ..., 9] (inclusive)."""
    if ".." in text:
        lo, hi = text.split("..", 1)
        lo, hi = int(lo), int(hi)
        if hi < lo:
            raise argparse.ArgumentTypeError(
                f"empty seed range {text!r}")
        return list(range(lo, hi + 1))
    return [int(text)]


def run_main(argv) -> int:
    """``python -m repro run`` — execute one DIS stressmark and print
    its summary (optionally under a fault profile)."""
    from repro.network.params import MACHINES
    from repro.obs.cli import WORKLOADS, _workload
    from repro.obs.events import EventLog

    ap = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run a DIS stressmark and print its summary; "
                    "--fault-profile injects deterministic faults "
                    "(see docs/FAULTS.md).")
    ap.add_argument("workload", choices=WORKLOADS,
                    help="which stressmark to run")
    ap.add_argument("--quick", action="store_true",
                    help="small problem sizes (smoke mode)")
    ap.add_argument("--nthreads", type=int, default=8,
                    help="UPC threads (default 8)")
    ap.add_argument("--machine", default="gm", choices=sorted(MACHINES),
                    help="machine model (default gm)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--fault-profile", default=None, metavar="SPEC",
                    help="fault plan: a profile name (drop, dup, delay, "
                         "stall, pin, chaos), inline JSON, or a JSON "
                         "file path")
    ap.add_argument("--fault-seed", type=int, default=None,
                    help="override the fault plan's RNG seed")
    ap.add_argument("--link-trace", default=None, metavar="SPEC",
                    help="time-evolving link degradation: a shape name "
                         "(flap, burst, degrade, gray), inline JSON, "
                         "or a JSON file path (see docs/FAULTS.md)")
    ap.add_argument("--trace-seed", type=int, default=None,
                    help="override the link trace's seed")
    ap.add_argument("--repair-policy", default=None,
                    choices=("do_nothing", "retransmit_tuning",
                             "disable_and_repair", "path_failover"),
                    help="repair policy acting on per-link health "
                         "(needs --link-trace or --fault-profile)")
    ap.add_argument("--shards", type=int, default=None, metavar="N",
                    help="run on the sharded PDES core with N shards "
                         "(field only; one worker process per shard, "
                         "see docs/PERFORMANCE.md)")
    ap.add_argument("--shard-backend", default=None,
                    choices=("mp", "inproc"),
                    help="sharded-core backend (default: mp for N>1)")
    args = ap.parse_args(argv)

    if args.shards is not None:
        if args.workload != "field":
            ap.error("--shards currently applies to the field "
                     "stressmark only (the other stressmarks exercise "
                     "full-runtime protocol paths that span shard "
                     "boundaries; they run on the pooled core)")
        if args.fault_profile is not None or args.link_trace is not None:
            ap.error("--shards excludes --fault-profile/--link-trace "
                     "(the fault plane lives in the pooled runtime's "
                     "transport; use 'python -m repro kvtraffic "
                     "--link-trace' for the sharded core)")
        return _run_sharded_field(args)

    fault_plan = None
    if args.fault_profile is not None:
        from repro.faults import resolve_profile
        try:
            fault_plan = resolve_profile(args.fault_profile,
                                         fault_seed=args.fault_seed)
        except ValueError as exc:
            ap.error(str(exc))
    link_trace = None
    if args.link_trace is not None:
        from repro.faults import resolve_trace
        from repro.obs.cli import _cli_nnodes
        try:
            link_trace = resolve_trace(
                args.link_trace,
                _cli_nnodes(args.machine, args.nthreads),
                trace_seed=args.trace_seed)
        except ValueError as exc:
            ap.error(str(exc))
    if args.repair_policy and fault_plan is None and link_trace is None:
        ap.error("--repair-policy needs --link-trace or "
                 "--fault-profile to observe")

    runner = _workload(args.workload, args.quick, args.machine,
                       args.nthreads, args.seed,
                       EventLog(enabled=False), None,
                       fault_plan=fault_plan, link_trace=link_trace,
                       repair_policy=args.repair_policy)
    t0 = time.time()
    result = runner()
    run = result.run
    m = run.metrics
    print(f"run {args.workload}: {run.elapsed_us:.1f} virtual us, "
          f"{run.sim_events} sim events, remote ops "
          f"{m.remote_ops} (rdma share {m.rdma_fraction:.0%}), "
          f"cache hit rate {run.cache_stats.hit_rate:.3f} "
          f"({time.time() - t0:.1f}s)")
    if fault_plan is not None or link_trace is not None:
        print(f"  faults: {m.faults_injected} injected, "
              f"{m.timeouts} timeouts, {m.retries} retries, "
              f"{m.rdma_timeouts} rdma->am fallbacks, "
              f"{m.pin_degrades} degraded handles")
        noisy = m.noisy_links(3)
        if noisy:
            links = ", ".join(
                f"{r['src']}->{r['dst']} ({r['timeouts']}t/"
                f"{r['retries']}r)" for r in noisy)
            print(f"  noisy links: {links}")
    if args.repair_policy:
        print(f"  policy {args.repair_policy}: {m.policy_actions} "
              f"action(s), {m.kv_failover_ops} kv failover op(s)")
    return 0


def _run_sharded_field(args) -> int:
    """``python -m repro run field --shards N`` — the Field mix on the
    sharded PDES core, with the per-shard metric rollups."""
    from repro.runtime.metrics import RuntimeMetrics
    from repro.workloads.sharded import field_nnodes, run_field_sharded

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    nnodes = field_nnodes(args.nthreads)
    if args.shards > nnodes:
        raise SystemExit(
            f"--shards {args.shards} exceeds the {nnodes} node(s) of a "
            f"{args.nthreads}-thread field run")
    mode = args.shard_backend or ("inproc" if args.shards == 1 else "mp")
    ntokens, probes = (3, 2) if args.quick else (8, 4)
    t0 = time.time()
    res = run_field_sharded(args.nthreads, args.shards,
                            ntokens=ntokens, probes=probes,
                            machine=args.machine, mode=mode)
    run = res["run"]
    metrics = RuntimeMetrics()
    metrics.attach_shards(run.metrics)
    s = metrics.shard_summary()
    print(f"run field --shards {args.shards} ({mode}): "
          f"{res['now']:.1f} virtual us, {run.events} sim events, "
          f"{run.events_per_sec:,.0f} ev/s aggregate "
          f"({time.time() - t0:.1f}s)")
    print(f"  sync: {s['sync_rounds']} rounds, "
          f"{s['sync_stall_grains']} stall grains, "
          f"{s['channel_msgs']} cross-shard msgs, "
          f"{s['channel_bytes']:,} channel bytes")
    for m in run.metrics:
        d = m.as_dict()
        print(f"  shard {d['shard']}: nodes {d['nodes'][0]}.."
              f"{d['nodes'][1] - 1}, {d['events']} events, "
              f"backlog {d['max_backlog']}, "
              f"clock {d['final_clock_us']:.1f} us, "
              f"busy {d['busy_s']:.3f}s")
    return 0


def fuzz_main(argv) -> int:
    from repro.testing import MATRICES, config_by_name, fuzz

    ap = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Differential fuzz: random race-free UPC programs "
                    "replayed across the config matrix against a "
                    "flat-memory oracle.")
    ap.add_argument("--seed", type=_parse_seeds, default=[0],
                    help="seed N or inclusive range A..B (default 0)")
    ap.add_argument("--ops", type=int, default=200,
                    help="approximate ops per generated program")
    ap.add_argument("--nthreads", type=int, default=4,
                    help="UPC threads per program (default 4)")
    ap.add_argument("--matrix", default=None,
                    help="'quick', 'full', or comma-separated config "
                         "point names (default: quick)")
    ap.add_argument("--quick", action="store_true",
                    help="force the quick matrix (smoke mode)")
    ap.add_argument("--corpus", default=None, metavar="DIR",
                    help="serialize shrunk failures as JSON here")
    ap.add_argument("--no-shrink", action="store_true",
                    help="report failures without minimizing them")
    ap.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="dump a flight-recorder JSONL log of each "
                         "shrunk failing program here (CI artifact)")
    ap.add_argument("--faults", action="store_true",
                    help="also replay every program under a "
                         "deterministic fault plan; the reliability "
                         "layer must still match the oracle")
    ap.add_argument("--fault-profile", default="chaos", metavar="SPEC",
                    help="fault plan for --faults: a profile name, "
                         "inline JSON, or a JSON file path "
                         "(default chaos)")
    ap.add_argument("--fault-seed", type=int, default=None,
                    help="base fault RNG seed (each program seed "
                         "derives its own)")
    ap.add_argument("--kv", action="store_true",
                    help="include KV-store ops (kv_create/put/get/"
                         "del/multi-get over both access paths) in "
                         "the generated programs")
    args = ap.parse_args(argv)

    if args.quick or args.matrix is None:
        configs = list(MATRICES["quick"])
    elif args.matrix in MATRICES:
        configs = list(MATRICES[args.matrix])
    else:
        try:
            configs = [config_by_name(n.strip())
                       for n in args.matrix.split(",") if n.strip()]
        except KeyError as exc:
            ap.error(str(exc))

    fault_plan = None
    if args.faults:
        from repro.faults import resolve_profile
        try:
            fault_plan = resolve_profile(args.fault_profile,
                                         fault_seed=args.fault_seed)
        except ValueError as exc:
            ap.error(str(exc))

    t0 = time.time()
    report = fuzz(args.seed, n_ops=args.ops, nthreads=args.nthreads,
                  configs=configs, shrink_failures=not args.no_shrink,
                  corpus_dir=args.corpus, trace_dir=args.trace_dir,
                  fault_plan=fault_plan, kv=args.kv)
    status = "OK" if report.ok else f"{len(report.failures)} FAILURE(S)"
    mode = " [faults]" if args.faults else ""
    if args.kv:
        mode += " [kv]"
    print(f"fuzz{mode}: {report.programs_run} program(s), "
          f"{report.ops_run} ops, {len(report.configs)} configs — "
          f"{status} ({time.time() - t0:.1f}s)")
    return 0 if report.ok else 1


def kvtraffic_main(argv) -> int:
    """``python -m repro kvtraffic`` — open-loop Zipfian KV traffic on
    the sharded core; prints SLO quantiles and the cache hit rate."""
    from repro.workloads.kv_traffic import TrafficParams, run_kv_traffic

    ap = argparse.ArgumentParser(
        prog="python -m repro kvtraffic",
        description="Open-loop Zipfian/Poisson KV service traffic on "
                    "the sharded event core (see docs/SERVICE.md).")
    ap.add_argument("--requests", type=int, default=100_000,
                    help="total requests across all clients")
    ap.add_argument("--skew", type=float, default=0.9,
                    help="Zipf exponent s (default 0.9)")
    ap.add_argument("--shards", type=int, default=1)
    ap.add_argument("--shard-backend", choices=("inproc", "mp"),
                    default="inproc",
                    help="sharded-core backend (default inproc)")
    ap.add_argument("--nclients", type=int, default=32)
    ap.add_argument("--nnodes", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--machine", default="gm")
    ap.add_argument("--slo-target-us", type=float, default=0.0,
                    metavar="US",
                    help="arm the streaming SLO monitor with this "
                         "latency target (µs); prints windowed "
                         "burn-rate / anomaly summary")
    ap.add_argument("--slo-window-us", type=float, default=5000.0,
                    metavar="US",
                    help="SLO rolling-window width in virtual µs "
                         "(default 5000)")
    ap.add_argument("--link-trace", default=None, metavar="SPEC",
                    help="time-evolving link degradation: a shape name "
                         "(flap, burst, degrade, gray), inline JSON, "
                         "or a JSON file path (see docs/FAULTS.md)")
    ap.add_argument("--trace-seed", type=int, default=None,
                    help="override the link trace's seed")
    ap.add_argument("--repair-policy", default=None,
                    choices=("do_nothing", "retransmit_tuning",
                             "disable_and_repair", "path_failover"),
                    help="repair policy acting on per-link health "
                         "(needs --link-trace)")
    ap.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="arm the flight recorder and write run "
                         "artifacts (events.jsonl, trace.json, "
                         "slo.json, shard_summary.json) here — "
                         "feed the directory to 'python -m repro "
                         "report'")
    args = ap.parse_args(argv)

    link_trace = None
    if args.link_trace is not None:
        from repro.faults import resolve_trace
        try:
            link_trace = resolve_trace(args.link_trace, args.nnodes,
                                       trace_seed=args.trace_seed)
        except ValueError as exc:
            ap.error(str(exc))
    if args.repair_policy and link_trace is None:
        ap.error("--repair-policy needs --link-trace to observe")

    p = TrafficParams(nnodes=args.nnodes, nclients=args.nclients,
                      requests=args.requests, zipf_s=args.skew,
                      seed=args.seed, machine=args.machine,
                      slo_target_us=args.slo_target_us,
                      slo_window_us=args.slo_window_us,
                      link_trace=(link_trace.to_json()
                                  if link_trace is not None else ""),
                      repair_policy=args.repair_policy or "")
    t0 = time.time()
    res = run_kv_traffic(p, args.shards, mode=args.shard_backend,
                         trace=args.trace_dir is not None)
    q = res.quantiles()
    print(f"kvtraffic s={args.skew} shards={args.shards}: "
          f"{res.requests} requests ({res.gets} get / {res.puts} put), "
          f"hit rate {res.hit_rate:.3f}, {res.conns} connections")
    print(f"  FCT p50={q['p50_us']:.1f}us p99={q['p99_us']:.1f}us  "
          f"one-sided p50={q['hit_p50_us']:.1f}us  "
          f"AM p50={q['miss_p50_us']:.1f}us  "
          f"({res.events} sim events, {time.time() - t0:.1f}s)")
    slo = res.extra.get("slo")
    if slo is not None:
        from repro.obs.slo import render_slo
        s = slo["summary"]
        print(f"  SLO: burn rate {s['burn_rate']:.2f} over "
              f"{s['windows']} window(s), "
              f"{s['violations']} violation(s) "
              f"({s['violation_frac']:.2%}), "
              f"{len(slo['anomalies'])} anomaly flag(s)")
        if args.trace_dir is None:
            print(render_slo(slo["windows"], s, slo["anomalies"]))
    links = res.extra.get("links")
    if links:
        noisy = sorted(links.items(),
                       key=lambda kv: (-kv[1]["timeouts"],
                                       -kv[1]["retries"], kv[0]))[:3]
        row = ", ".join(f"{src}->{dst} ({tot['timeouts']}t/"
                        f"{tot['retries']}r)"
                        for (src, dst), tot in noisy)
        failures = sum(o["counts"]["failures"]
                       for o in res.extra["run"].outputs)
        print(f"  lossy fabric: {failures} exhausted request(s); "
              f"noisy links: {row}")
    policy = res.extra.get("policy")
    if policy is not None:
        print(f"  policy {policy['name']}: "
              f"{len(policy['decisions'])} decision(s), "
              f"digest {policy['digest']:#018x}")
    if args.trace_dir is not None:
        _write_kvtraffic_artifacts(args.trace_dir, res, slo)
    return 0


def _write_kvtraffic_artifacts(out_dir, res, slo) -> None:
    """Write the kvtraffic run directory ``python -m repro report``
    consumes: merged events (jsonl + validated Chrome trace),
    slo.json, shard_summary.json."""
    import os

    from repro.campaign.artifacts import atomic_write_json
    from repro.obs.export import dump_jsonl, export_chrome_sharded
    from repro.obs.shardlog import merge_shard_events
    from repro.runtime.metrics import RuntimeMetrics

    os.makedirs(out_dir, exist_ok=True)
    run = res.extra["run"]
    log = merge_shard_events(run.shard_events, run.trace_dropped)
    path = os.path.join(out_dir, "kvtraffic.events.jsonl")
    n = dump_jsonl(log, path)
    print(f"  wrote {path} ({n} lines)")
    path = os.path.join(out_dir, "kvtraffic.trace.json")
    doc = export_chrome_sharded(log, path)
    print(f"  wrote {path} ({len(doc['traceEvents'])} chrome events, "
          "validated)")
    if slo is not None:
        path = atomic_write_json(os.path.join(out_dir, "slo.json"),
                                 slo, indent=1, sort_keys=True)
        print(f"  wrote {path}")
    metrics = RuntimeMetrics()
    metrics.attach_shards(run.metrics)
    path = atomic_write_json(
        os.path.join(out_dir, "shard_summary.json"),
        metrics.shard_summary(), indent=1, sort_keys=True)
    print(f"  wrote {path}")
    links = res.extra.get("links")
    if links:
        doc = {
            "links": {f"{src}->{dst}": tot
                      for (src, dst), tot in sorted(links.items())},
            "failures": sum(o["counts"]["failures"]
                            for o in run.outputs),
        }
        policy = res.extra.get("policy")
        if policy is not None:
            doc["policy"] = {"name": policy["name"],
                             "digest": policy["digest"],
                             "decisions": policy["decisions"]}
        path = atomic_write_json(os.path.join(out_dir, "links.json"),
                                 doc, indent=1, sort_keys=True)
        print(f"  wrote {path}")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "kvtraffic":
        return kvtraffic_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "run":
        return run_main(argv[1:])
    if argv and argv[0] == "report":
        from repro.obs.report import report_main
        return report_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import campaign_main
        return campaign_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'Scalable RDMA performance "
                    "in PGAS languages' (IPDPS 2009) on the simulator.")
    ap.add_argument("figure",
                    choices=sorted(_runners(True)) + ["all", "fuzz",
                                                      "kvtraffic",
                                                      "trace", "run",
                                                      "report",
                                                      "campaign"],
                    help="which figure to regenerate ('fuzz' runs the "
                         "differential harness; 'kvtraffic' the KV "
                         "service traffic harness; 'trace' the flight "
                         "recorder; 'run' one stressmark; 'report' "
                         "renders a unified report from a traced run "
                         "directory; 'campaign' a checkpointed, "
                         "resumable sweep matrix)")
    ap.add_argument("--quick", action="store_true",
                    help="truncate sweeps for a fast look")
    args = ap.parse_args(argv)

    runners = _runners(args.quick)
    names = sorted(runners) if args.figure == "all" else [args.figure]
    for name in names:
        t0 = time.time()
        fig = runners[name]()
        print(fig.render())
        print(f"({time.time() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
