"""Command-line entry point: regenerate any figure from the shell.

Usage::

    python -m repro fig6_get [--quick]
    python -m repro fig6_put
    python -m repro fig7
    python -m repro fig8a | fig8b
    python -m repro fig9a | fig9b
    python -m repro miss_overhead
    python -m repro all [--quick]

``--quick`` truncates size/scale sweeps for a fast look; the full
sweeps match EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    GM_SCALES,
    LAPI_SCALES,
    fig6_get,
    fig6_put,
    fig7,
    fig8,
    fig9,
    miss_overhead,
)

_QUICK_SIZES = [1, 64, 1024, 16384, 262144, 4194304]
_QUICK_SCALES = [(8, 2), (32, 8), (128, 32)]
_QUICK_LAPI = [(4, 2), (32, 2), (128, 8)]


def _runners(quick: bool):
    reps = 5 if quick else 10
    sizes = _QUICK_SIZES if quick else None
    gm_scales = _QUICK_SCALES if quick else [s for s in GM_SCALES
                                             if s[0] <= 1024]
    lapi_scales = _QUICK_LAPI if quick else LAPI_SCALES
    fig8_scales = _QUICK_SCALES if quick else GM_SCALES
    seeds = (1, 2) if quick else (1, 2, 3)
    from repro.experiments.capacity import capacity_speedup
    from repro.experiments.scalability import (
        address_space_ablation,
        allocation_latency,
        directory_memory,
    )

    return {
        "fig6_get": lambda: fig6_get(sizes=sizes, reps=reps),
        "fig6_put": lambda: fig6_put(sizes=sizes, reps=reps),
        "fig7": lambda: fig7(reps=reps),
        "fig8a": lambda: fig8("pointer", scales=fig8_scales, seed=1),
        "fig8b": lambda: fig8("neighborhood", scales=fig8_scales, seed=1),
        "fig9a": lambda: fig9("gm", scales=gm_scales, seeds=seeds),
        "fig9b": lambda: fig9("lapi", scales=lapi_scales, seeds=seeds),
        "miss_overhead": lambda: miss_overhead(seeds=(1, 2, 3)),
        "capacity": lambda: capacity_speedup(
            threads=32 if quick else 64, nodes=8 if quick else 16),
        "directory_memory": lambda: directory_memory(),
        "address_ablation": lambda: address_space_ablation(),
        "alloc_latency": lambda: allocation_latency(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'Scalable RDMA performance "
                    "in PGAS languages' (IPDPS 2009) on the simulator.")
    ap.add_argument("figure",
                    choices=sorted(_runners(True)) + ["all"],
                    help="which figure to regenerate")
    ap.add_argument("--quick", action="store_true",
                    help="truncate sweeps for a fast look")
    args = ap.parse_args(argv)

    runners = _runners(args.quick)
    names = sorted(runners) if args.figure == "all" else [args.figure]
    for name in names:
        t0 = time.time()
        fig = runners[name]()
        print(fig.render())
        print(f"({time.time() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
