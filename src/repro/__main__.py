"""Command-line entry point: regenerate figures, or fuzz the runtime.

Usage::

    python -m repro fig6_get [--quick]
    python -m repro fig6_put
    python -m repro fig7
    python -m repro fig8a | fig8b
    python -m repro fig9a | fig9b
    python -m repro miss_overhead
    python -m repro all [--quick]

    python -m repro fuzz --seed 0 --ops 200 --quick
    python -m repro fuzz --seed 0..9 --ops 500 --matrix full

    python -m repro trace pointer --quick --format chrome
    python -m repro trace field --breakdown

``--quick`` truncates size/scale sweeps for a fast look; the full
sweeps match EXPERIMENTS.md.  ``fuzz`` runs the model-based
differential harness (see :mod:`repro.testing`): each seed generates a
race-free random UPC program, replays it across the config matrix, and
compares every result with a flat-memory oracle, shrinking any failure
to a pytest reproducer.  ``trace`` runs a stressmark with the protocol
flight recorder on and exports Chrome-trace / JSONL / CSV artifacts
plus the latency-breakdown table (see :mod:`repro.obs` and
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    GM_SCALES,
    LAPI_SCALES,
    fig6_get,
    fig6_put,
    fig7,
    fig8,
    fig9,
    miss_overhead,
)

_QUICK_SIZES = [1, 64, 1024, 16384, 262144, 4194304]
_QUICK_SCALES = [(8, 2), (32, 8), (128, 32)]
_QUICK_LAPI = [(4, 2), (32, 2), (128, 8)]


def _runners(quick: bool):
    reps = 5 if quick else 10
    sizes = _QUICK_SIZES if quick else None
    gm_scales = _QUICK_SCALES if quick else [s for s in GM_SCALES
                                             if s[0] <= 1024]
    lapi_scales = _QUICK_LAPI if quick else LAPI_SCALES
    fig8_scales = _QUICK_SCALES if quick else GM_SCALES
    seeds = (1, 2) if quick else (1, 2, 3)
    from repro.experiments.capacity import capacity_speedup
    from repro.experiments.scalability import (
        address_space_ablation,
        allocation_latency,
        directory_memory,
    )

    return {
        "fig6_get": lambda: fig6_get(sizes=sizes, reps=reps),
        "fig6_put": lambda: fig6_put(sizes=sizes, reps=reps),
        "fig7": lambda: fig7(reps=reps),
        "fig8a": lambda: fig8("pointer", scales=fig8_scales, seed=1),
        "fig8b": lambda: fig8("neighborhood", scales=fig8_scales, seed=1),
        "fig9a": lambda: fig9("gm", scales=gm_scales, seeds=seeds),
        "fig9b": lambda: fig9("lapi", scales=lapi_scales, seeds=seeds),
        "miss_overhead": lambda: miss_overhead(seeds=(1, 2, 3)),
        "capacity": lambda: capacity_speedup(
            threads=32 if quick else 64, nodes=8 if quick else 16),
        "directory_memory": lambda: directory_memory(),
        "address_ablation": lambda: address_space_ablation(),
        "alloc_latency": lambda: allocation_latency(),
    }


def _parse_seeds(text: str):
    """``"7"`` -> [7]; ``"0..9"`` -> [0, 1, ..., 9] (inclusive)."""
    if ".." in text:
        lo, hi = text.split("..", 1)
        lo, hi = int(lo), int(hi)
        if hi < lo:
            raise argparse.ArgumentTypeError(
                f"empty seed range {text!r}")
        return list(range(lo, hi + 1))
    return [int(text)]


def fuzz_main(argv) -> int:
    from repro.testing import MATRICES, config_by_name, fuzz

    ap = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Differential fuzz: random race-free UPC programs "
                    "replayed across the config matrix against a "
                    "flat-memory oracle.")
    ap.add_argument("--seed", type=_parse_seeds, default=[0],
                    help="seed N or inclusive range A..B (default 0)")
    ap.add_argument("--ops", type=int, default=200,
                    help="approximate ops per generated program")
    ap.add_argument("--nthreads", type=int, default=4,
                    help="UPC threads per program (default 4)")
    ap.add_argument("--matrix", default=None,
                    help="'quick', 'full', or comma-separated config "
                         "point names (default: quick)")
    ap.add_argument("--quick", action="store_true",
                    help="force the quick matrix (smoke mode)")
    ap.add_argument("--corpus", default=None, metavar="DIR",
                    help="serialize shrunk failures as JSON here")
    ap.add_argument("--no-shrink", action="store_true",
                    help="report failures without minimizing them")
    ap.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="dump a flight-recorder JSONL log of each "
                         "shrunk failing program here (CI artifact)")
    args = ap.parse_args(argv)

    if args.quick or args.matrix is None:
        configs = list(MATRICES["quick"])
    elif args.matrix in MATRICES:
        configs = list(MATRICES[args.matrix])
    else:
        try:
            configs = [config_by_name(n.strip())
                       for n in args.matrix.split(",") if n.strip()]
        except KeyError as exc:
            ap.error(str(exc))

    t0 = time.time()
    report = fuzz(args.seed, n_ops=args.ops, nthreads=args.nthreads,
                  configs=configs, shrink_failures=not args.no_shrink,
                  corpus_dir=args.corpus, trace_dir=args.trace_dir)
    status = "OK" if report.ok else f"{len(report.failures)} FAILURE(S)"
    print(f"fuzz: {report.programs_run} program(s), "
          f"{report.ops_run} ops, {len(report.configs)} configs — "
          f"{status} ({time.time() - t0:.1f}s)")
    return 0 if report.ok else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import trace_main
        return trace_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'Scalable RDMA performance "
                    "in PGAS languages' (IPDPS 2009) on the simulator.")
    ap.add_argument("figure",
                    choices=sorted(_runners(True)) + ["all", "fuzz",
                                                      "trace"],
                    help="which figure to regenerate ('fuzz' runs the "
                         "differential harness; 'trace' the flight "
                         "recorder)")
    ap.add_argument("--quick", action="store_true",
                    help="truncate sweeps for a fast look")
    args = ap.parse_args(argv)

    runners = _runners(args.quick)
    names = sorted(runners) if args.figure == "all" else [args.figure]
    for name in names:
        t0 = time.time()
        fig = runners[name]()
        print(fig.render())
        print(f"({time.time() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
