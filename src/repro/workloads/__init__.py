"""Workloads: GET/PUT microbenchmarks (section 4.3) and the UPC port
of the DIS Stressmark subset (section 4.4) — Pointer, Update,
Neighborhood and Field.

Every workload is a UPC kernel written against the public
:class:`~repro.runtime.thread.UPCThread` API and parameterized by a
small dataclass, so the experiment harness can sweep scales and the
tests can run miniature instances.
"""

from repro.workloads.micro import (
    MicroParams,
    get_roundtrip_us,
    put_overhead_us,
)
from repro.workloads.dis.pointer import PointerParams, run_pointer
from repro.workloads.dis.update import UpdateParams, run_update
from repro.workloads.dis.neighborhood import (
    NeighborhoodParams,
    run_neighborhood,
)
from repro.workloads.dis.field import FieldParams, run_field
from repro.workloads.dis.corner_turn import (
    CornerTurnParams,
    run_corner_turn,
)
from repro.workloads.dis.transitive import (
    TransitiveParams,
    run_transitive,
)
from repro.workloads.kv_traffic import (
    PoissonArrivals,
    TrafficParams,
    TrafficResult,
    ZipfianKeys,
    run_kv_traffic,
)

__all__ = [
    "MicroParams",
    "get_roundtrip_us",
    "put_overhead_us",
    "PointerParams",
    "run_pointer",
    "UpdateParams",
    "run_update",
    "NeighborhoodParams",
    "run_neighborhood",
    "FieldParams",
    "run_field",
    "CornerTurnParams",
    "run_corner_turn",
    "TransitiveParams",
    "run_transitive",
    "PoissonArrivals",
    "TrafficParams",
    "TrafficResult",
    "ZipfianKeys",
    "run_kv_traffic",
]
