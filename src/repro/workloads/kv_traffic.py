"""Open-loop KV service traffic on the sharded event core.

The service-level companion to the corpus skeleton: where the fuzz
suite proves the KV *semantics* (differential vs. a flat-dict oracle),
this module measures the KV *service* — flow-completion time (FCT) of
millions of Zipf-keyed requests against bucket servers, under the two
access paths the runtime offers:

* a per-client remote-address cache **hit** models the one-sided path
  (the NIC serves the bucket; no software on the server's critical
  path), and
* a **miss** models the AM/RPC path (dispatch + SVD lookup + handler
  CPU, plus the bucket scan), after which the client installs the
  bucket address in its LRU cache.

Clients are **open loop**: each one draws Poisson arrivals and Zipfian
keys up front and fires requests at their scheduled instants without
ever waiting for replies, so service-time inflation shows up as FCT
growth instead of silently throttling offered load.  Connections are
persistent — the first request a client sends toward a server node
pays a one-time setup round trip, folded into that request's latency.

Layout invariance is engineered the same way as everywhere else in
the sharded core: every random stream is keyed by *entity* (client id)
through :class:`~repro.util.rng.StreamFamily`, all client state
(LRU cache, connection set) is mutated at issue time by the client's
own process, reply handlers are instantaneous, and FCTs land in
fixed-edge log-binned histograms whose cross-shard merge is an
elementwise sum — so ``shards=1/2/4`` produce bit-identical counts,
digests and quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.faults.health import HealthTracker
from repro.faults.policy import (PolicyConfig, PolicyEngine,
                                 decisions_digest)
from repro.faults.trace import LinkTrace, fate_u01
from repro.network.params import MACHINES, MachineParams
from repro.network.partition import lookahead_matrix, partition_nodes
from repro.network.topology import make_topology
from repro.obs.events import OP_BEGIN, OP_END, POLICY_ACTION
from repro.obs.slo import SLOMonitor, detect_anomalies, slo_summary
from repro.sim.shard import ShardContext, ShardedSimulator
from repro.util.rng import StreamFamily
from repro.workloads.sharded import _commute_hash, _tq

_MASK64 = (1 << 64) - 1

#: Fixed histogram geometry: 256 log-spaced bins over [0.1 µs, 1 s].
#: Fixed edges are what make the merge an elementwise sum.
HIST_BINS = 256
_HIST_LO_US = 0.1
_HIST_HI_US = 1e6
_LOG_LO = math.log(_HIST_LO_US)
_LOG_SPAN = math.log(_HIST_HI_US) - _LOG_LO

_GET_REQ_BYTES = 64
_PUT_REQ_BYTES = 72
_GET_REP_BYTES = 40
_PUT_REP_BYTES = 32
_CONN_BYTES = 64
#: Server-side cost of accepting a persistent connection (beyond the
#: handshake round trip itself).
_CONN_SETUP_US = 5.0
#: Bucket scan charged by the AM handler, per slot.
_KV_SCAN_US = 0.02
#: Extra handler cost of a mutating request (lock + write-back).
_PUT_EXTRA_US = 0.3

#: Retransmit model under a link trace (client-side, planned whole at
#: issue time so the fate chain is a pure function of identity).
_TRACE_TIMEOUT_US = 30.0
_TRACE_BACKOFF_US = 8.0
_TRACE_BACKOFF_FACTOR = 2.0
_TRACE_BACKOFF_MAX_US = 64.0
_TRACE_MAX_RETRIES = 24
#: A retry on the one-sided path pays RDMA invalidation + AM address
#: re-validation on top of the retransmit (the Storm asymmetry that
#: makes ``path_failover`` worthwhile under sustained loss).
_ONESIDED_RETRY_PENALTY_US = 12.0
#: Digest salt folding the per-request fate chain (retries, failures)
#: into the per-client digest.
_FATE_SALT = 0x7ACE


def hist_edges() -> np.ndarray:
    """The (BINS + 1) bin edges in µs, shared by every shard."""
    return np.exp(_LOG_LO + _LOG_SPAN * np.arange(HIST_BINS + 1)
                  / HIST_BINS)


def _bin_of(fct_us: float) -> int:
    if fct_us <= _HIST_LO_US:
        return 0
    b = int((math.log(fct_us) - _LOG_LO) / _LOG_SPAN * HIST_BINS)
    return min(b, HIST_BINS - 1)


def hist_quantile(hist: np.ndarray, q: float) -> float:
    """Quantile from a merged histogram: the upper edge of the bin
    where the cumulative count crosses ``q`` — a pure function of the
    summed counts, hence layout-invariant."""
    total = int(hist.sum())
    if total == 0:
        return 0.0
    cum = np.cumsum(hist)
    idx = int(np.searchsorted(cum, q * total, side="left"))
    return float(hist_edges()[min(idx + 1, HIST_BINS)])


def hist_cdf(hist: np.ndarray) -> list:
    """FCT CDF points ``[latency_us, cum_frac]`` at the upper edge of
    every occupied histogram bin — a pure function of the merged
    counts, hence layout-invariant.  Shared by the lossy-fabric bench
    and the campaign renderer (linkguardian-style per-policy CDFs)."""
    total = int(hist.sum())
    if total == 0:
        return []
    edges = hist_edges()
    cum = np.cumsum(hist)
    return [[round(float(edges[i + 1]), 3),
             round(float(cum[i]) / total, 6)]
            for i in range(HIST_BINS) if hist[i]]


class ZipfianKeys:
    """Zipf(s) key draws over ``[0, nkeys)`` by inverse-CDF lookup —
    key 0 is the hottest; rank order *is* key order, so rank-frequency
    checks need no sorting."""

    def __init__(self, nkeys: int, s: float) -> None:
        if nkeys < 1:
            raise ValueError("nkeys must be positive")
        self.nkeys = nkeys
        self.s = float(s)
        weights = np.arange(1, nkeys + 1, dtype=np.float64) ** -self.s
        self._cdf = np.cumsum(weights) / weights.sum()

    def draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` keys as int64 — a pure function of the generator
        state, so entity-keyed generators give layout-invariant
        streams."""
        return np.searchsorted(self._cdf, rng.random(n),
                               side="right").astype(np.int64)


class PoissonArrivals:
    """Open-loop Poisson arrival process: exponential inter-arrival
    gaps with the given mean (µs)."""

    def __init__(self, mean_gap_us: float) -> None:
        if mean_gap_us <= 0:
            raise ValueError("mean_gap_us must be positive")
        self.mean_gap_us = float(mean_gap_us)

    def gaps(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_gap_us, n)

    def schedule(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Absolute arrival instants (µs from client start)."""
        return np.cumsum(self.gaps(rng, n))


@dataclass
class TrafficParams:
    """One KV-traffic experiment."""

    nnodes: int = 8
    nclients: int = 32
    nkeys: int = 4096
    nbuckets: int = 512
    slots_per_bucket: int = 4
    requests: int = 100_000          # total across all clients
    mean_gap_us: float = 2.0         # per-client inter-arrival mean
    zipf_s: float = 0.9
    put_frac: float = 0.1
    cache_capacity: int = 16         # per-client bucket-address LRU
    seed: int = 0
    machine: str = "gm"
    #: SLO latency target in µs; 0 disables the streaming monitor.
    slo_target_us: float = 0.0
    #: SLO rolling-window width (µs of virtual time).
    slo_window_us: float = 5000.0
    #: Link-trace JSON (``LinkTrace.to_json()``); "" = healthy fabric,
    #: taking the exact pre-trace code path.
    link_trace: str = ""
    #: Repair policy name (:data:`repro.faults.POLICIES`); "" = none.
    #: Requires a link trace to observe.
    repair_policy: str = ""

    def per_client(self) -> int:
        return max(1, -(-self.requests // self.nclients))


@dataclass
class TrafficResult:
    """Merged, layout-invariant outcome of one traffic run."""

    requests: int
    hits: int
    misses: int
    conns: int
    puts: int
    gets: int
    hist: np.ndarray
    hist_hit: np.ndarray
    hist_miss: np.ndarray
    digests: dict
    now: float
    events: int
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def quantiles(self) -> dict:
        return {
            "p50_us": hist_quantile(self.hist, 0.50),
            "p99_us": hist_quantile(self.hist, 0.99),
            "hit_p50_us": hist_quantile(self.hist_hit, 0.50),
            "hit_p99_us": hist_quantile(self.hist_hit, 0.99),
            "miss_p50_us": hist_quantile(self.hist_miss, 0.50),
            "miss_p99_us": hist_quantile(self.hist_miss, 0.99),
        }


class _ClientLRU:
    """Bucket-address LRU; dict insertion order is the recency list."""

    __slots__ = ("cap", "_d")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self._d = {}

    def touch(self, bucket: int) -> bool:
        d = self._d
        if bucket in d:
            del d[bucket]
            d[bucket] = True
            return True
        if len(d) >= self.cap:
            del d[next(iter(d))]
        d[bucket] = True
        return False


class _TrafficCore:
    """Per-shard traffic state: the clients homed here, their caches
    and connection sets, and this shard's share of the histograms."""

    def __init__(self, ctx: ShardContext, p: TrafficParams,
                 part, lo: int, hi: int) -> None:
        self.ctx = ctx
        self.p = p
        self.sim = ctx.sim
        m = MACHINES[p.machine]
        self.t = m.transport
        self.topo = make_topology(m, p.nnodes)
        self.part = part
        fam = StreamFamily(p.seed, "kv-traffic")
        self.fam = fam
        self.zipf = ZipfianKeys(p.nkeys, p.zipf_s)
        self.arrivals = PoissonArrivals(p.mean_gap_us)
        self.hist = np.zeros(HIST_BINS, dtype=np.int64)
        self.hist_hit = np.zeros(HIST_BINS, dtype=np.int64)
        self.hist_miss = np.zeros(HIST_BINS, dtype=np.int64)
        self.counts = {"requests": 0, "hits": 0, "misses": 0,
                       "conns": 0, "puts": 0, "gets": 0,
                       "failures": 0}
        self.digests = {}
        #: Lossy-fabric plane: a time-evolving link trace plus an
        #: optional repair policy observing per-link health.  All three
        #: stay ``None`` on a healthy fabric so the pre-trace code path
        #: (and its bit-exact digests) is untouched.
        self.trace = (LinkTrace.from_json(p.link_trace)
                      if p.link_trace else None)
        if self.trace is not None and self.trace.empty:
            self.trace = None
        self.health = None
        self.policy = None
        if p.repair_policy and self.trace is None:
            raise ValueError(
                "repair_policy needs a link trace to observe — "
                "set link_trace too")
        if self.trace is not None:
            pcfg = PolicyConfig()
            self.health = HealthTracker(pcfg.window_us)
            if p.repair_policy:
                self.policy = PolicyEngine(
                    p.repair_policy, pcfg, self.health,
                    nnodes=p.nnodes, on_decision=self._on_decision)
        #: Streaming SLO monitor (pure bookkeeping — never schedules
        #: sim events, so enabling it leaves runs bit-identical).
        self.slo = (SLOMonitor(p.slo_target_us, p.slo_window_us)
                    if p.slo_target_us > 0 else None)
        #: Outstanding requests per client node (gauge fed to the SLO
        #: monitor; maintained only when it exists).  Keyed by *node*,
        #: not shard: a node's clients and their replies always live on
        #: one shard, so the gauge is layout-invariant.
        self.inflight = {}
        #: Flight recorder + pending (client, seq) -> op-id map for
        #: request spans; populated only when recording is on, and
        #: never rides in message payloads.
        self.log = ctx.log
        self._ops = {}
        self._am_extra = (self.t.dispatch_us + self.t.svd_lookup_us
                          + self.t.handler_cpu_us
                          + _KV_SCAN_US * p.slots_per_bucket)
        for client in range(p.nclients):
            node = client % p.nnodes
            if lo <= node < hi:
                ctx.spawn(self.client(client, node),
                          name=f"kv-client{client}")

    # -- wire model ----------------------------------------------------

    def _latency(self, src: int, dst: int, nbytes: int,
                 extra: float = 0.0) -> float:
        return (self.topo.latency(src, dst)
                + self.t.wire_time(nbytes) + extra)

    def server_of(self, key: int) -> tuple:
        bucket = key % self.p.nbuckets
        return bucket, bucket % self.p.nnodes

    # -- client (open loop; never blocks on a reply) -------------------

    def client(self, client: int, node: int):
        p, sim, t = self.p, self.sim, self.t
        n = p.per_client()
        sched = self.arrivals.schedule(
            self.fam.child("arrivals").rng(client), n)
        keys = self.zipf.draw(self.fam.child("keys").rng(client), n)
        puts = self.fam.child("ops").rng(client).random(n) < p.put_frac
        cache = _ClientLRU(p.cache_capacity)
        connected = set()
        now = 0.0
        for seq in range(n):
            gap = float(sched[seq]) - now
            now = float(sched[seq])
            yield sim.sleep(gap)
            key = int(keys[seq])
            is_put = bool(puts[seq])
            bucket, server = self.server_of(key)
            extra = t.o_sw_us + t.o_send_us
            if server not in connected:
                connected.add(server)
                self.counts["conns"] += 1
                # Persistent-connection setup: one extra round trip
                # folded into this first request's latency.
                extra += (2 * self._latency(node, server, _CONN_BYTES)
                          + _CONN_SETUP_US)
            hit = cache.touch(bucket)
            req_bytes = _PUT_REQ_BYTES if is_put else _GET_REQ_BYTES
            if self.slo is not None:
                self.inflight[node] = self.inflight.get(node, 0) + 1
            if self.log.enabled:
                op = self.log.next_op_id()
                self.log.emit(sim.now, OP_BEGIN, op=op, thread=client,
                              node=node, name="kv_req", key=key,
                              hit=hit, put=is_put, nbytes=req_bytes)
                self._ops[(client, seq)] = op
            if self.trace is None:
                self.ctx.send(
                    self.part.shard_of(server), "kv_req",
                    (server, node, client, seq, hit, is_put,
                     _tq(sim.now)),
                    latency=self._latency(node, server, req_bytes,
                                          extra),
                    nbytes=req_bytes)
            else:
                self._issue_traced(client, node, seq, server, hit,
                                   is_put, req_bytes, extra)

    # -- lossy-fabric issue path ---------------------------------------

    def _issue_traced(self, client: int, node: int, seq: int,
                      server: int, hit: bool, is_put: bool,
                      req_bytes: int, extra: float) -> None:
        """Issue one request under the link trace: plan the whole
        retransmit chain now, as a pure function of (trace seed, client,
        seq, attempt) hash draws and the policy's mode at each attempt
        instant — no RNG state, no reply-time feedback — so the fate
        sequence and every policy decision are bit-identical across
        shard layouts.  Only the surviving attempt crosses the shard
        boundary (its latency includes all the waiting, so it is never
        below the topology lookahead)."""
        t0 = self.sim.now
        tr = self.trace
        eng = self.policy
        seed = tr.seed
        attempt = 0
        t_try = t0
        failed = False
        mode = None
        d_req = d_rep = 0.0
        while True:
            mode = (eng.mode_of(node, server, t_try, horizon=t0)
                    if eng is not None else None)
            detoured = (mode is not None and mode.mode == "disabled"
                        and mode.via is not None)
            if detoured:
                # Traffic no longer crosses the sick segment: no loss,
                # no trace delay — the detour's cost is wire distance.
                dropped = False
                d_req = d_rep = 0.0
            else:
                d_req = tr.at(node, server, t_try)[2]
                d_rep = tr.at(server, node, t_try)[2]
                dropped = (
                    fate_u01(seed, client, seq, attempt, 0)
                    < tr.drop_prob(node, server, t_try)
                    or fate_u01(seed, client, seq, attempt, 1)
                    < tr.drop_prob(server, node, t_try))
            if self.health is not None:
                self.health.record(
                    t_try, node, server, attempts=1,
                    timeouts=1 if dropped else 0,
                    deliveries=0 if dropped else 1)
            if not dropped:
                break
            tscale = mode.timeout_scale if mode is not None else 1.0
            bscale = mode.backoff_scale if mode is not None else 1.0
            timeout = _TRACE_TIMEOUT_US * tscale
            if self.health is not None:
                self.health.record(t_try + timeout, node, server,
                                   retries=1)
            if attempt >= _TRACE_MAX_RETRIES:
                failed = True
                break
            backoff = min(_TRACE_BACKOFF_MAX_US,
                          _TRACE_BACKOFF_US
                          * _TRACE_BACKOFF_FACTOR ** attempt)
            t_try = t_try + timeout + backoff * bscale
            attempt += 1
        # Fold the fate chain into the digest so replay bit-identity
        # covers retries and exhausted requests, not just completions.
        self.digests[client] = (
            self.digests.get(client, 0)
            + _commute_hash(seq, attempt, int(failed), _FATE_SALT)
        ) & _MASK64
        if failed:
            self.counts["failures"] += 1
            if self.slo is not None:
                self.inflight[node] = self.inflight.get(node, 0) - 1
            if self.log.enabled:
                op = self._ops.pop((client, seq), -1)
                if op >= 0:
                    self.log.emit(self.sim.now, OP_END, op=op,
                                  thread=client, node=node,
                                  failed=True, attempts=attempt + 1)
            return
        failover = mode is not None and mode.mode == "failover"
        onesided = hit and not failover
        service = 0.0 if onesided else self._am_extra
        if is_put:
            service += _PUT_EXTRA_US
        if attempt and onesided:
            service += attempt * _ONESIDED_RETRY_PENALTY_US
        det_req = det_rep = 0.0
        if (mode is not None and mode.mode == "disabled"
                and mode.via is not None):
            via = mode.via
            lat = self.topo.latency
            det_req = max(0.0, lat(node, via) + lat(via, server)
                          - lat(node, server))
            det_rep = max(0.0, lat(server, via) + lat(via, node)
                          - lat(server, node))
        self.ctx.send(
            self.part.shard_of(server), "kv_treq",
            (server, node, client, seq, hit, is_put, _tq(t0),
             service + d_rep + det_rep),
            latency=((t_try - t0)
                     + self._latency(node, server, req_bytes,
                                     extra + d_req + det_req)),
            nbytes=req_bytes)

    def _on_decision(self, decision: dict) -> None:
        """Policy decision hook: feed the SLO monitor's per-window
        action counter and the flight recorder.  Decisions fire during
        issue-time ``mode_of`` folds on the link's owning shard, so
        both observations are layout-invariant."""
        if self.slo is not None:
            self.slo.observe_policy_action(decision["t_us"])
        if self.log.enabled:
            self.log.emit(self.sim.now, POLICY_ACTION,
                          node=decision["src"], dst=decision["dst"],
                          action=decision["action"],
                          mode=decision["mode"],
                          t_us=decision["t_us"],
                          policy=decision["policy"])

    # -- handlers (instantaneous; costs ride in reply latency) ---------

    def handle_req(self, payload) -> None:
        server, node, client, seq, hit, is_put, t0 = payload
        service = 0.0 if hit else self._am_extra
        if is_put:
            service += _PUT_EXTRA_US
        rep_bytes = _PUT_REP_BYTES if is_put else _GET_REP_BYTES
        self.ctx.send(
            self.part.shard_of(node), "kv_rep",
            (client, seq, hit, is_put, t0),
            latency=self._latency(server, node, rep_bytes, service),
            nbytes=rep_bytes)

    def handle_treq(self, payload) -> None:
        """Traced-path request: the client planned the retransmit chain
        and pre-folded service + trace delay + detour into ``svc``; the
        reply rides the ordinary ``kv_rep`` path."""
        server, node, client, seq, hit, is_put, t0, svc = payload
        rep_bytes = _PUT_REP_BYTES if is_put else _GET_REP_BYTES
        self.ctx.send(
            self.part.shard_of(node), "kv_rep",
            (client, seq, hit, is_put, t0),
            latency=self._latency(server, node, rep_bytes, svc),
            nbytes=rep_bytes)

    def handle_rep(self, payload) -> None:
        client, seq, hit, is_put, t0 = payload
        fct = self.sim.now + self.t.o_recv_us - t0 / 1e6
        b = _bin_of(fct)
        self.hist[b] += 1
        (self.hist_hit if hit else self.hist_miss)[b] += 1
        c = self.counts
        c["requests"] += 1
        c["hits" if hit else "misses"] += 1
        c["puts" if is_put else "gets"] += 1
        self.digests[client] = (
            self.digests.get(client, 0)
            + _commute_hash(seq, int(hit), int(is_put), _tq(fct))
        ) & _MASK64
        if self.slo is not None:
            node = client % self.p.nnodes
            infl = self.inflight.get(node, 0)
            self.inflight[node] = infl - 1
            self.slo.observe(self.sim.now, fct, hit=hit, inflight=infl)
        if self.log.enabled:
            op = self._ops.pop((client, seq), -1)
            if op >= 0:
                self.log.emit(self.sim.now, OP_END, op=op,
                              thread=client, node=client % self.p.nnodes,
                              fct_us=fct, hit=hit, put=is_put)


def build_traffic_shard(ctx: ShardContext, params: dict) -> None:
    """Shard-program builder (picklable via the params dict)."""
    p = TrafficParams(**params)
    part = partition_nodes(p.nnodes, ctx.nshards)
    lo, hi = part.range_of(ctx.shard)
    ctx.set_nodes(lo, hi)
    core = _TrafficCore(ctx, p, part, lo, hi)
    ctx.on_message("kv_req", core.handle_req)
    ctx.on_message("kv_treq", core.handle_treq)
    ctx.on_message("kv_rep", core.handle_rep)
    ctx.publish("hist", core.hist)
    ctx.publish("hist_hit", core.hist_hit)
    ctx.publish("hist_miss", core.hist_miss)
    ctx.publish("counts", core.counts)
    ctx.publish("digests", core.digests)
    # The monitor object itself rides back (its final window state is
    # what matters; it is plain picklable Python).
    ctx.publish("slo", core.slo)
    # Lossy-fabric outputs.  Each link's health and decisions live
    # wholly on its source node's shard, so the merges (commutative
    # counter sums, a summed-hash digest) are layout-invariant.  The
    # engine itself holds an unpicklable callback; its decisions list
    # (mutated in place, plain dicts) is what rides back.
    ctx.publish("links", core.health)
    ctx.publish("decisions",
                core.policy.decisions if core.policy else None)


def run_kv_traffic(params: TrafficParams, nshards: int = 1, *,
                   mode: str = "inproc", mp_context=None,
                   trace: bool = False,
                   trace_max_events=None) -> TrafficResult:
    """Run one traffic experiment under ``nshards`` shards and merge
    the per-shard outputs into a layout-invariant result.

    With ``params.slo_target_us > 0`` the result's ``extra["slo"]``
    carries merged SLO windows, the run summary and anomaly flags;
    ``trace=True`` arms the per-shard flight recorders (packed events
    land on ``extra["run"].shard_events``).  Both are layout-invariant
    and leave the simulation bit-identical."""
    if nshards > params.nnodes:
        raise ValueError(
            f"nshards={nshards} exceeds {params.nnodes} nodes")
    m = MACHINES[params.machine]
    part = partition_nodes(params.nnodes, nshards)
    la = lookahead_matrix(m, params.nnodes, part)
    sharded = ShardedSimulator(nshards, lookahead=la, mode=mode,
                               mp_context=mp_context, trace=trace,
                               trace_max_events=trace_max_events)
    run = sharded.run(build_traffic_shard,
                      dict(params=params.__dict__.copy()))
    hist = np.zeros(HIST_BINS, dtype=np.int64)
    hist_hit = np.zeros(HIST_BINS, dtype=np.int64)
    hist_miss = np.zeros(HIST_BINS, dtype=np.int64)
    counts = {"requests": 0, "hits": 0, "misses": 0, "conns": 0,
              "puts": 0, "gets": 0, "failures": 0}
    digests = {}
    monitors = []
    link_batches = []
    decisions = []
    have_policy = False
    for out in run.outputs:
        hist += np.asarray(out["hist"])
        hist_hit += np.asarray(out["hist_hit"])
        hist_miss += np.asarray(out["hist_miss"])
        for k in counts:
            counts[k] += out["counts"][k]
        digests.update(out["digests"])
        if out.get("slo") is not None:
            monitors.append(out["slo"])
        if out.get("links") is not None:
            link_batches.append(out["links"].link_totals())
        if out.get("decisions") is not None:
            have_policy = True
            decisions.extend(out["decisions"])
    extra = {"run": run}
    if link_batches:
        extra["links"] = HealthTracker.merge_totals(link_batches)
    if have_policy:
        decisions.sort(key=lambda d: (d["t_us"], d["src"], d["dst"],
                                      d["action"]))
        extra["policy"] = {
            "name": params.repair_policy,
            "decisions": decisions,
            "digest": decisions_digest(decisions),
        }
    if monitors:
        windows = SLOMonitor.merge_window_dicts(
            [mon.export() for mon in monitors])
        extra["slo"] = {
            "target_us": params.slo_target_us,
            "window_us": params.slo_window_us,
            "windows": windows,
            "summary": slo_summary(windows,
                                   target_us=params.slo_target_us,
                                   window_us=params.slo_window_us),
            "anomalies": detect_anomalies(
                windows, target_us=params.slo_target_us,
                window_us=params.slo_window_us),
        }
    return TrafficResult(
        requests=counts["requests"], hits=counts["hits"],
        misses=counts["misses"], conns=counts["conns"],
        puts=counts["puts"], gets=counts["gets"], hist=hist,
        hist_hit=hist_hit, hist_miss=hist_miss, digests=digests,
        now=run.now, events=run.events, extra=extra)
