"""Shard programs: workloads written for ``Simulator(shards=N)``.

Two workloads live here, both built so their *virtual-time* behaviour
is a pure function of message timestamps — the property that makes
results independent of how nodes are partitioned into shards:

**Field mix** (:func:`run_field_sharded`) — the DIS Field traffic
pattern (short compute, a relaxed PUT of a field element to the right
neighbour node, a couple of blocking probe round-trips, a closing
barrier) recast as a message-passing shard program.  The same
generator code also runs on one pooled :class:`Simulator`
(:func:`run_field_reference`), giving an implementation-independent
referee: the sharded runs must reproduce its trace, field contents
and digests bit for bit.  Unlike the full-runtime Field bench this
mix charges NIC send overhead inline instead of serializing through a
shared :class:`~repro.sim.resource.Resource` — two threads queueing
on one NIC at the *same instant* would acquire it in event-insertion
order, which is not layout-invariant.  Contention-free send paths
plus commutative same-time effects (the per-node digest is an order-
insensitive sum) are what make the cross-shard determinism claim a
theorem rather than an observation.

**Fuzz-corpus skeleton** (:func:`run_corpus_sharded`) — replays a
race-free fuzz :class:`~repro.testing.program.Program` as a shard
program: one node per UPC thread, shared objects homed by
``obj % nnodes`` (owner/allocating thread for non-collective allocs),
remote reads/writes as request/reply messages applied at arrival,
``upc_fence`` as ack-draining (:class:`ShardFence`) and collectives
as coordinator barriers (:class:`ShardBarrier`).  The race discipline
the validator enforces is exactly what makes arrival-time application
sound: a write's ack returns before the writer's barrier arrival, the
barrier releases after *every* arrival, and any reader issues after
the release — so apply-before-read is ordered by timestamps alone, on
any shard layout.  The full XLUPC runtime still replays the corpus on
the pooled core (the determinism referee); the skeleton is how the
*sharded* core proves layout invariance on the same inputs.
"""

from __future__ import annotations

import numpy as np

from repro.network.params import MACHINES, MachineParams
from repro.network.partition import lookahead_matrix, partition_nodes
from repro.network.topology import make_topology
from repro.obs.events import EventLog, OP_BEGIN, OP_END
from repro.runtime.collectives import (ShardBarrier, ShardFence,
                                       dissemination_cost_us)
from repro.sim.errors import SimulationError
from repro.sim.shard import ShardContext, ShardedRun, ShardedSimulator
from repro.sim.simulator import Simulator
from repro.testing.program import FENCING_KINDS, Program

#: Node granularity of the Field mix (paper: 4 threads per
#: MareNostrum blade).
FIELD_THREADS_PER_NODE = 4

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: Fixed service cost a skeleton home node charges per remote request
#: (dispatch + SVD lookup + handler), folded into the reply latency so
#: handlers stay instantaneous (and therefore commutative) at arrival.
_LOCAL_ACCESS_US = 0.3
_LOCK_LOCAL_US = 0.5
_CTRL_BYTES = 32
#: Per-slot bucket-scan cost a kv handler folds into its reply
#: latency (mirrors the full runtime's KVStore rpc handler cost).
_KV_SCAN_US = 0.02


def _jitter(a: int, b: int) -> float:
    """Deterministic per-(a, b) fraction in [0, 1) — same generator
    the sim-core bench uses, so thread start times decorrelate without
    any RNG state."""
    return ((a * 2654435761 + b * 97003 + 12345) & 1023) / 1024.0


def _tq(t: float) -> int:
    """Quantize a virtual time (µs) to an integer picosecond-ish key
    for digests/traces (exact for the model's float sums)."""
    return int(round(t * 1e6))


def _fnv(data: bytes, acc: int = _FNV_OFFSET) -> int:
    for byte in data:
        acc = ((acc ^ byte) * _FNV_PRIME) & _MASK64
    return acc


def _mix(acc: int, *ints: int) -> int:
    """Order-sensitive fold of integers into a running digest."""
    for value in ints:
        acc = _fnv(int(value & _MASK64).to_bytes(8, "little"), acc)
    return acc


def _commute_hash(*ints: int) -> int:
    """Hash of one effect, summed (mod 2^64) into a per-node digest —
    addition commutes, so same-time effects fold identically whatever
    order a layout delivers them in."""
    return _mix(_FNV_OFFSET, *ints)


# ---------------------------------------------------------------------------
# Field mix
# ---------------------------------------------------------------------------

class _FieldMix:
    """Per-shard (or whole-machine) Field-mix state and handlers.

    ``transmit(src_node, dst_node, kind, payload, nbytes, extra)`` is
    injected by the backend: the sharded builder routes it through
    ``ctx.send``; the reference schedules the delivery on its own
    simulator.  Everything else — thread generators, handlers, costs —
    is byte-for-byte the same code in both."""

    def __init__(self, sim, machine: MachineParams, nnodes: int,
                 local_nodes, transmit,
                 log: "EventLog" = None) -> None:
        self.sim = sim
        self.machine = machine
        self.t = machine.transport
        self.nnodes = nnodes
        self.topo = make_topology(machine, nnodes)
        self.transmit = transmit
        self.field = {node: {} for node in local_nodes}
        self.node_digest = {node: 0 for node in local_nodes}
        self.trace = []
        self._pending = {}
        #: Flight recorder for op spans (``fput``/``probe``); defaults
        #: to a disabled log so the reference path and untraced runs
        #: pay nothing but the ``log.enabled`` check.
        self.log = log if log is not None else EventLog(enabled=False)

    def latency(self, src: int, dst: int, nbytes: int,
                extra: float = 0.0) -> float:
        return (self.topo.latency(src, dst)
                + self.t.wire_time(nbytes) + extra)

    # -- handlers (run at arrival; effects commute at equal times) ----

    def handle_fput(self, payload) -> None:
        dst, src_tid, tok = payload
        self.field[dst][src_tid] = tok
        self.node_digest[dst] = (
            self.node_digest[dst]
            + _commute_hash(src_tid, tok, _tq(self.sim.now))) & _MASK64

    def handle_probe(self, payload) -> None:
        dst, src_node, req = payload
        # Service cost rides in the reply latency; the handler itself
        # is instantaneous, so same-time probes commute.
        service = (self.t.dispatch_us + self.t.svd_lookup_us
                   + self.t.handler_cpu_us)
        self.transmit(dst, src_node, "preply",
                      (req, _tq(self.sim.now)), nbytes=16, extra=service)

    def handle_preply(self, payload) -> None:
        req, served = payload
        self._pending.pop(req).succeed(value=served)

    # -- the thread body ----------------------------------------------

    def thread(self, node: int, tid: int, ntokens: int, probes: int):
        sim, t, log = self.sim, self.t, self.log
        for tok in range(ntokens):
            yield sim.sleep(2.0 + 3.0 * _jitter(tid, tok))
            # Relaxed PUT of the field element to the right neighbour.
            yield sim.sleep(t.o_sw_us + t.o_send_us + t.nic_gap_us)
            dst = (node + 1) % self.nnodes
            if log.enabled:
                # Fire-and-forget: zero-duration span at injection.
                op = log.next_op_id()
                log.emit(sim.now, OP_BEGIN, op=op, thread=tid,
                         node=node, name="fput", nbytes=64)
                log.emit(sim.now, OP_END, op=op, thread=tid,
                         node=node, dst=dst, tok=tok)
            self.transmit(node, dst, "fput", (dst, tid, tok), nbytes=64)
            for p in range(probes):
                other = ((node + 1) % self.nnodes if (tok + p) % 2 == 0
                         else (node - 1) % self.nnodes)
                yield sim.sleep(t.o_sw_us + t.o_send_us + t.nic_gap_us)
                req = (tid, tok, p)
                op = -1
                if log.enabled:
                    op = log.next_op_id()
                    log.emit(sim.now, OP_BEGIN, op=op, thread=tid,
                             node=node, name="probe", nbytes=64)
                gate = sim.event(name=f"probe{req}")
                self._pending[req] = gate
                self.transmit(node, other, "probe",
                              (other, node, req), nbytes=64)
                served = yield gate
                yield sim.sleep(t.o_recv_us)
                if op >= 0:
                    log.emit(sim.now, OP_END, op=op, thread=tid,
                             node=node, dst=other, tok=tok, served=served)
                self.trace.append((_tq(sim.now), tid, tok, p, served))
        op = -1
        if log.enabled:
            op = log.next_op_id()
            log.emit(sim.now, OP_BEGIN, op=op, thread=tid, node=node,
                     name="field_barrier")
        yield from self.barrier_wait()
        if op >= 0:
            log.emit(sim.now, OP_END, op=op, thread=tid, node=node)
        self.trace.append((_tq(sim.now), tid, -1, -1, 0))

    def barrier_wait(self):  # pragma: no cover - replaced per backend
        raise NotImplementedError


def _field_node_of(tid: int, nnodes: int) -> int:
    return min(tid // FIELD_THREADS_PER_NODE, nnodes - 1)


def field_nnodes(nthreads: int) -> int:
    return max(1, nthreads // FIELD_THREADS_PER_NODE)


def build_field_shard(ctx: ShardContext, nthreads: int = 32,
                      ntokens: int = 4, probes: int = 2,
                      machine: str = "gm") -> None:
    """Shard-program builder for the Field mix (picklable; runs once
    per shard in either backend)."""
    m = MACHINES[machine]
    nnodes = field_nnodes(nthreads)
    part = partition_nodes(nnodes, ctx.nshards)
    lo, hi = part.range_of(ctx.shard)
    ctx.set_nodes(lo, hi)

    def transmit(src, dst, kind, payload, nbytes, extra=0.0):
        ctx.send(part.shard_of(dst), kind, payload,
                 latency=core.latency(src, dst, nbytes, extra),
                 nbytes=nbytes)

    core = _FieldMix(ctx.sim, m, nnodes, range(lo, hi), transmit,
                     log=ctx.log)
    ctx.on_message("fput", core.handle_fput)
    ctx.on_message("probe", core.handle_probe)
    ctx.on_message("preply", core.handle_preply)
    barrier = ShardBarrier(
        ctx, expected=nthreads,
        cost_us=dissemination_cost_us(m, nnodes, m.transport),
        entry_us=m.transport.o_sw_us)
    core.barrier_wait = lambda: barrier.wait(generation=0)
    for tid in range(nthreads):
        node = _field_node_of(tid, nnodes)
        if lo <= node < hi:
            ctx.spawn(core.thread(node, tid, ntokens, probes),
                      name=f"field-t{tid}")
    ctx.publish("trace", core.trace)
    ctx.publish("field", core.field)
    ctx.publish("digest", core.node_digest)


def run_field_sharded(nthreads: int, nshards: int, *, ntokens: int = 4,
                      probes: int = 2, machine: str = "gm",
                      mode: str = "inproc", mp_context=None,
                      trace: bool = False,
                      trace_max_events=None) -> dict:
    """Run the Field mix under ``nshards`` shards and merge outputs.

    ``trace=True`` arms every shard's flight recorder; the merged
    result's ``run.shard_events`` then carries the per-shard packed
    event batches (see :mod:`repro.obs.shardlog`).  Recording never
    touches the simulation — traced runs stay bit-identical."""
    m = MACHINES[machine]
    nnodes = field_nnodes(nthreads)
    if nshards > nnodes:
        raise ValueError(
            f"nshards={nshards} exceeds {nnodes} Field nodes")
    part = partition_nodes(nnodes, nshards)
    la = lookahead_matrix(m, nnodes, part)
    sharded = ShardedSimulator(nshards, lookahead=la, mode=mode,
                               mp_context=mp_context, trace=trace,
                               trace_max_events=trace_max_events)
    run = sharded.run(build_field_shard,
                      dict(nthreads=nthreads, ntokens=ntokens,
                           probes=probes, machine=machine))
    return _merge_field_outputs(run)


def _merge_field_outputs(run: ShardedRun) -> dict:
    trace, field, digest = [], {}, {}
    for out in run.outputs:
        trace.extend(out["trace"])
        field.update(out["field"])
        digest.update(out["digest"])
    return {"trace": sorted(trace), "field": field, "digest": digest,
            "now": run.now, "events": run.events, "run": run}


class _RefBarrier:
    """Counter barrier on one pooled simulator, release at
    ``max(arrival) + cost`` — mirrors what the sync coordinator
    resolves for :class:`ShardBarrier` so the reference and sharded
    Field runs release at identical virtual times."""

    def __init__(self, sim, expected: int, cost_us: float,
                 entry_us: float, exit_us: float = 0.2) -> None:
        self.sim = sim
        self.expected = expected
        self.cost_us = cost_us
        self.entry_us = entry_us
        self.exit_us = exit_us
        self._gates = {}
        self._arrived = {}

    def wait(self, generation: int = 0):
        sim = self.sim
        if self.entry_us:
            yield sim.sleep(self.entry_us)
        gate = self._gates.get(generation)
        if gate is None:
            gate = self._gates[generation] = sim.event(
                name=f"refbar@{generation}")
        n = self._arrived.get(generation, 0) + 1
        self._arrived[generation] = n
        if n == self.expected:
            gate.succeed(value=sim.now + self.cost_us,
                         delay=self.cost_us)
        yield gate
        if self.exit_us:
            yield sim.sleep(self.exit_us)


def run_field_reference(nthreads: int, *, ntokens: int = 4,
                        probes: int = 2, machine: str = "gm") -> dict:
    """The Field mix on one pooled :class:`Simulator` — no shard
    machinery anywhere — as the determinism referee."""
    m = MACHINES[machine]
    nnodes = field_nnodes(nthreads)
    sim = Simulator(pooled=True)
    procs = []

    def transmit(src, dst, kind, payload, nbytes, extra=0.0):
        # Same schedule-at-arrival path ShardContext uses.
        ev = sim.sleep(core.latency(src, dst, nbytes, extra),
                       value=payload)
        ev.add_callback(lambda e, k=kind: _handle(k, e._value))

    def _handle(kind, payload):
        {"fput": core.handle_fput, "probe": core.handle_probe,
         "preply": core.handle_preply}[kind](payload)

    def spawn(gen, name=""):
        proc = sim.process(gen, name=name)
        procs.append(proc)
        return proc

    core = _FieldMix(sim, m, nnodes, range(nnodes), transmit)
    barrier = _RefBarrier(sim, expected=nthreads,
                          cost_us=dissemination_cost_us(
                              m, nnodes, m.transport),
                          entry_us=m.transport.o_sw_us)
    core.barrier_wait = lambda: barrier.wait(generation=0)
    for tid in range(nthreads):
        spawn(core.thread(_field_node_of(tid, nnodes), tid, ntokens,
                          probes), name=f"field-t{tid}")
    sim.run()
    stuck = [p.name for p in procs if p.is_alive]
    if stuck:
        raise SimulationError(
            f"reference Field deadlocked: {stuck[:5]}")
    return {"trace": sorted(core.trace), "field": core.field,
            "digest": core.node_digest, "now": sim.now,
            "events": sim.events_processed, "run": None}


# ---------------------------------------------------------------------------
# Fuzz-corpus skeleton
# ---------------------------------------------------------------------------

def _object_plan(program: Program, nnodes: int):
    """Walk the program once, assigning every object *incarnation* a
    unique id ``(obj, k)`` (ids may be reused after ``free``) plus its
    home node, and record which incarnation each phase sees.

    Returns ``(infos, eff_by_phase, final_live)`` where ``infos`` maps
    oid -> dict(nelems, dtype, kind, home, tile geometry) and
    ``eff_by_phase[pi]`` maps raw obj id -> oid during phase ``pi``.
    """
    infos, counts, current = {}, {}, {}

    def register(obj, home, nelems, dtype, kind="array", rows=0,
                 cols=0, tile_r=0, tile_c=0, slots=0):
        k = counts.get(obj, 0)
        counts[obj] = k + 1
        oid = (obj, k)
        infos[oid] = {"nelems": nelems, "dtype": dtype, "kind": kind,
                      "home": home % nnodes, "rows": rows,
                      "cols": cols, "tile_r": tile_r, "tile_c": tile_c,
                      "slots": slots}
        current[obj] = oid

    for s in program.scalars:
        register(s.obj, s.owner_thread, 1, s.dtype, kind="scalar")
    eff_by_phase = []
    for ph in program.phases:
        if ph.is_collective:
            op = ph.collective
            a = op.args
            if op.kind == "alloc":
                register(op.obj, op.obj, a["nelems"], a["dtype"])
            elif op.kind == "alloc_matrix":
                register(op.obj, op.obj, a["rows"] * a["cols"],
                         a["dtype"], kind="matrix", rows=a["rows"],
                         cols=a["cols"], tile_r=a["tile_r"],
                         tile_c=a["tile_c"])
            elif op.kind == "kv_create":
                # Bucket image: ``nbuckets`` buckets of ``slots``
                # (key_enc, value) cell pairs, homed like any other
                # collective alloc.  Access path / lock / blocksize
                # are full-runtime concerns; the skeleton serves every
                # kv op at the home node, so they do not change its
                # virtual-time behaviour.
                register(op.obj, op.obj,
                         a["nbuckets"] * 2 * a["slots"], "u8",
                         kind="kv", slots=a["slots"])
            elif op.kind in ("free", "kv_free"):
                current.pop(op.obj, None)
        else:
            for tid, lst in enumerate(ph.per_thread):
                for op in lst:
                    if op.kind in ("global_alloc", "local_alloc"):
                        register(op.obj, tid, op.args["nelems"],
                                 op.args["dtype"])
        eff_by_phase.append(dict(current))
    final_live = set((eff_by_phase[-1] if eff_by_phase else {}).values())
    return infos, eff_by_phase, final_live


def _mat_linear(info: dict, r: int, c: int) -> int:
    """Tile-major (row, col) -> linear index — same arithmetic as the
    program validator's `_matrix_linear` (kept independent of the
    runtime's SharedMatrix on purpose)."""
    tiles_c = info["cols"] // info["tile_c"]
    tile = (r // info["tile_r"]) * tiles_c + (c // info["tile_c"])
    within = (r % info["tile_r"]) * info["tile_c"] + (c % info["tile_c"])
    return tile * info["tile_r"] * info["tile_c"] + within


def _skeleton_spans(op, info):
    """(start, cnt, mode, values) spans an op touches; mode ``r``
    read, ``w`` relaxed write, ``s`` strict write, ``l`` RMW."""
    a, k = op.args, op.kind
    if k == "get":
        return [(a["index"], 1, "r", None)]
    if k in ("put", "memput"):
        return [(a["index"], len(a["values"]), "w", a["values"])]
    if k == "put_strict":
        return [(a["index"], len(a["values"]), "s", a["values"])]
    if k == "memget":
        return [(a["index"], a["nelems"], "r", None)]
    if k == "memget_v":
        return [(i, n, "r", None) for i, n in a["spans"]]
    if k == "memput_v":
        return [(i, len(v), "w", v) for i, v in a["puts"]]
    if k == "gather":
        return [(i, a.get("nelems", 1), "r", None)
                for i in a["indices"]]
    if k == "ptr_walk":
        return [(a["index"] + a["delta"], 1, "r", None)]
    if k == "lock_add":
        return [(a["index"], 1, "l", a["delta"])]
    if k == "get_rc":
        return [(_mat_linear(info, a["r"], a["c"]), 1, "r", None)]
    if k == "put_rc":
        return [(_mat_linear(info, a["r"], a["c"]), 1, "w",
                 [a["value"]])]
    if k == "memget_row":
        return [(_mat_linear(info, a["r"], a["c0"]), a["nelems"], "r",
                 None)]
    return []


def _wrap_int(value: int, dtype: np.dtype) -> int:
    bits = dtype.itemsize * 8
    if dtype.kind == "u":
        return value & ((1 << bits) - 1)
    half = 1 << (bits - 1)
    return ((value + half) % (1 << bits)) - half


class _SkeletonCore:
    """Per-shard state of the corpus-skeleton service.

    Every remote access is a request message applied (or served) at
    its arrival instant by a pure handler; service cost rides in the
    reply latency.  Fences drain write acks; collectives are
    generation-named coordinator barriers.  See the module docstring
    for why arrival-time application is sound under the corpus race
    discipline."""

    def __init__(self, sim, machine: MachineParams, program: Program,
                 local_nodes, transmit, barrier, fences) -> None:
        self.sim = sim
        self.machine = machine
        self.t = machine.transport
        self.program = program
        self.nnodes = program.nthreads
        self.topo = make_topology(machine, self.nnodes)
        self.transmit = transmit
        self.barrier = barrier      # (generation) -> generator
        self.fences = fences        # tid -> ShardFence-like
        self.infos, self.eff, self.final_live = _object_plan(
            program, self.nnodes)
        local = set(local_nodes)
        #: Zero-initialised byte image of every incarnation homed
        #: here.  Unique oids mean upfront creation is safe even when
        #: raw object ids are reused after a free.
        self.images = {
            oid: bytearray(np.zeros(info["nelems"],
                                    dtype=np.dtype(info["dtype"]))
                           .tobytes())
            for oid, info in self.infos.items()
            if info["home"] in local}
        self.digests = {}
        self.finish = {}
        self._pending = {}
        self._reqseq = 0
        self.service_us = (self.t.dispatch_us + self.t.svd_lookup_us
                           + self.t.handler_cpu_us)

    def latency(self, src: int, dst: int, nbytes: int,
                extra: float = 0.0) -> float:
        return (self.topo.latency(src, dst)
                + self.t.wire_time(nbytes) + extra)

    # -- handlers ------------------------------------------------------

    def handle_sput(self, payload) -> None:
        oid, start, data, src_node, token = payload
        isz = np.dtype(self.infos[oid]["dtype"]).itemsize
        self.images[oid][start * isz:start * isz + len(data)] = data
        self.transmit(self.infos[oid]["home"], src_node, "sack",
                      (src_node, token), _CTRL_BYTES,
                      extra=self.service_us)

    def handle_sack(self, payload) -> None:
        dst_node, token = payload
        self.fences[dst_node].ack(token)

    def handle_sget(self, payload) -> None:
        oid, start, cnt, src_node, req = payload
        isz = np.dtype(self.infos[oid]["dtype"]).itemsize
        data = bytes(self.images[oid][start * isz:(start + cnt) * isz])
        self.transmit(self.infos[oid]["home"], src_node, "srep",
                      (req, data, _tq(self.sim.now)),
                      len(data) + _CTRL_BYTES, extra=self.service_us)

    def handle_sadd(self, payload) -> None:
        oid, index, delta, src_node, req = payload
        dt = np.dtype(self.infos[oid]["dtype"])
        img = self.images[oid]
        off = index * dt.itemsize
        old = int(np.frombuffer(bytes(img[off:off + dt.itemsize]),
                                dtype=dt)[0])
        raw = _wrap_int(old + int(delta), dt)
        img[off:off + dt.itemsize] = np.array([raw], dtype=dt).tobytes()
        self.transmit(self.infos[oid]["home"], src_node, "srep",
                      (req, b"", _tq(self.sim.now)),
                      _CTRL_BYTES, extra=self.service_us)

    def handle_skv(self, payload) -> None:
        oid, verb, args, src_node, req = payload
        reply = self._kv_exec(oid, verb, args)
        data = np.asarray(reply, dtype="<i8").tobytes()
        self.transmit(self.infos[oid]["home"], src_node, "srep",
                      (req, data, _tq(self.sim.now)),
                      len(data) + _CTRL_BYTES,
                      extra=self.service_us
                      + _KV_SCAN_US * self.infos[oid]["slots"])

    def handle_srep(self, payload) -> None:
        req, data, served = payload
        self._pending.pop(req).succeed(value=(data, served))

    # -- kv execution (at the home node, instantaneous) ----------------

    def _kv_exec(self, oid, verb, args):
        """Apply one kv op to the home image; returns the reply as a
        list of ints (values for get/mget, found-flag for del, empty
        for put).  Same slot discipline as the full-runtime KVStore —
        matching key first, else first empty — so decoded images stay
        byte-comparable with runtime snapshots."""
        info = self.infos[oid]
        slots = info["slots"]
        span = 2 * slots
        nbuckets = info["nelems"] // span
        img = self.images[oid]

        def cells(b):
            off = b * span * 8
            return np.frombuffer(bytes(img[off:off + span * 8]),
                                 dtype=np.uint64)

        def lookup(key):
            c = cells(key % nbuckets)
            enc = key + 1
            for s in range(slots):
                if int(c[2 * s]) == enc:
                    return int(c[2 * s + 1])
            return -1

        if verb == "kv_get":
            return [lookup(args[0])]
        if verb == "kv_mget":
            return [lookup(k) for k in args]
        b = args[0] % nbuckets
        c = cells(b)
        enc = args[0] + 1
        if verb == "kv_put":
            slot = next((s for s in range(slots)
                         if int(c[2 * s]) == enc), -1)
            if slot < 0:
                slot = next((s for s in range(slots)
                             if int(c[2 * s]) == 0), -1)
            # Validated programs never overflow a bucket (the
            # program checker tracks occupancy), so slot >= 0 here.
            off = (b * span + 2 * slot) * 8
            img[off:off + 16] = np.array(
                [enc, args[1]], dtype=np.uint64).tobytes()
            return []
        # kv_del
        for s in range(slots):
            if int(c[2 * s]) == enc:
                off = (b * span + 2 * s) * 8
                img[off:off + 8] = np.zeros(1, dtype=np.uint64) \
                    .tobytes()
                return [1]
        return [0]

    # -- request helpers (generators) ----------------------------------

    def _request(self, tid, kind, body, nbytes):
        """Issue a blocking request to a home node; returns
        ``(data, served_time)``."""
        sim, t = self.sim, self.t
        yield sim.sleep(t.o_sw_us + t.o_send_us)
        self._reqseq += 1
        req = (tid, self._reqseq)
        gate = sim.event(name=f"req{req}")
        self._pending[req] = gate
        home = self.infos[body[0]]["home"]
        self.transmit(tid, home, kind, body + (tid, req), nbytes)
        data, served = yield gate
        yield sim.sleep(t.o_recv_us)
        return data, served

    # -- per-op execution ----------------------------------------------

    def exec_op(self, tid, op, pi, oi, eff, fence):
        sim, t = self.sim, self.t
        k = op.kind
        if k == "compute":
            yield sim.sleep(0.8 + 1.7 * _jitter(tid, pi * 8192 + oi))
            return
        if k == "poll":
            yield sim.sleep(0.5)
            return
        if k == "fence":
            yield from fence.wait()
            return
        if k in ("global_alloc", "local_alloc"):
            yield sim.sleep(1.0)
            return
        oid = eff[op.obj]
        info = self.infos[oid]
        if k in ("kv_get", "kv_put", "kv_del", "kv_mget"):
            a = op.args
            if k == "kv_put":
                body_args = (a["key"], a["value"])
            elif k == "kv_mget":
                body_args = tuple(a["keys"])
            else:
                body_args = (a["key"],)
            # Every kv op is a strict round trip (the full runtime's
            # puts fence inside the bucket lock), so a later reader's
            # request timestamp is ordered after this reply.
            if info["home"] == tid:
                yield sim.sleep(t.o_sw_us + _LOCAL_ACCESS_US
                                + _KV_SCAN_US * info["slots"])
                reply = self._kv_exec(oid, k, body_args)
                data = np.asarray(reply, dtype="<i8").tobytes()
                served = _tq(sim.now)
            else:
                data, served = yield from self._request(
                    tid, "skv", (oid, k, body_args), _CTRL_BYTES)
            self.digests[tid] = _mix(
                self.digests[tid], oid[0], oid[1], _fnv(data), served)
            return
        dt = np.dtype(info["dtype"])
        for start, cnt, mode, values in _skeleton_spans(op, info):
            if cnt == 0:
                continue
            if mode == "r":
                if info["home"] == tid:
                    yield sim.sleep(t.o_sw_us + _LOCAL_ACCESS_US)
                    isz = dt.itemsize
                    data = bytes(self.images[oid][start * isz:
                                                  (start + cnt) * isz])
                    served = _tq(sim.now)
                else:
                    data, served = yield from self._request(
                        tid, "sget", (oid, start, cnt),
                        _CTRL_BYTES)
                self.digests[tid] = _mix(
                    self.digests[tid], oid[0], oid[1], start,
                    _fnv(data), served)
            elif mode in ("w", "s"):
                data = np.asarray(values, dtype=dt).tobytes()
                if info["home"] == tid:
                    yield sim.sleep(t.o_sw_us + _LOCAL_ACCESS_US)
                    isz = dt.itemsize
                    self.images[oid][start * isz:
                                     start * isz + len(data)] = data
                else:
                    yield sim.sleep(t.o_sw_us + t.o_send_us)
                    token = fence.issue()
                    self.transmit(tid, info["home"], "sput",
                                  (oid, start, data, tid, token),
                                  len(data) + _CTRL_BYTES)
                    if mode == "s":
                        # Strict PUT completes before the next op.
                        yield from fence.wait()
            else:  # "l" — lock-protected RMW
                if info["home"] == tid:
                    yield sim.sleep(t.o_sw_us + _LOCAL_ACCESS_US
                                    + _LOCK_LOCAL_US)
                    off = start * dt.itemsize
                    img = self.images[oid]
                    old = int(np.frombuffer(
                        bytes(img[off:off + dt.itemsize]), dtype=dt)[0])
                    raw = _wrap_int(old + int(values), dt)
                    img[off:off + dt.itemsize] = np.array(
                        [raw], dtype=dt).tobytes()
                else:
                    _, served = yield from self._request(
                        tid, "sadd", (oid, start, values),
                        _CTRL_BYTES)
                    self.digests[tid] = _mix(
                        self.digests[tid], oid[0], oid[1], start,
                        served)

    def _collective_extra(self, op) -> float:
        m = self.machine
        if op.kind in ("all_reduce", "broadcast"):
            if self.nnodes > 1:
                stages = max(1, int(np.ceil(np.log2(self.nnodes))))
                return stages * (m.wire_base_us + 3 * m.wire_per_hop_us)
            return 0.0
        if op.kind in ("alloc", "alloc_matrix", "kv_create"):
            return 1.0
        if op.kind in ("free", "kv_free"):
            return 0.2
        return 0.0

    def thread(self, tid: int):
        sim = self.sim
        fence = self.fences[tid]
        self.digests[tid] = _FNV_OFFSET
        for pi, ph in enumerate(self.program.phases):
            if ph.is_collective:
                op = ph.collective
                if op.kind in FENCING_KINDS:
                    yield from fence.wait()
                yield from self.barrier(pi)
                extra = self._collective_extra(op)
                if extra:
                    yield sim.sleep(extra)
                continue
            eff = self.eff[pi]
            for oi, op in enumerate(ph.per_thread[tid]):
                yield from self.exec_op(tid, op, pi, oi, eff, fence)
        self.finish[tid] = _tq(sim.now)


def build_corpus_shard(ctx: ShardContext, program_json: str,
                       machine: str = "gm") -> None:
    """Shard-program builder replaying one fuzz program (one node per
    UPC thread; picklable via the JSON text)."""
    program = Program.loads(program_json)
    m = MACHINES[machine]
    nnodes = program.nthreads
    part = partition_nodes(nnodes, ctx.nshards)
    lo, hi = part.range_of(ctx.shard)
    ctx.set_nodes(lo, hi)

    def transmit(src, dst, kind, payload, nbytes, extra=0.0):
        ctx.send(part.shard_of(dst), kind, payload,
                 latency=core.latency(src, dst, nbytes, extra),
                 nbytes=nbytes)

    cost = dissemination_cost_us(m, nnodes, m.transport)
    shard_barrier = ShardBarrier(ctx, expected=nnodes, cost_us=cost,
                                 entry_us=m.transport.o_sw_us)
    fences = {tid: ShardFence(ctx) for tid in range(lo, hi)}
    core = _SkeletonCore(
        ctx.sim, m, program, range(lo, hi), transmit,
        barrier=lambda gen: shard_barrier.wait(generation=gen),
        fences=fences)
    for kind in ("sput", "sack", "sget", "sadd", "srep", "skv"):
        ctx.on_message(kind, getattr(core, f"handle_{kind}"))
    for tid in range(lo, hi):
        ctx.spawn(core.thread(tid), name=f"skel-t{tid}")
    # Publish the *live* bytearrays — the builder runs before the sim,
    # so taking ``bytes(img)`` here would freeze the zero-initialised
    # images; the merge below copies them after the run completes.
    ctx.publish("mem", {f"{o}:{k}": img
                        for (o, k), img in core.images.items()
                        if (o, k) in core.final_live})
    ctx.publish("kvinfo", {f"{o}:{k}": core.infos[(o, k)]["slots"]
                           for (o, k) in core.final_live
                           if core.infos[(o, k)]["kind"] == "kv"})
    ctx.publish("digests", core.digests)
    ctx.publish("finish", core.finish)


def run_corpus_sharded(program: Program, nshards: int, *,
                       machine: str = "gm", mode: str = "inproc",
                       mp_context=None, trace: bool = False,
                       trace_max_events=None) -> dict:
    """Replay ``program`` under ``nshards`` shards; merged result is
    layout-invariant (``nshards=1`` is the pooled referee — the whole
    run lives on one pooled :class:`Simulator`)."""
    m = MACHINES[machine]
    nnodes = program.nthreads
    if nshards > nnodes:
        raise ValueError(
            f"nshards={nshards} exceeds {nnodes} skeleton nodes")
    part = partition_nodes(nnodes, nshards)
    la = lookahead_matrix(m, nnodes, part)
    sharded = ShardedSimulator(nshards, lookahead=la, mode=mode,
                               mp_context=mp_context, trace=trace,
                               trace_max_events=trace_max_events)
    run = sharded.run(build_corpus_shard,
                      dict(program_json=program.dumps(),
                           machine=machine))
    mem, kvinfo, digests, finish = {}, {}, {}, {}
    for out in run.outputs:
        mem.update({k: bytes(v) for k, v in out["mem"].items()})
        kvinfo.update(out.get("kvinfo", {}))
        digests.update(out["digests"])
        finish.update(out["finish"])
    return {"mem": mem, "kvinfo": kvinfo, "digests": digests,
            "finish": finish, "now": run.now, "events": run.events,
            "run": run}


def skeleton_kv_dict(image: bytes) -> dict:
    """Decode a skeleton kv image back to a flat ``{key: value}`` dict
    (cell pairs are ``(key_enc, value)``; ``key_enc = 0`` is empty, so
    bucket geometry is irrelevant to the decode)."""
    cells = np.frombuffer(image, dtype=np.uint64)
    return {int(cells[i]) - 1: int(cells[i + 1])
            for i in range(0, len(cells), 2) if int(cells[i]) != 0}
