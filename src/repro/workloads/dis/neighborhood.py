"""The Neighborhood Stressmark (section 4.4).

    "The Neighborhood Stressmark is a stencil code prototype. ... It
    requires memory accesses to pairs of pixels with specific spatial
    relationships.  Computation is performed in parallel based on the
    locality of the shared array.  The two-dimensional pixel matrix is
    block-distributed in a row major fashion.  Accesses are local or
    remote depending on stencil distances and pixel positions."

Layout: the UPC declaration ``shared [WIDTH] pixel img[DIM][WIDTH]``
distributes *rows* round-robin over threads (row ``r`` is affine to
thread ``r % THREADS``), row-major within the row.  A vertical stencil
access at distance ``d`` therefore lands ``d`` threads away — usually
on another node — while horizontal accesses stay local.

Access mix: "The stencil used in this experiment (with a stencil
distance of 10) causes about 3/16 of memory accesses to be potentially
remote" (section 4.6) — implemented directly: a sampled pixel does the
vertical (remote-capable) pair with probability ``boundary_fraction``
(default 3/16) and the horizontal (local) pair otherwise.

The communication partner set is {thread - d, thread + d} — constant
as the machine grows.  That is Figure 8b: "only a few cache entries
are used and the hit ratio keeps constant as we scale."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import seeded_rng
from repro.workloads.dis.common import DISBase, DISResult, collect_result


@dataclass(frozen=True)
class NeighborhoodParams(DISBase):
    """Neighborhood stressmark knobs."""

    #: Pixel matrix is dim rows x width columns, row-major (width
    #: defaults to dim, i.e. square).  Large-scale runs keep rows per
    #: thread constant and shrink the width to bound the data plane.
    dim: int = 256
    width: int = 0  # 0 → square (width = dim)
    #: Stencil distance in rows ("a stencil distance of 10").
    distance: int = 10
    #: Pixels sampled per thread per iteration.
    samples: int = 24
    iterations: int = 2
    #: Per-pixel computation between accesses.
    work_us: float = 0.4
    #: Fraction of accesses that are vertical, i.e. potentially
    #: remote.  Section 4.6: "about 3/16 of memory accesses to be
    #: potentially remote".
    boundary_fraction: float = 3.0 / 16.0

    def __post_init__(self) -> None:
        if self.dim < 2 * self.nthreads:
            raise ValueError("need at least two rows per thread")
        if not 0 < self.distance < self.dim:
            raise ValueError(f"bad stencil distance {self.distance}")
        if not 0.0 <= self.boundary_fraction <= 1.0:
            raise ValueError(
                f"bad boundary_fraction {self.boundary_fraction}")
        if self.width < 0:
            raise ValueError(f"bad width {self.width}")

    @property
    def ncols(self) -> int:
        return self.width or self.dim


def run_neighborhood(p: NeighborhoodParams) -> DISResult:
    rt = p.runtime()
    ncols = p.ncols
    npix = p.dim * ncols
    # Row-cyclic: blocksize of one row → row r affine to thread r % T.
    blocksize = ncols
    image = seeded_rng(p.seed, 0x2D).integers(0, 1 << 12, size=npix,
                                              dtype=np.uint64)
    sums = {}

    def kernel(th):
        arr = yield from th.all_alloc(npix, blocksize=blocksize, dtype="u8")
        if th.id == 0:
            arr.data[:] = image
        yield from th.barrier()
        my_rows = list(range(th.id, p.dim, p.nthreads))
        acc = 0
        rng = th.rng
        for _ in range(p.iterations):
            for _ in range(p.samples):
                r = int(my_rows[int(rng.integers(len(my_rows)))])
                c = int(rng.integers(ncols))
                center = yield from th.get(arr, r * ncols + c)
                yield from th.compute(p.work_us)
                if float(rng.random()) < p.boundary_fraction:
                    # Vertical pair: d rows away → d threads away,
                    # usually another node.
                    deltas = [(-p.distance, 0), (p.distance, 0)]
                else:
                    # Horizontal pair: same row → always affine.
                    deltas = [(0, -p.distance), (0, p.distance)]
                for dr, dc in deltas:
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < p.dim and 0 <= cc < ncols:
                        other = yield from th.get(arr, rr * ncols + cc)
                        diff = int(center) - int(other)
                        acc += diff * diff
                        yield from th.compute(p.work_us)
            yield from th.barrier()
        sums[th.id] = acc
        yield from th.barrier()

    rt.spawn(kernel)
    run = rt.run()
    check = tuple(sums[t] for t in sorted(sums))
    return collect_result(rt, run, check)
