"""The Transitive Closure Stressmark (extension).

Another member of the DIS suite beyond the paper's four-stressmark
subset: boolean transitive closure of a directed graph by
Floyd–Warshall.  The adjacency matrix is row-blocked over the UPC
threads; at step ``k`` every thread fetches row ``k`` from its owner
(one bulk remote GET — a broadcast-by-read) and updates its own rows
locally.  Communication is single-source-per-step with a rotating
source: every node pair eventually talks, but only one (handle, node)
pair is hot at a time — friendly to even a tiny address cache.

Functional check: the closure must equal a serial NumPy
Floyd–Warshall of the same generated graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import seeded_rng
from repro.workloads.dis.common import DISBase, DISResult, collect_result


@dataclass(frozen=True)
class TransitiveParams(DISBase):
    """Transitive Closure stressmark knobs."""

    #: Number of graph vertices (adjacency is nverts x nverts).
    nverts: int = 48
    #: Edge probability of the random digraph.
    density: float = 0.08
    #: Compute cost per updated matrix row per step.
    row_update_us: float = 0.5

    def __post_init__(self) -> None:
        if self.nverts < self.nthreads:
            raise ValueError("need at least one row per thread")
        if not 0.0 < self.density < 1.0:
            raise ValueError(f"bad density {self.density}")


def _closure_reference(adj: np.ndarray) -> np.ndarray:
    reach = adj.copy()
    n = len(reach)
    for k in range(n):
        reach |= np.outer(reach[:, k], reach[k, :])
    return reach


def run_transitive(p: TransitiveParams) -> DISResult:
    rt = p.runtime()
    n = p.nverts
    rng = seeded_rng(p.seed, 0x7C105)
    adj = (rng.random((n, n)) < p.density)
    np.fill_diagonal(adj, True)
    adj = adj.astype(bool)
    rows_per_thread = -(-n // p.nthreads)
    blocksize = rows_per_thread * n
    holder = {}

    def kernel(th):
        mat = yield from th.all_alloc(n * n, blocksize=blocksize,
                                      dtype="u1")
        if th.id == 0:
            mat.data[:] = adj.astype(np.uint8).ravel()
            holder["mat"] = mat
        yield from th.barrier()
        lo = min(th.id * rows_per_thread, n)
        hi = min(lo + rows_per_thread, n)
        # Local working copy of this thread's row strip.
        mine = adj[lo:hi].copy()
        for k in range(n):
            # Fetch row k from its owner (remote unless it is ours).
            # Each row lives inside one block, so these transfers are
            # single-segment bulk-engine pass-throughs — one message
            # each, timing identical to the serial path (keeps the
            # paper-figure calibration intact).
            row_k = yield from th.memget(mat, k * n, n)
            row_k = row_k.astype(bool)
            if hi > lo:
                updated = mine | np.outer(mine[:, k], row_k)
                changed = int((updated != mine).any())
                mine = updated
                yield from th.compute((hi - lo) * p.row_update_us
                                      + changed)
                # Publish our strip so later steps read fresh rows.
                yield from th.memput(mat, lo * n,
                                     mine.astype(np.uint8).ravel())
                yield from th.fence()
            yield from th.barrier()
        yield from th.barrier()
        return int(mine.sum()) if hi > lo else 0

    rt.spawn(kernel)
    run = rt.run()
    result = holder["mat"].data.reshape(n, n).astype(bool)
    expect = _closure_reference(adj)
    ok = bool(np.array_equal(result, expect))
    return collect_result(rt, run, (ok, int(result.sum())))
