"""The Corner Turn Stressmark (extension).

The DIS Stressmark Suite contains seven stressmarks; the paper ports
four ("we have implemented a subset", section 4.4).  Corner Turn — a
distributed matrix transpose, the classic data-reorganization kernel
of sensor pipelines — is a natural fifth: its communication is an
all-to-all of tiles, so *every* node pair exchanges data and the
address-cache working set is (nodes - 1) entries, like Pointer, but
with a perfectly regular schedule, like Neighborhood.

Implementation: an R x C source matrix in ``t x t`` tiles; thread
``owner(j, i)`` of each *destination* tile pulls the source tile
(i, j) row by row and writes the transposed tile into place
(owner-computes on the output).  The functional check compares the
dense result against ``A.T``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import seeded_rng
from repro.workloads.dis.common import DISBase, DISResult, collect_result


@dataclass(frozen=True)
class CornerTurnParams(DISBase):
    """Corner Turn stressmark knobs."""

    #: Matrix is dim x dim elements.
    dim: int = 64
    #: Tile edge (square tiles; dim must be divisible).
    tile: int = 8
    #: Compute per transposed element (register shuffling).
    work_us_per_elem: float = 0.02

    def __post_init__(self) -> None:
        if self.dim % self.tile:
            raise ValueError(
                f"dim {self.dim} not divisible by tile {self.tile}")
        if (self.dim // self.tile) ** 2 < self.nthreads:
            raise ValueError("fewer tiles than threads; shrink tile")


def run_corner_turn(p: CornerTurnParams) -> DISResult:
    rt = p.runtime()
    dense = seeded_rng(p.seed, 0xC04E4).integers(
        0, 1 << 16, size=(p.dim, p.dim)).astype("f8")
    holder = {}

    def kernel(th):
        a = yield from th.all_alloc_matrix(p.dim, p.dim, p.tile, p.tile,
                                           dtype="f8")
        b = yield from th.all_alloc_matrix(p.dim, p.dim, p.tile, p.tile,
                                           dtype="f8")
        if th.id == 0:
            a.from_dense(dense)
            holder["b"] = b
        yield from th.barrier()
        tiles = p.dim // p.tile
        for tile_idx in range(tiles * tiles):
            # Owner-computes on the *destination* tile.
            if tile_idx % th.nthreads != th.id:
                continue
            ti, tj = divmod(tile_idx, tiles)
            # Destination tile (ti, tj) = transpose of source (tj, ti).
            # All rows of a tile are contiguous in the owner's arena,
            # so the vectored calls let the bulk engine coalesce the
            # whole tile into one wire message per direction (and
            # pipeline the residue when it exceeds the coalesce cap).
            block = np.empty((p.tile, p.tile))
            rows = yield from th.memget_v(a, [
                a.row_segment(tj * p.tile + dr, ti * p.tile, p.tile)
                for dr in range(p.tile)])
            for dr in range(p.tile):
                block[:, dr] = rows[dr]
            yield from th.compute(p.tile * p.tile * p.work_us_per_elem)
            yield from th.memput_v(b, [
                (b.row_segment(ti * p.tile + dr, tj * p.tile, p.tile)[0],
                 block[dr])
                for dr in range(p.tile)])
        yield from th.barrier()
        return None

    rt.spawn(kernel)
    run = rt.run()
    result = holder["b"].to_dense()
    ok = bool(np.array_equal(result, dense.T))
    checksum = float(result.sum())
    return collect_result(rt, run, (ok, checksum))
