"""UPC port of the DIS Stressmark subset (section 4.4).

The paper's third contribution: "introduces a UPC parallel
implementation of a subset of the DIS Stressmark Suite".  Four
stressmarks, chosen because "they recreate the access patterns of
data-intensive real applications":

* **Pointer** — random pointer chasing over the whole shared array by
  every thread (unpredictable communication; cache-stressing);
* **Update** — pointer chasing with reads+updates from thread 0 only,
  everyone else idling in a barrier;
* **Neighborhood** — a 2-D stencil prototype with nearest-neighbour
  communication (tiny, stable working set: the friendly case);
* **Field** — token search over a blocked string array with overhang
  reads into the neighbouring thread's block (mostly-local, exposes
  the GM progress pathology of section 4.6).
"""

from repro.workloads.dis.common import DISBase, DISResult
from repro.workloads.dis.corner_turn import CornerTurnParams, run_corner_turn
from repro.workloads.dis.pointer import PointerParams, run_pointer
from repro.workloads.dis.transitive import TransitiveParams, run_transitive
from repro.workloads.dis.update import UpdateParams, run_update
from repro.workloads.dis.neighborhood import (
    NeighborhoodParams,
    run_neighborhood,
)
from repro.workloads.dis.field import FieldParams, run_field

__all__ = [
    "DISBase",
    "DISResult",
    "PointerParams",
    "run_pointer",
    "UpdateParams",
    "run_update",
    "NeighborhoodParams",
    "run_neighborhood",
    "FieldParams",
    "run_field",
    "CornerTurnParams",
    "run_corner_turn",
    "TransitiveParams",
    "run_transitive",
]
