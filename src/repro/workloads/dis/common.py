"""Shared scaffolding for the DIS stressmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.address_cache import DEFAULT_CAPACITY, EvictionPolicy
from repro.core.piggyback import PiggybackConfig
from repro.core.policy import DEFAULT_CHUNK_BYTES, PinningPolicy
from repro.network.params import MachineParams
from repro.runtime.metrics import RunResult
from repro.runtime.runtime import Runtime, RuntimeConfig


@dataclass(frozen=True)
class DISBase:
    """Configuration fields every stressmark shares."""

    machine: MachineParams
    nthreads: int
    threads_per_node: Optional[int] = None
    cache_enabled: bool = True
    cache_capacity: int = DEFAULT_CAPACITY
    cache_policy: EvictionPolicy = EvictionPolicy.LRU
    pinning_policy: PinningPolicy = PinningPolicy.PIN_EVERYTHING
    pin_chunk_bytes: int = DEFAULT_CHUNK_BYTES
    piggyback: PiggybackConfig = field(default_factory=PiggybackConfig)
    use_rdma_put: Optional[bool] = None
    #: Bulk-transfer engine knobs (pipelined memget/memput; see
    #: :mod:`repro.runtime.bulk`).
    bulk_enabled: bool = True
    bulk_max_inflight: int = 8
    bulk_max_coalesce_bytes: int = 64 * 1024
    seed: int = 0
    #: Optional Paraver-style tracer (see :mod:`repro.trace`).
    tracer: Optional[Any] = None
    #: Optional flight recorder (an :class:`repro.obs.EventLog`).
    events: Optional[Any] = None
    #: Optional deterministic fault plan / reliability knobs (see
    #: :mod:`repro.faults` and docs/FAULTS.md).
    fault_plan: Optional[Any] = None
    reliability: Optional[Any] = None
    #: Optional time-evolving link degradation trace (a
    #: :class:`repro.faults.LinkTrace`) and the repair policy watching
    #: it (a :data:`repro.faults.POLICIES` name).
    link_trace: Optional[Any] = None
    repair_policy: Optional[str] = None
    #: Event-core selection: True runs the pooled fast core, False the
    #: legacy reference core (see repro.sim.simulator).  Schedules are
    #: bit-identical; benchmarks flip this to measure the speedup.
    pooled_core: bool = True

    def runtime(self) -> Runtime:
        cfg = RuntimeConfig(
            machine=self.machine,
            nthreads=self.nthreads,
            threads_per_node=self.threads_per_node,
            cache_enabled=self.cache_enabled,
            cache_capacity=self.cache_capacity,
            cache_policy=self.cache_policy,
            pinning_policy=self.pinning_policy,
            pin_chunk_bytes=self.pin_chunk_bytes,
            piggyback=self.piggyback,
            use_rdma_put=self.use_rdma_put,
            bulk_enabled=self.bulk_enabled,
            bulk_max_inflight=self.bulk_max_inflight,
            bulk_max_coalesce_bytes=self.bulk_max_coalesce_bytes,
            seed=self.seed,
            tracer=self.tracer,
            events=self.events,
            fault_plan=self.fault_plan,
            reliability=self.reliability,
            link_trace=self.link_trace,
            repair_policy=self.repair_policy,
        )
        from repro.sim.simulator import Simulator
        return Runtime(cfg, sim=Simulator(pooled=self.pooled_core))


@dataclass
class DISResult:
    """Outcome of one stressmark run."""

    run: RunResult
    #: Functional output (identical across cache configurations —
    #: the validity check every test relies on).
    check: Any
    #: Per-node cache hit rates (Figure 8 reports "a random thread";
    #: we expose them all and the figure code picks node 0).
    node_hit_rates: Dict[int, float] = field(default_factory=dict)

    @property
    def elapsed_us(self) -> float:
        return self.run.elapsed_us

    @property
    def hit_rate(self) -> float:
        return self.run.cache_stats.hit_rate


def collect_result(rt: Runtime, run: RunResult, check: Any) -> DISResult:
    rates = {
        node.id: rt.addr_cache(node.id).stats.hit_rate
        for node in rt.cluster.nodes
    }
    return DISResult(run=run, check=check, node_hit_rates=rates)
