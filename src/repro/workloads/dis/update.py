"""The Update Stressmark (section 4.4).

    "The Update Stressmark is a pointer-hopping benchmark similar to
    the Pointer Stressmark.  The major difference is that in this code
    more than one remote memory location is read — and one remote
    location is updated — in each hop.  All this is done by UPC thread
    0, while the other threads idle in a barrier.  This benchmark is
    designed to measure the overhead of remote accesses to multiple
    threads."

Because the idle threads sit *inside* the runtime (in the barrier),
their nodes poll the network, so thread 0's AM requests are serviced
promptly — the measured improvement tracks the raw GET/PUT
microbenchmark numbers (11–22 % in Figure 9), not the progress
pathology of Field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.dis.common import DISBase, DISResult, collect_result
from repro.workloads.dis.pointer import _build_chain


@dataclass(frozen=True)
class UpdateParams(DISBase):
    """Update stressmark knobs."""

    nelems: int = 1 << 14
    hops: int = 64
    #: Remote locations *read* per hop ("more than one").
    reads_per_hop: int = 3
    work_us: float = 0.3

    def __post_init__(self) -> None:
        if self.nelems < self.nthreads:
            raise ValueError("need at least one element per thread")
        if self.reads_per_hop < 1:
            raise ValueError("reads_per_hop must be >= 1")


def run_update(p: UpdateParams) -> DISResult:
    rt = p.runtime()
    chain = _build_chain(p.nelems, p.seed)
    out = {}

    def kernel(th):
        arr = yield from th.all_alloc(p.nelems, blocksize=None, dtype="u8")
        if th.id == 0:
            arr.data[:] = chain
        yield from th.barrier()
        if th.id == 0:
            idx = int(th.rng.integers(p.nelems))
            acc = np.uint64(0)
            for hop in range(p.hops):
                # Read several locations along the chain...
                probe = idx
                for _ in range(p.reads_per_hop):
                    v = yield from th.get(arr, probe)
                    acc = np.uint64(acc + np.uint64(v))
                    probe = int(v)
                # ...and update one.  The update is *strict*: the next
                # hop may revisit this location, so the write must be
                # remotely complete before continuing (DIS semantics).
                yield from th.put_strict(arr, idx,
                                         np.uint64(arr.data[idx]))
                yield from th.compute(p.work_us)
                idx = probe
            out["acc"] = int(acc)
            out["idx"] = idx
            yield from th.fence()
        # "the other threads idle in a barrier"
        yield from th.barrier()

    rt.spawn(kernel)
    run = rt.run()
    return collect_result(rt, run, (out.get("acc"), out.get("idx")))
