"""The Field Stressmark (section 4.4).

    "The Field Stressmark emphasizes regular access to large
    quantities of data.  It searches an array of random words for
    token strings, that delimit the sample sets, from which simple
    statistics are collected.  The delimiters themselves are updated
    in memory. ... Parallelization is done in the inner loop, where
    each UPC thread searches the local portion of the data string for
    tokens.  Because a token may span the boundary of two segments
    affine to different threads, the threads must overlap their search
    spaces by at least the width of a token."

Structure per token (the outer loop is sequential, closed by a
barrier):

1. every thread scans its own block — pure *computation*, charged as
   per-word time with a deterministic per-thread jitter.  On a polling
   transport (GM) the node services **no** AM handlers during the
   scan;
2. the thread then reads the ``token_len - 1``-word *overhang* from
   the start of the next thread's block (a remote GET that, without
   the address cache, needs the busy neighbour's CPU — the section
   4.6 pathology) and checks boundary-spanning matches;
3. each match *updates the delimiter* (a PUT to the match location,
   remote only for boundary matches) and bumps local statistics.

On LAPI (interrupt progress) step 2 never waits on the neighbour's
scan, so "the effects of the address cache are not measurable"
(section 4.7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import seeded_rng
from repro.workloads.dis.common import DISBase, DISResult, collect_result


@dataclass(frozen=True)
class FieldParams(DISBase):
    """Field stressmark knobs."""

    #: Words in the string array (blocked: ceil(N/THREADS) per thread).
    nelems: int = 1 << 15
    #: Token width in words.
    token_len: int = 4
    #: Tokens searched (outer sequential loop).
    ntokens: int = 8
    #: Alphabet size (small → matches actually occur).
    alphabet: int = 8
    #: Scan cost per word (the "regular access to large quantities of
    #: data" compute term).
    scan_us_per_word: float = 0.25
    #: Data-dependent scan-time jitter (fraction of the scan) so the
    #: overhang GET lands while the neighbour is still scanning.
    jitter: float = 0.6
    #: Candidate positions in the overlap region verified one word at
    #: a time (each is a separate remote GET — DIS compares the token
    #: against every boundary-spanning alignment).
    boundary_probes: int = 3

    def __post_init__(self) -> None:
        if self.token_len < 2:
            raise ValueError("token_len must be >= 2 to span boundaries")
        if self.nelems < self.nthreads * 2 * self.token_len:
            raise ValueError("array too small for this thread count")


def _count_matches(haystack: np.ndarray, token: np.ndarray) -> int:
    """Positions where ``token`` occurs in ``haystack`` (vectorized)."""
    n, m = len(haystack), len(token)
    if n < m:
        return 0
    hits = np.ones(n - m + 1, dtype=bool)
    for j in range(m):
        hits &= haystack[j:n - m + 1 + j] == token[j]
    return int(hits.sum())


def _match_positions(haystack: np.ndarray, token: np.ndarray) -> np.ndarray:
    n, m = len(haystack), len(token)
    if n < m:
        return np.empty(0, dtype=np.int64)
    hits = np.ones(n - m + 1, dtype=bool)
    for j in range(m):
        hits &= haystack[j:n - m + 1 + j] == token[j]
    return np.nonzero(hits)[0]


def run_field(p: FieldParams) -> DISResult:
    rt = p.runtime()
    rng = seeded_rng(p.seed, 0xF1E1D)
    words = rng.integers(0, p.alphabet, size=p.nelems, dtype=np.uint64)
    tokens = [rng.integers(0, p.alphabet, size=p.token_len,
                           dtype=np.uint64) for _ in range(p.ntokens)]
    blocksize = -(-p.nelems // p.nthreads)
    counts = {}

    def kernel(th):
        arr = yield from th.all_alloc(p.nelems, blocksize=blocksize,
                                      dtype="u8")
        if th.id == 0:
            arr.data[:] = words
        yield from th.barrier()
        lo = th.id * blocksize
        hi = min(lo + blocksize, p.nelems)
        my_words = hi - lo
        total = 0
        for tok_i, token in enumerate(tokens):
            # --- local scan: long compute, NO polling (section 4.6).
            # Scan work is data-dependent per (block, token): the
            # number of candidate delimiters and sample sets varies a
            # lot, so per-token scan times are drawn from a skewed
            # distribution around the mean.  This variability is what
            # turns the missing GM overlap into long overhang waits.
            rate = ((1.0 - p.jitter)
                    + 2.0 * p.jitter * float(th.rng.exponential(0.5)))
            yield from th.compute(my_words * p.scan_us_per_word * rate)
            local = arr.data[lo:hi]
            nmatch = _count_matches(local, token)
            # Update delimiters: the first local match position (if
            # any) is rewritten in shared memory (an affine put).
            pos = _match_positions(local, token)
            if len(pos):
                yield from th.put(arr, lo + int(pos[0]),
                                  np.uint64(arr.data[lo + int(pos[0])]))
            # --- overhang into the next thread's block (remote GET).
            # The string is scanned circularly (the last thread's
            # overhang wraps to thread 0) so every thread's search
            # space — and hence every node's communication behaviour —
            # is identical.
            # The overhang never exceeds one block, so this memget is a
            # single affine segment: the bulk engine passes it through
            # as exactly one message and the calibrated Figure 6/7
            # timings are unchanged.
            over_start = hi % p.nelems
            width = min(p.token_len - 1,
                        arr.layout.blocksize, p.nelems - over_start)
            over = yield from th.memget(arr, over_start, width)
            # Verify each boundary-spanning alignment word by word
            # (separate small GETs, as DIS compares candidate by
            # candidate against the updated delimiter state).
            for probe in range(p.boundary_probes):
                pos = (over_start + probe % max(1, width)) % p.nelems
                _ = yield from th.get(arr, pos)
                yield from th.compute(0.5)
            # Delimiter state at the boundary is *updated in memory*
            # strictly (later readers of the overlap must see it) —
            # the PUT whose trace times were "abnormally large" on GM.
            yield from th.put_strict(arr, over_start,
                                     np.uint64(arr.data[over_start]))
            tail = arr.data[hi - (p.token_len - 1):hi]
            boundary = np.concatenate([tail, np.asarray(over)])
            if hi < p.nelems:  # wrap matches are synthetic; don't count
                nmatch += _count_matches(boundary, token)
            total += nmatch
            # Statistics collection over the sample sets found.
            yield from th.compute(2.0 + 0.2 * nmatch)
            # The outer loop "cannot be parallelized": each thread
            # finishes token k before starting token k+1 (program
            # order); there is no *global* barrier per token, so the
            # uncached overhang waits compound along the run — the
            # effect Paraver exposed in section 4.6.
        counts[th.id] = total
        yield from th.barrier()

    rt.spawn(kernel)
    run = rt.run()
    check = tuple(counts[t] for t in sorted(counts))
    return collect_result(rt, run, check)
