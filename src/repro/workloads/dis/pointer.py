"""The Pointer Stressmark (section 4.4).

    "The Pointer Stressmark is repeatedly following pointers (hops) to
    randomized locations in memory until a condition becomes true.
    The entire process is performed multiple times.  Each UPC thread
    runs the test separately with different starting and ending
    positions on the same shared array."

Every thread chases a chain through the *whole* shared array, so the
set of (handle, remote-node) pairs a thread touches grows with the
machine — the cache-hostile case of Figure 8a: "Pointer and Update
belong to the group of rare UPC applications that unpredictably access
remote memory locations along the whole shared memory space, which
results in address caches that grow with the number of nodes."

The chain is a random permutation cycle (generated untimed, directly
in the data plane), so every hop's value is the next index — the
functional result (each thread's final position) is deterministic and
must be identical with and without the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import seeded_rng
from repro.workloads.dis.common import DISBase, DISResult, collect_result


@dataclass(frozen=True)
class PointerParams(DISBase):
    """Pointer stressmark knobs."""

    #: Words in the shared array.
    nelems: int = 1 << 14
    #: Hops each thread performs ("until a condition becomes true";
    #: we fix the hop count so runs are comparable).
    hops: int = 48
    #: Local work between hops (pointer dereference arithmetic).
    work_us: float = 0.3

    def __post_init__(self) -> None:
        if self.nelems < self.nthreads:
            raise ValueError("need at least one element per thread")
        if self.hops < 1:
            raise ValueError(f"hops must be >= 1, got {self.hops}")


def _build_chain(nelems: int, seed: int) -> np.ndarray:
    """A single random cycle: arr[i] = successor of i."""
    rng = seeded_rng(seed, 0x0D15)
    perm = rng.permutation(nelems)
    chain = np.empty(nelems, dtype=np.uint64)
    chain[perm] = np.roll(perm, -1)
    return chain


def run_pointer(p: PointerParams) -> DISResult:
    """Run the stressmark; returns timing + functional check."""
    rt = p.runtime()
    chain = _build_chain(p.nelems, p.seed)
    finals = {}

    def kernel(th):
        arr = yield from th.all_alloc(p.nelems, blocksize=None, dtype="u8")
        if th.id == 0:
            arr.data[:] = chain      # untimed input generation
        yield from th.barrier()
        # "different starting ... positions on the same shared array"
        idx = int(th.rng.integers(p.nelems))
        for _ in range(p.hops):
            nxt = yield from th.get(arr, idx)
            yield from th.compute(p.work_us)
            idx = int(nxt)
        finals[th.id] = idx
        yield from th.barrier()

    rt.spawn(kernel)
    run = rt.run()
    check = tuple(finals[t] for t in sorted(finals))
    return collect_result(rt, run, check)
