"""GET/PUT latency microbenchmarks (section 4.3).

    "Our first set of experiments sought to quantify the maximum
    benefit obtainable by the address cache.  We wrote and executed
    microbenchmarks to compare GET roundtrip latencies and PUT
    overheads of the XLUPC runtime with and without cache operation."

Setup mirrors the paper: two nodes, *one active thread per node* (the
target thread idles inside the runtime, so it polls — "it ran on 1
active thread in each node", section 4.6).  The first operation warms
the path (pins the object, seeds the cache); the measured mean covers
the subsequent repetitions.

``put_overhead_us`` measures **initiator-visible** time (the paper's
"PUT overheads"): how long until the issuing thread may proceed.  It
forces ``use_rdma_put=True`` in cached mode because Figure 6 is the
experiment that *led* to disabling RDMA PUT on LAPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.params import MachineParams
from repro.runtime.runtime import Runtime, RuntimeConfig

#: Message sizes of Figure 6 (1 B to 4 MB, powers of four).
FIG6_SIZES = [4 ** k for k in range(12)]  # 1 ... 4_194_304
#: Small-message sizes of Figure 7 (1 B to 8 KB, powers of two).
FIG7_SIZES = [2 ** k for k in range(14)]  # 1 ... 8192


@dataclass(frozen=True)
class MicroParams:
    """One microbenchmark point."""

    machine: MachineParams
    msg_bytes: int
    cache_enabled: bool
    reps: int = 20
    warmup: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.msg_bytes < 1:
            raise ValueError(f"msg_bytes must be >= 1, got {self.msg_bytes}")
        if self.reps < 1:
            raise ValueError(f"reps must be >= 1, got {self.reps}")


def _make_runtime(p: MicroParams, use_rdma_put: Optional[bool]) -> Runtime:
    cfg = RuntimeConfig(
        machine=p.machine,
        nthreads=2,
        threads_per_node=1,          # one active thread per node
        cache_enabled=p.cache_enabled,
        use_rdma_put=use_rdma_put,
        seed=p.seed,
    )
    return Runtime(cfg)


def _array_geometry(p: MicroParams):
    """A blocked 2-thread array where thread 1 owns a contiguous
    region of at least ``msg_bytes``."""
    nelems = max(2 * p.msg_bytes, 2)
    blocksize = nelems // 2  # exactly half each
    return nelems, blocksize


def get_roundtrip_us(p: MicroParams) -> float:
    """Mean GET round-trip latency (µs) for one configuration."""
    result = {}
    nelems, blocksize = _array_geometry(p)

    def kernel(th):
        arr = yield from th.all_alloc(nelems, blocksize=blocksize,
                                      dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            remote_index = blocksize  # first element of thread 1
            # Each transfer sits inside thread 1's block — a single
            # affine segment, which the bulk engine never splits or
            # merges, so the calibrated microbenchmark latencies are
            # byte-for-byte those of the serial path.
            for _ in range(p.warmup):
                yield from th.memget(arr, remote_index, p.msg_bytes)
            t0 = th.runtime.sim.now
            for _ in range(p.reps):
                yield from th.memget(arr, remote_index, p.msg_bytes)
            result["mean_us"] = (th.runtime.sim.now - t0) / p.reps
        yield from th.barrier()

    rt = _make_runtime(p, use_rdma_put=None)
    rt.spawn(kernel)
    rt.run()
    return result["mean_us"]


def put_overhead_us(p: MicroParams) -> float:
    """Mean initiator-visible PUT time (µs) for one configuration."""
    result = {}
    nelems, blocksize = _array_geometry(p)
    payload = np.zeros(p.msg_bytes, dtype="u1")

    def kernel(th):
        arr = yield from th.all_alloc(nelems, blocksize=blocksize,
                                      dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            remote_index = blocksize
            # Warm up (also seeds the cache via the GET piggyback so
            # the very first measured PUT can go RDMA).
            yield from th.memget(arr, remote_index, p.msg_bytes)
            for _ in range(p.warmup):
                yield from th.memput(arr, remote_index, payload)
            yield from th.fence()
            t0 = th.runtime.sim.now
            for _ in range(p.reps):
                yield from th.memput(arr, remote_index, payload)
            result["mean_us"] = (th.runtime.sim.now - t0) / p.reps
            yield from th.fence()
        yield from th.barrier()

    # Cached mode forces the RDMA PUT path on (the Figure 6 experiment).
    rt = _make_runtime(p, use_rdma_put=p.cache_enabled or None)
    rt.spawn(kernel)
    rt.run()
    return result["mean_us"]
