"""``python -m repro trace`` — run a workload with the flight recorder.

Examples::

    python -m repro trace pointer --quick --format chrome
    python -m repro trace field --breakdown
    python -m repro trace neighborhood --out traces --format jsonl
    python -m repro trace field --format csv --nthreads 16

Artifacts land in ``--out`` (default ``trace-out/``):

* ``<workload>.trace.json``   — Chrome trace-event JSON (``--format
  chrome``); open in chrome://tracing or Perfetto.  Validated before
  writing.
* ``<workload>.events.jsonl`` — raw event stream (``--format jsonl``).
* ``<workload>.state.csv``    — the legacy Paraver-style state
  intervals (``--format csv``).
* ``<workload>.breakdown.txt``— the latency decomposition table
  (``--breakdown``; also printed).
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Callable, Dict

from repro.network.params import MACHINES
from repro.obs.breakdown import collect_breakdowns, render_breakdown
from repro.obs.events import EventLog, OP_END
from repro.obs.export import dump_jsonl, export_chrome
from repro.obs.sampler import CounterSampler

FORMATS = ("chrome", "jsonl", "csv")


def _cli_nnodes(machine: str, nthreads: int) -> int:
    """Node count a DIS run with machine defaults will use — what
    trace-shape generators need before the Runtime exists."""
    tpn = MACHINES[machine].default_threads_per_node
    return max(1, -(-nthreads // tpn))


def _workload(name: str, quick: bool, machine: str, nthreads: int,
              seed: int, events: EventLog, tracer,
              fault_plan=None, link_trace=None,
              repair_policy=None) -> Callable:
    """Build a zero-argument runner for one DIS stressmark."""
    from repro.workloads import (
        CornerTurnParams,
        FieldParams,
        NeighborhoodParams,
        PointerParams,
        TransitiveParams,
        UpdateParams,
        run_corner_turn,
        run_field,
        run_neighborhood,
        run_pointer,
        run_transitive,
        run_update,
    )

    kw = dict(machine=MACHINES[machine], nthreads=nthreads, seed=seed,
              events=events, tracer=tracer, fault_plan=fault_plan,
              link_trace=link_trace, repair_policy=repair_policy)
    if name == "pointer":
        p = PointerParams(**kw, nelems=1 << 10 if quick else 1 << 14,
                          hops=12 if quick else 48)
        return lambda: run_pointer(p)
    if name == "update":
        p = UpdateParams(**kw, nelems=1 << 10 if quick else 1 << 14,
                         hops=16 if quick else 64)
        return lambda: run_update(p)
    if name == "field":
        p = FieldParams(**kw,
                        nelems=max(2048, nthreads * 16) if quick
                        else 1 << 15,
                        ntokens=2 if quick else 8)
        return lambda: run_field(p)
    if name == "neighborhood":
        p = NeighborhoodParams(**kw, dim=64 if quick else 256,
                               samples=8 if quick else 24,
                               iterations=1 if quick else 2)
        return lambda: run_neighborhood(p)
    if name == "transitive":
        p = TransitiveParams(**kw, nverts=16 if quick else 48)
        return lambda: run_transitive(p)
    if name == "corner_turn":
        p = CornerTurnParams(**kw, dim=32 if quick else 64, tile=8)
        return lambda: run_corner_turn(p)
    raise KeyError(name)


WORKLOADS = ("pointer", "update", "field", "neighborhood",
             "transitive", "corner_turn")


def _trace_sharded(ap, args, formats) -> int:
    """``trace field --shards N``: run the *sharded* event core with
    every shard's flight recorder armed, merge the per-shard logs into
    one timeline and export per-shard track groups plus linked
    cross-shard spans."""
    if args.workload != "field":
        ap.error("--shards supports the 'field' workload only "
                 "(the sharded core's message-passing mix)")
    if args.breakdown:
        ap.error("--breakdown needs the full-runtime recorder; "
                 "it is not available with --shards")
    if "csv" in formats:
        ap.error("csv (Paraver state) export is full-runtime only; "
                 "not available with --shards")
    if args.fault_profile is not None or args.link_trace is not None:
        ap.error("fault plans and link traces run on the full runtime "
                 "only; not available with --shards (use 'python -m "
                 "repro kvtraffic --link-trace' for the sharded core)")

    from repro.obs.export import export_chrome_sharded
    from repro.obs.shardlog import merge_shard_events, xshard_pairs
    from repro.runtime.metrics import RuntimeMetrics
    from repro.workloads.sharded import run_field_sharded

    t0 = time.time()
    res = run_field_sharded(args.nthreads, args.shards,
                            machine=args.machine,
                            mode=args.shard_backend, trace=True,
                            trace_max_events=args.max_events)
    wall = time.time() - t0
    run = res["run"]
    log = merge_shard_events(run.shard_events, run.trace_dropped)
    pairs = xshard_pairs(log)
    linked = sum(1 for s, r in pairs.values()
                 if s is not None and r is not None)

    os.makedirs(args.out, exist_ok=True)
    artifacts = []
    if "chrome" in formats:
        path = os.path.join(args.out, f"{args.workload}.trace.json")
        doc = export_chrome_sharded(log, path)
        artifacts.append(f"{path} ({len(doc['traceEvents'])} chrome "
                         "events, validated)")
    if "jsonl" in formats:
        path = os.path.join(args.out, f"{args.workload}.events.jsonl")
        n = dump_jsonl(log, path)
        artifacts.append(f"{path} ({n} lines)")

    n_ops = sum(1 for e in log if e.kind == OP_END)
    print(f"trace {args.workload} --shards {args.shards} "
          f"({args.shard_backend}): {run.now:.1f} virtual us, "
          f"{run.events} sim events, {len(log)} recorded events "
          f"({log.dropped_events} dropped), {n_ops} ops, "
          f"{len(pairs)} cross-shard msgs ({linked} linked) "
          f"({wall:.1f}s)")
    metrics = RuntimeMetrics()
    metrics.attach_shards(run.metrics)
    s = metrics.shard_summary()
    print(f"  sync: {s['sync_rounds']} rounds, "
          f"{s['sync_stall_grains']} stall grains "
          f"(mean {s['sync_stall_mean']:.2f}/shard), "
          f"{s['channel_msgs']} channel msgs, "
          f"{s['channel_bytes']} channel bytes")
    for line in artifacts:
        print(f"  wrote {line}")
    return 0


def trace_main(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run a DIS stressmark with the protocol flight "
                    "recorder on and export the event trace.")
    ap.add_argument("workload", choices=WORKLOADS,
                    help="which stressmark to record")
    ap.add_argument("--out", default="trace-out", metavar="DIR",
                    help="artifact directory (default trace-out)")
    ap.add_argument("--format", dest="formats", action="append",
                    choices=FORMATS, default=None,
                    help="export format; repeatable "
                         "(default: chrome and jsonl)")
    ap.add_argument("--breakdown", action="store_true",
                    help="render the remote-GET latency decomposition")
    ap.add_argument("--quick", action="store_true",
                    help="small problem sizes (smoke mode)")
    ap.add_argument("--nthreads", type=int, default=8,
                    help="UPC threads (default 8)")
    ap.add_argument("--machine", default="gm",
                    choices=sorted(MACHINES),
                    help="machine model (default gm)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--fault-profile", default=None, metavar="SPEC",
                    help="fault plan: a profile name (drop, dup, delay, "
                         "stall, pin, chaos), inline JSON, or a JSON "
                         "file path (see docs/FAULTS.md)")
    ap.add_argument("--fault-seed", type=int, default=None,
                    help="override the fault plan's RNG seed")
    ap.add_argument("--link-trace", default=None, metavar="SPEC",
                    help="time-evolving link degradation: a shape name "
                         "(flap, burst, degrade, gray), inline JSON, or "
                         "a JSON file path (see docs/FAULTS.md)")
    ap.add_argument("--trace-seed", type=int, default=None,
                    help="override the link trace's seed")
    ap.add_argument("--repair-policy", default=None,
                    choices=("do_nothing", "retransmit_tuning",
                             "disable_and_repair", "path_failover"),
                    help="repair policy acting on per-link health "
                         "(needs --link-trace or --fault-profile)")
    ap.add_argument("--sample-us", type=float, default=100.0,
                    help="counter sampling interval in virtual µs "
                         "(0 disables; default 100)")
    ap.add_argument("--max-events", type=int, default=None,
                    help="flight-recorder memory bound (drop-newest)")
    ap.add_argument("--shards", type=int, default=1,
                    help="run the sharded event core with N shards and "
                         "merge per-shard flight logs (field only)")
    ap.add_argument("--shard-backend", choices=("inproc", "mp"),
                    default="inproc",
                    help="sharded-core backend (default inproc)")
    args = ap.parse_args(argv)
    formats = args.formats or ["chrome", "jsonl"]
    if args.shards > 1:
        return _trace_sharded(ap, args, formats)

    log = EventLog(enabled=True, max_events=args.max_events)
    tracer = None
    if "csv" in formats:
        from repro.trace import Tracer
        tracer = Tracer()
    fault_plan = None
    if args.fault_profile is not None:
        from repro.faults import resolve_profile
        try:
            fault_plan = resolve_profile(args.fault_profile,
                                         fault_seed=args.fault_seed)
        except ValueError as exc:
            ap.error(str(exc))
    link_trace = None
    if args.link_trace is not None:
        from repro.faults import resolve_trace
        try:
            link_trace = resolve_trace(
                args.link_trace,
                _cli_nnodes(args.machine, args.nthreads),
                trace_seed=args.trace_seed)
        except ValueError as exc:
            ap.error(str(exc))
    if args.repair_policy and fault_plan is None and link_trace is None:
        ap.error("--repair-policy needs --link-trace or "
                 "--fault-profile to observe")

    runner = _workload(args.workload, args.quick, args.machine,
                       args.nthreads, args.seed, log, tracer,
                       fault_plan=fault_plan, link_trace=link_trace,
                       repair_policy=args.repair_policy)

    t0 = time.time()
    # The sampler needs the Runtime, which the stressmark builds
    # internally — hook the construction point.
    sampler_box = {}
    if args.sample_us > 0:
        from repro.runtime.runtime import Runtime
        orig_init = Runtime.__init__

        def hooked(self, config, sim=None,
                   _orig=orig_init, _box=sampler_box):
            _orig(self, config, sim)
            if config.events is log and "sampler" not in _box:
                sampler = CounterSampler(self,
                                         interval_us=args.sample_us)
                sampler.start()
                _box["sampler"] = sampler

        Runtime.__init__ = hooked
        try:
            result = runner()
        finally:
            Runtime.__init__ = orig_init
    else:
        result = runner()
    wall = time.time() - t0
    sampler = sampler_box.get("sampler")

    os.makedirs(args.out, exist_ok=True)
    artifacts = []
    if "chrome" in formats:
        path = os.path.join(args.out, f"{args.workload}.trace.json")
        doc = export_chrome(log, path,
                            counters=sampler.samples if sampler else None)
        artifacts.append(f"{path} ({len(doc['traceEvents'])} chrome "
                         "events, validated)")
    if "jsonl" in formats:
        path = os.path.join(args.out, f"{args.workload}.events.jsonl")
        n = dump_jsonl(log, path)
        artifacts.append(f"{path} ({n} lines)")
    if "csv" in formats and tracer is not None:
        from repro.trace import dump_csv
        path = os.path.join(args.out, f"{args.workload}.state.csv")
        n = dump_csv(tracer, path)
        artifacts.append(f"{path} ({n} state intervals)")

    run = result.run
    n_ops = sum(1 for e in log if e.kind == OP_END)
    print(f"trace {args.workload}: {run.elapsed_us:.1f} virtual us, "
          f"{run.sim_events} sim events, {len(log)} recorded events "
          f"({log.dropped_events} dropped), {n_ops} ops, "
          f"{len(sampler.samples) if sampler else 0} counter samples "
          f"({wall:.1f}s)")
    if fault_plan is not None or link_trace is not None:
        m = run.metrics
        print(f"  faults: {m.faults_injected} injected, "
              f"{m.timeouts} timeouts, {m.retries} retries, "
              f"{m.rdma_timeouts} rdma->am fallbacks, "
              f"{m.pin_degrades} degraded handles")
        noisy = m.noisy_links(3)
        if noisy:
            links = ", ".join(
                f"{r['src']}->{r['dst']} ({r['timeouts']}t/"
                f"{r['retries']}r)" for r in noisy)
            print(f"  noisy links: {links}")
    if args.repair_policy:
        m = run.metrics
        print(f"  policy {args.repair_policy}: {m.policy_actions} "
              f"action(s), {m.kv_failover_ops} kv failover op(s)")
    for line in artifacts:
        print(f"  wrote {line}")

    if args.breakdown:
        table = render_breakdown(collect_breakdowns(log))
        print(table)
        path = os.path.join(args.out, f"{args.workload}.breakdown.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"  wrote {path}")
    return 0
