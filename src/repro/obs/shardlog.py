"""Shard-aware tracing: merging per-shard flight logs into one timeline.

Every :class:`~repro.sim.shard.ShardContext` runs its own
:class:`~repro.obs.events.EventLog`; at the end of a sharded run each
worker packs its events into plain tuples (picklable across the
``PipeChannel`` protocol) and the coordinator hands the per-shard
batches back in :class:`~repro.sim.shard.ShardedRun.shard_events`.
This module turns those batches into **one global timeline**:

* events are merged under the total key ``(time, shard, seq)`` where
  ``seq`` is the event's position in its shard's log — deterministic
  whatever the backend (the per-shard logs themselves are bit-identical
  between ``mp`` and ``inproc``, so the merge is too);
* every merged event gains a ``shard`` attr (its track group in the
  Chrome export);
* per-shard causal ``op_id``s are disjoint *within* a shard but collide
  *across* shards — the merge remaps ``op -> op * nshards + shard``,
  which is collision-free and order-preserving per shard;
* :func:`xshard_pairs` joins ``xshard_send``/``xshard_recv`` halves by
  their ``(src, seq)`` message key — the linked spans the exporter
  renders.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (EventLog, TraceEvent, XSHARD_RECV,
                              XSHARD_SEND)


def pack_events(log: EventLog) -> List[tuple]:
    """Flatten a log to plain picklable tuples (workers ship these
    back instead of ``TraceEvent`` objects — no ``__slots__`` pickle
    surprises, no class version coupling across processes)."""
    return [(e.t, e.kind, e.op, e.thread, e.node, e.attrs)
            for e in log.events]


def merge_shard_events(shard_events: Sequence[Sequence[tuple]],
                       dropped: int = 0) -> EventLog:
    """Merge per-shard packed event batches into one global log.

    ``shard_events[i]`` is shard *i*'s packed log (see
    :func:`pack_events`).  The result is sorted by ``(t, shard, seq)``
    — a total, transport-independent order — with each event's
    ``attrs`` gaining its ``shard`` and its op id remapped to the
    collision-free global space.
    """
    nshards = max(len(shard_events), 1)
    keyed: List[Tuple[float, int, int, TraceEvent]] = []
    for shard, batch in enumerate(shard_events):
        for seq, (t, kind, op, thread, node, attrs) in enumerate(batch):
            attrs = dict(attrs or {})
            attrs["shard"] = shard
            gop = op * nshards + shard if op >= 0 else -1
            keyed.append((t, shard, seq,
                          TraceEvent(t, kind, gop, thread, node, attrs)))
    keyed.sort(key=lambda item: item[:3])
    log = EventLog(enabled=True)
    log.events = [item[3] for item in keyed]
    log.dropped_events = dropped
    return log


def xshard_pairs(log: EventLog) -> Dict[Tuple[int, int],
                                        Tuple[Optional[TraceEvent],
                                              Optional[TraceEvent]]]:
    """Join cross-shard send/recv halves by their ``(src, seq)`` key.

    Returns ``{(src, seq): (send_event, recv_event)}``; a half may be
    ``None`` when its partner was dropped at the ``max_events`` cap —
    consumers must treat one-sided entries as truncation, not bugs.
    """
    pairs: Dict[Tuple[int, int], List[Optional[TraceEvent]]] = {}
    for e in log:
        if e.kind == XSHARD_SEND:
            key = (e.attrs["src"], e.attrs["seq"])
            pairs.setdefault(key, [None, None])[0] = e
        elif e.kind == XSHARD_RECV:
            key = (e.attrs["src"], e.attrs["seq"])
            pairs.setdefault(key, [None, None])[1] = e
    return {k: (v[0], v[1]) for k, v in pairs.items()}
