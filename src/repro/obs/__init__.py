"""Protocol flight recorder: op-level event tracing and analysis.

``repro.obs`` is the observability layer over the simulated XLUPC
runtime: a structured :class:`EventLog` every protocol layer emits
typed, timestamped, causally-linked events into, plus the analyzers
and exporters on top — latency breakdowns (:mod:`repro.obs.breakdown`),
Chrome-trace / JSONL export (:mod:`repro.obs.export`) and counter
time-series sampling (:mod:`repro.obs.sampler`).

Enable it by passing an ``EventLog`` into
:class:`~repro.runtime.runtime.RuntimeConfig` (or a DIS workload's
``events`` field), or from the shell::

    python -m repro trace field --breakdown

The sharded PDES core is covered too: each shard runs its own log,
:mod:`repro.obs.shardlog` merges the per-shard batches into one global
timeline (cross-shard sends/recvs join into linked spans), and
:mod:`repro.obs.slo` watches service completion streams with rolling
SLO windows, burn rates and anomaly flags.  ``python -m repro report
<run-dir>`` (:mod:`repro.obs.report`) renders everything a traced run
left behind as one unified artifact::

    python -m repro trace field --shards 2 --format chrome
    python -m repro kvtraffic --slo-target-us 30 --trace-dir out/
    python -m repro report out/
"""

from repro.obs.breakdown import (
    BreakdownSummary,
    ComponentStats,
    OpBreakdown,
    REMOTE_PROTOS,
    collect_breakdowns,
    render_breakdown,
    summarize,
)
from repro.obs.events import (
    AM_RECV,
    AM_REPLY_RECV,
    AM_REPLY_SEND,
    AM_SEND,
    BARRIER_ARRIVE,
    BARRIER_RELEASE,
    BULK_DRAIN,
    BULK_ISSUE,
    BULK_PLAN,
    CACHE_EVICT,
    CACHE_INVALIDATE,
    CACHE_LOOKUP,
    CACHE_SEED,
    COMP_HANDLER,
    COMP_PIGGYBACK,
    COMP_QUEUE,
    COMP_SOFTWARE,
    COMP_WIRE,
    COMPONENTS,
    COUNTER,
    DEGRADE,
    EventLog,
    FAULT_INJECT,
    HANDLER_BEGIN,
    HANDLER_END,
    OP_BEGIN,
    OP_END,
    PHASE,
    PIN,
    POLICY_ACTION,
    QUEUE_ENTER,
    QUEUE_LEAVE,
    RDMA_COMPLETE,
    RDMA_ISSUE,
    RETRY,
    SYNC_ROUND,
    TIMEOUT,
    TraceEvent,
    UNPIN,
    XSHARD_RECV,
    XSHARD_SEND,
)
from repro.obs.export import (
    CHROME_PHASES,
    HANDLER_TID,
    SYNC_TID,
    XSHARD_TID,
    dump_jsonl,
    export_chrome,
    export_chrome_sharded,
    load_jsonl,
    validate_chrome,
)
from repro.obs.sampler import CounterSampler
from repro.obs.shardlog import (
    merge_shard_events,
    pack_events,
    xshard_pairs,
)
from repro.obs.slo import (
    SLOMonitor,
    SLOWindow,
    detect_anomalies,
    render_slo,
    slo_summary,
    window_stats,
)

__all__ = [
    "EventLog",
    "TraceEvent",
    "CounterSampler",
    "OpBreakdown",
    "ComponentStats",
    "BreakdownSummary",
    "collect_breakdowns",
    "summarize",
    "render_breakdown",
    "export_chrome",
    "validate_chrome",
    "dump_jsonl",
    "load_jsonl",
    "CHROME_PHASES",
    "HANDLER_TID",
    "REMOTE_PROTOS",
    "COMPONENTS",
    "COMP_SOFTWARE",
    "COMP_QUEUE",
    "COMP_WIRE",
    "COMP_HANDLER",
    "COMP_PIGGYBACK",
    "OP_BEGIN",
    "OP_END",
    "PHASE",
    "CACHE_LOOKUP",
    "CACHE_SEED",
    "CACHE_EVICT",
    "CACHE_INVALIDATE",
    "PIN",
    "UNPIN",
    "AM_SEND",
    "AM_RECV",
    "AM_REPLY_SEND",
    "AM_REPLY_RECV",
    "RDMA_ISSUE",
    "RDMA_COMPLETE",
    "QUEUE_ENTER",
    "QUEUE_LEAVE",
    "HANDLER_BEGIN",
    "HANDLER_END",
    "BULK_PLAN",
    "BULK_ISSUE",
    "BULK_DRAIN",
    "COUNTER",
    "FAULT_INJECT",
    "TIMEOUT",
    "RETRY",
    "DEGRADE",
    "POLICY_ACTION",
    "XSHARD_SEND",
    "XSHARD_RECV",
    "SYNC_ROUND",
    "BARRIER_ARRIVE",
    "BARRIER_RELEASE",
    "SYNC_TID",
    "XSHARD_TID",
    "export_chrome_sharded",
    "pack_events",
    "merge_shard_events",
    "xshard_pairs",
    "SLOMonitor",
    "SLOWindow",
    "detect_anomalies",
    "window_stats",
    "slo_summary",
    "render_slo",
]
