"""Flight-recorder exporters: Chrome trace-event JSON and JSONL.

* :func:`export_chrome` renders the log in the Chrome trace-event
  format (the JSON array flavour) — open ``chrome://tracing`` or
  https://ui.perfetto.dev and drop the file in.  One track per UPC
  thread, plus a per-node handler/NIC track; every remote operation
  becomes a span on the initiating thread's track and its target
  handler a span on the target node's track, both carrying the causal
  ``op_id`` in ``args`` (the initiator→target link).
* :func:`dump_jsonl` / :func:`load_jsonl` move the raw event stream in
  and out of newline-delimited JSON for ad-hoc pandas work; the round
  trip reproduces an equivalent :class:`~repro.obs.events.EventLog`.
* :func:`validate_chrome` is the schema check the CI smoke job (and
  the exporter itself) runs: phase letters, timestamp monotonicity,
  begin/end balance.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.obs.events import (
    AM_REPLY_SEND,
    BARRIER_ARRIVE,
    BARRIER_RELEASE,
    EventLog,
    HANDLER_BEGIN,
    HANDLER_END,
    OP_BEGIN,
    OP_END,
    SYNC_ROUND,
    TraceEvent,
    XSHARD_RECV,
    XSHARD_SEND,
)

#: Trace-event phases the exporter emits / the validator accepts.
CHROME_PHASES = ("B", "E", "X", "C", "M")

#: Op names rendered as B/E pairs (strictly sequential per thread —
#: safe to nest); everything else is a complete "X" span, which stays
#: valid even when split-phase/bulk sub-ops overlap on one thread.
_NESTED_NAMES = ("barrier", "lock", "compute")

#: Synthetic tid for the per-node handler/NIC track.
HANDLER_TID = 1_000_000

#: Synthetic tids inside a shard's track group (sharded exports): the
#: conservative-sync round/barrier-window track and the cross-shard
#: message track.
SYNC_TID = 1_000_001
XSHARD_TID = 1_000_002


def _span_name(begin: TraceEvent, end: Optional[TraceEvent]) -> str:
    name = str(begin.attrs.get("name", "op"))
    proto = end.attrs.get("proto") if end is not None else None
    return f"{name}:{proto}" if proto else name


def export_chrome(log: EventLog, dest: Union[str, TextIO, None] = None,
                  counters: Optional[list] = None) -> dict:
    """Build (and optionally write) the Chrome trace-event document.

    ``counters`` is an optional list of ``(t, node, name, value)``
    samples (see :class:`~repro.obs.sampler.CounterSampler`) rendered
    as "C" counter events.  The document is validated before being
    returned/written; an invalid document raises ``ValueError`` —
    exports are never silently malformed.
    """
    events: List[dict] = []
    meta: List[dict] = []
    seen_tracks: set = set()
    begins: Dict[int, TraceEvent] = {}
    handler_open: Dict[Tuple[int, int], List[TraceEvent]] = {}
    piggy_ops: set = set()

    def track(pid: int, tid: int, name: str) -> None:
        if (pid, tid) in seen_tracks:
            return
        seen_tracks.add((pid, tid))
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "tid": 0, "ts": 0,
                     "args": {"name": f"node {pid}"}})
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid, "ts": 0, "args": {"name": name}})

    for e in log:
        if e.kind == OP_BEGIN:
            begins[e.op] = e
        elif e.kind == OP_END:
            b = begins.pop(e.op, None)
            if b is None:
                continue
            pid, tid = max(b.node, 0), max(b.thread, 0)
            track(pid, tid, f"upc thread {tid}")
            name = _span_name(b, e)
            args = {"op_id": e.op}
            for k in ("nbytes", "proto", "index", "segments", "parent"):
                v = e.attrs.get(k, b.attrs.get(k))
                if v is not None:
                    args[k] = v
            if e.op in piggy_ops:
                args["piggyback"] = True
            if b.attrs.get("name") in _NESTED_NAMES:
                events.append({"ph": "B", "name": name, "pid": pid,
                               "tid": tid, "ts": b.t, "args": args})
                events.append({"ph": "E", "name": name, "pid": pid,
                               "tid": tid, "ts": e.t, "args": {}})
            else:
                events.append({"ph": "X", "name": name, "pid": pid,
                               "tid": tid, "ts": b.t,
                               "dur": max(e.t - b.t, 0.0), "args": args})
        elif e.kind == HANDLER_BEGIN:
            handler_open.setdefault((e.op, e.node), []).append(e)
        elif e.kind == HANDLER_END:
            stack = handler_open.get((e.op, e.node))
            if not stack:
                continue
            b = stack.pop()
            pid = max(e.node, 0)
            track(pid, HANDLER_TID, "am handler / nic")
            events.append({
                "ph": "X", "name": "am_handler", "pid": pid,
                "tid": HANDLER_TID, "ts": b.t,
                "dur": max(e.t - b.t, 0.0),
                "args": {"op_id": e.op},
            })
        elif e.kind == AM_REPLY_SEND and e.attrs.get("piggyback"):
            piggy_ops.add(e.op)

    if counters:
        for t, node, name, value in counters:
            pid = max(int(node), 0)
            events.append({"ph": "C", "name": str(name), "pid": pid,
                           "tid": 0, "ts": float(t),
                           "args": {"value": float(value)}})

    events.sort(key=lambda d: d["ts"])
    doc = {"traceEvents": meta + events, "displayTimeUnit": "ms"}
    problems = validate_chrome(doc)
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems))
    if dest is not None:
        if isinstance(dest, str):
            with open(dest, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        else:
            json.dump(doc, dest)
    return doc


def export_chrome_sharded(log: EventLog,
                          dest: Union[str, TextIO, None] = None) -> dict:
    """Chrome trace-event document for a **merged shard timeline**
    (see :mod:`repro.obs.shardlog`).

    Track groups are *shards*, not nodes: ``pid = shard``, with each
    shard's UPC-thread/workload-op tracks plus two synthetic tracks —

    * ``sync rounds`` (:data:`SYNC_TID`): one span per conservative
      grain (``sync_round``), named ``sync_stall`` when the grain
      processed zero events (the barrier-window stalls §conservative
      sync makes unavoidable), plus barrier arrive/release markers;
    * ``cross-shard msgs`` (:data:`XSHARD_TID`): the send half spans
      the wire time and the receive half marks the arrival — both
      carry ``args.link = "src:seq"``, the key that joins the two
      halves of one message across shard track groups.

    The document is validated before being returned/written.
    """
    events: List[dict] = []
    meta: List[dict] = []
    seen_tracks: set = set()
    begins: Dict[int, TraceEvent] = {}

    def track(pid: int, tid: int, name: str) -> None:
        if (pid, tid) in seen_tracks:
            return
        seen_tracks.add((pid, tid))
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "tid": 0, "ts": 0,
                     "args": {"name": f"shard {pid}"}})
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid, "ts": 0, "args": {"name": name}})

    for e in log:
        pid = int(e.attrs.get("shard", 0))
        if e.kind == OP_BEGIN:
            begins[e.op] = e
        elif e.kind == OP_END:
            b = begins.pop(e.op, None)
            if b is None:
                continue
            bpid = int(b.attrs.get("shard", pid))
            tid = max(b.thread, 0)
            track(bpid, tid, f"upc thread {tid}")
            args = {"op_id": e.op}
            for k in ("node", "proto", "nbytes"):
                v = e.attrs.get(k, b.attrs.get(k))
                if v is not None:
                    args[k] = v
            if b.node >= 0:
                args["node"] = b.node
            events.append({"ph": "X", "name": _span_name(b, e),
                           "pid": bpid, "tid": tid, "ts": b.t,
                           "dur": max(e.t - b.t, 0.0), "args": args})
        elif e.kind == SYNC_ROUND:
            track(pid, SYNC_TID, "sync rounds")
            stall = bool(e.attrs.get("stall"))
            args = {"round": e.attrs.get("round", 0),
                    "events": e.attrs.get("events", 0),
                    "delivered": e.attrs.get("delivered", 0)}
            if "horizon" in e.attrs:
                args["horizon"] = e.attrs["horizon"]
            events.append({"ph": "X",
                           "name": "sync_stall" if stall else "sync_round",
                           "pid": pid, "tid": SYNC_TID, "ts": e.t,
                           "dur": max(float(e.attrs.get("dur", 0.0)), 0.0),
                           "args": args})
        elif e.kind in (BARRIER_ARRIVE, BARRIER_RELEASE):
            track(pid, SYNC_TID, "sync rounds")
            events.append({"ph": "X", "name": e.kind, "pid": pid,
                           "tid": SYNC_TID, "ts": e.t, "dur": 0.0,
                           "args": {"name": str(e.attrs.get("name", ""))}})
        elif e.kind == XSHARD_SEND:
            track(pid, XSHARD_TID, "cross-shard msgs")
            link = f"{e.attrs['src']}:{e.attrs['seq']}"
            events.append({
                "ph": "X", "name": f"xshard:{e.attrs.get('msg', '?')}",
                "pid": pid, "tid": XSHARD_TID, "ts": e.t,
                "dur": max(float(e.attrs.get("arrival", e.t)) - e.t, 0.0),
                "args": {"link": link, "dst": e.attrs.get("dst"),
                         "nbytes": e.attrs.get("nbytes", 0)}})
        elif e.kind == XSHARD_RECV:
            track(pid, XSHARD_TID, "cross-shard msgs")
            link = f"{e.attrs['src']}:{e.attrs['seq']}"
            events.append({
                "ph": "X",
                "name": f"xshard:{e.attrs.get('msg', '?')}:recv",
                "pid": pid, "tid": XSHARD_TID, "ts": e.t, "dur": 0.0,
                "args": {"link": link, "src": e.attrs.get("src"),
                         "nbytes": e.attrs.get("nbytes", 0)}})

    events.sort(key=lambda d: d["ts"])
    doc = {"traceEvents": meta + events, "displayTimeUnit": "ms"}
    problems = validate_chrome(doc)
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems))
    if dest is not None:
        if isinstance(dest, str):
            with open(dest, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        else:
            json.dump(doc, dest)
    return doc


def validate_chrome(doc: object) -> List[str]:
    """Schema check for a trace-event document; returns problems
    (empty list == valid).

    Checks: top-level shape, phase letters limited to B/E/X/C/M,
    numeric non-decreasing ``ts`` (metadata aside), non-negative "X"
    durations, and B/E balance per (pid, tid) track.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not a dict with a traceEvents list"]
    evs = doc["traceEvents"]
    if not isinstance(evs, list):
        return ["traceEvents is not a list"]
    last_ts = None
    stacks: Dict[Tuple, List[str]] = {}
    for i, e in enumerate(evs):
        if not isinstance(e, dict):
            problems.append(f"event #{i} is not an object")
            continue
        ph = e.get("ph")
        if ph not in CHROME_PHASES:
            problems.append(f"event #{i} has phase {ph!r} "
                            f"(allowed: {'/'.join(CHROME_PHASES)})")
            continue
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event #{i} has non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event #{i} ts {ts} < previous {last_ts} "
                "(not monotone)")
        last_ts = ts
        if ph == "X" and e.get("dur", 0) < 0:
            problems.append(f"event #{i} has negative dur")
        if not isinstance(e.get("name"), str):
            problems.append(f"event #{i} has no string name")
        key = (e.get("pid"), e.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(e.get("name", ""))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(
                    f"event #{i}: E without matching B on track {key}")
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(
                f"track {key}: {len(stack)} unclosed B event(s)")
    return problems


# -- JSONL -------------------------------------------------------------

def _jsonable(value):
    """Coerce numpy scalars and other int/float-likes for json."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def dump_jsonl(log: EventLog, dest: Union[str, TextIO]) -> int:
    """One event per line; returns the number of lines written."""
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as fh:
            return dump_jsonl(log, fh)
    n = 0
    for e in log:
        record = {"t": e.t, "kind": e.kind, "op": e.op,
                  "thread": e.thread, "node": e.node,
                  "attrs": {k: _jsonable(v) for k, v in e.attrs.items()}}
        dest.write(json.dumps(record) + "\n")
        n += 1
    if log.dropped_events:
        dest.write(json.dumps({"kind": "meta",
                               "dropped_events": log.dropped_events})
                   + "\n")
        n += 1
    return n


def load_jsonl(src: Union[str, TextIO]) -> EventLog:
    """Inverse of :func:`dump_jsonl`: an equivalent EventLog."""
    if isinstance(src, str):
        with open(src, encoding="utf-8") as fh:
            return load_jsonl(fh)
    log = EventLog()
    for line in src:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("kind") == "meta":
            log.dropped_events = int(rec.get("dropped_events", 0))
            continue
        log.append(TraceEvent(
            t=float(rec["t"]), kind=rec["kind"], op=int(rec["op"]),
            thread=int(rec["thread"]), node=int(rec["node"]),
            attrs=rec.get("attrs") or {}))
    return log
