"""``python -m repro report <run-dir>`` — one unified run report.

A *run directory* is whatever a traced run left behind; the report
command stitches every artifact it recognizes into one text + JSON
summary:

* ``*.events.jsonl``      — merged flight-recorder streams (from
  ``trace ... --shards N`` or ``kvtraffic --trace-dir``): op-latency
  breakdown by span name, per-shard event/op rollups, cross-shard
  message pairing, conservative-sync round/stall stats;
* ``slo.json``            — the SLO monitor's windows, summary and
  anomaly flags (from ``kvtraffic --slo-target-us``);
* ``shard_summary.json``  — the sharded core's metric rollup
  (sync rounds, channel traffic, per-shard clocks);
* ``links.json``          — per-link health totals, exhausted
  requests and repair-policy decisions (from ``kvtraffic
  --link-trace``);
* ``campaign.json``       — a sweep campaign's manifest (from
  ``python -m repro campaign``): per-cell statuses and the spec
  that produced them.

Output is ``report.txt`` (also printed) and ``report.json`` in the
same directory, so a CI artifact of the run dir is self-describing.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Dict, List, Optional

from repro.obs.events import (
    EventLog,
    OP_BEGIN,
    OP_END,
    SYNC_ROUND,
    XSHARD_RECV,
    XSHARD_SEND,
)
from repro.obs.export import load_jsonl
from repro.obs.shardlog import xshard_pairs
from repro.obs.slo import render_slo


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(int(q * len(sorted_vals)), len(sorted_vals) - 1)
    return sorted_vals[idx]


def op_latency_table(log: EventLog) -> List[dict]:
    """Per-span-name latency rollup from OP_BEGIN/OP_END pairs."""
    begins: Dict[int, object] = {}
    durs: Dict[str, List[float]] = {}
    for e in log:
        if e.op < 0:
            continue
        if e.kind == OP_BEGIN:
            begins[e.op] = e
        elif e.kind == OP_END:
            b = begins.pop(e.op, None)
            if b is None:
                continue
            name = str(b.attrs.get("name", "op"))
            durs.setdefault(name, []).append(max(e.t - b.t, 0.0))
    rows = []
    for name in sorted(durs):
        vals = sorted(durs[name])
        rows.append({
            "name": name,
            "count": len(vals),
            "mean_us": sum(vals) / len(vals),
            "p50_us": _percentile(vals, 0.50),
            "p99_us": _percentile(vals, 0.99),
            "max_us": vals[-1],
        })
    return rows


def shard_rollups(log: EventLog) -> List[dict]:
    """Per-shard event/op/cross-shard counts from a merged log (the
    ``shard`` attr every merged event carries)."""
    by_shard: Dict[int, dict] = {}
    for e in log:
        shard = int(e.attrs.get("shard", 0))
        r = by_shard.get(shard)
        if r is None:
            r = by_shard[shard] = {
                "shard": shard, "events": 0, "ops": 0, "sends": 0,
                "recvs": 0, "sync_rounds": 0, "stall_rounds": 0,
                "t_last_us": 0.0}
        r["events"] += 1
        r["t_last_us"] = max(r["t_last_us"], e.t)
        if e.kind == OP_END:
            r["ops"] += 1
        elif e.kind == XSHARD_SEND:
            r["sends"] += 1
        elif e.kind == XSHARD_RECV:
            r["recvs"] += 1
        elif e.kind == SYNC_ROUND:
            r["sync_rounds"] += 1
            if e.attrs.get("stall"):
                r["stall_rounds"] += 1
    return [by_shard[s] for s in sorted(by_shard)]


def xshard_stats(log: EventLog) -> dict:
    """Cross-shard message pairing + latency stats."""
    pairs = xshard_pairs(log)
    lats = sorted(r.t - s.t for s, r in pairs.values()
                  if s is not None and r is not None)
    return {
        "msgs": len(pairs),
        "linked": len(lats),
        "unpaired": len(pairs) - len(lats),
        "latency_p50_us": _percentile(lats, 0.50),
        "latency_p99_us": _percentile(lats, 0.99),
    }


def analyze_events(path: str) -> dict:
    log = load_jsonl(path)
    return {
        "path": os.path.basename(path),
        "events": len(log),
        "dropped": log.dropped_events,
        "ops": op_latency_table(log),
        "shards": shard_rollups(log),
        "xshard": xshard_stats(log),
    }


def _render_events(a: dict) -> List[str]:
    lines = [f"events: {a['path']} — {a['events']} events "
             f"({a['dropped']} dropped)"]
    if a["ops"]:
        lines.append(f"  {'span':<14} {'count':>7} {'mean_us':>9} "
                     f"{'p50_us':>8} {'p99_us':>8} {'max_us':>9}")
        for r in a["ops"]:
            lines.append(
                f"  {r['name']:<14} {r['count']:>7} "
                f"{r['mean_us']:>9.2f} {r['p50_us']:>8.2f} "
                f"{r['p99_us']:>8.2f} {r['max_us']:>9.2f}")
    if len(a["shards"]) > 1 or a["xshard"]["msgs"]:
        lines.append(f"  {'shard':>5} {'events':>7} {'ops':>6} "
                     f"{'sends':>6} {'recvs':>6} {'rounds':>7} "
                     f"{'stalls':>6} {'t_last_us':>10}")
        for r in a["shards"]:
            lines.append(
                f"  {r['shard']:>5} {r['events']:>7} {r['ops']:>6} "
                f"{r['sends']:>6} {r['recvs']:>6} "
                f"{r['sync_rounds']:>7} {r['stall_rounds']:>6} "
                f"{r['t_last_us']:>10.1f}")
        x = a["xshard"]
        lines.append(
            f"  cross-shard: {x['msgs']} msgs, {x['linked']} linked "
            f"({x['unpaired']} unpaired), wire p50="
            f"{x['latency_p50_us']:.2f}us p99="
            f"{x['latency_p99_us']:.2f}us")
    return lines


def _render_shard_summary(s: dict) -> List[str]:
    lines = [f"shards: {s.get('shards', 0)} — "
             f"{s.get('sync_rounds', 0)} sync rounds, "
             f"{s.get('sync_stall_grains', 0)} stall grains "
             f"(mean {s.get('sync_stall_mean', 0.0):.2f}/shard)"]
    lines.append(
        f"  events total={s.get('shard_events_total', 0)} "
        f"mean={s.get('shard_events_mean', 0.0):.0f} "
        f"max={s.get('shard_events_max', 0)}; channel "
        f"{s.get('channel_msgs', 0)} msgs / "
        f"{s.get('channel_bytes', 0):,} bytes; max backlog "
        f"{s.get('shard_max_backlog', 0)}; final clock "
        f"{s.get('shard_final_clock_us', 0.0):.1f}us")
    return lines


def _render_links(doc: dict) -> List[str]:
    """Per-link health + repair-policy rollup from links.json."""
    links = doc.get("links", {})
    noisy = sorted(
        links.items(),
        key=lambda kv: (-kv[1]["timeouts"], -kv[1]["retries"], kv[0]))
    lines = [f"links: {len(links)} observed, "
             f"{doc.get('failures', 0)} exhausted request(s)"]
    if noisy:
        lines.append(f"  {'link':<8} {'attempts':>9} {'timeouts':>9} "
                     f"{'retries':>8} {'deliveries':>11}")
        for link, tot in noisy[:5]:
            lines.append(
                f"  {link:<8} {tot['attempts']:>9} "
                f"{tot['timeouts']:>9} {tot['retries']:>8} "
                f"{tot['deliveries']:>11}")
    policy = doc.get("policy")
    if policy:
        lines.append(f"  policy {policy['name']}: "
                     f"{len(policy.get('decisions', []))} decision(s), "
                     f"digest {int(policy['digest']):#018x}")
        for d in policy.get("decisions", [])[:8]:
            lines.append(
                f"    t={d['t_us']:>9.1f}us {d['src']}->{d['dst']} "
                f"{d['action']} -> {d['mode']}")
    return lines


def _render_campaign(doc: dict) -> List[str]:
    """Per-cell status rollup from a campaign.json manifest."""
    cells = doc.get("cells", [])
    statuses: Dict[str, int] = {}
    for c in cells:
        statuses[c["status"]] = statuses.get(c["status"], 0) + 1
    rollup = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
    lines = [f"campaign: {doc.get('campaign', '?')} — "
             f"{doc.get('n_cells', len(cells))} cell(s), "
             f"{doc.get('workers', '?')} worker(s); {rollup or 'none'}"]
    bad = [c for c in cells if c["status"] not in ("ok",)]
    for c in bad[:8]:
        lines.append(f"  [{c['status']}] {c['id']}")
    return lines


def build_report(run_dir: str) -> dict:
    """Scan ``run_dir`` and assemble the unified report dict."""
    report: dict = {"run_dir": os.path.abspath(run_dir),
                    "events": [], "slo": None, "shard_summary": None,
                    "links": None, "campaign": None}
    for path in sorted(glob.glob(os.path.join(run_dir,
                                              "*.events.jsonl"))):
        report["events"].append(analyze_events(path))
    slo_path = os.path.join(run_dir, "slo.json")
    if os.path.exists(slo_path):
        with open(slo_path, encoding="utf-8") as fh:
            report["slo"] = json.load(fh)
    ss_path = os.path.join(run_dir, "shard_summary.json")
    if os.path.exists(ss_path):
        with open(ss_path, encoding="utf-8") as fh:
            report["shard_summary"] = json.load(fh)
    links_path = os.path.join(run_dir, "links.json")
    if os.path.exists(links_path):
        with open(links_path, encoding="utf-8") as fh:
            report["links"] = json.load(fh)
    campaign_path = os.path.join(run_dir, "campaign.json")
    if os.path.exists(campaign_path):
        with open(campaign_path, encoding="utf-8") as fh:
            report["campaign"] = json.load(fh)
    return report


def render_report(report: dict) -> str:
    lines = [f"run report: {report['run_dir']}"]
    if report["shard_summary"]:
        lines.append("")
        lines.extend(_render_shard_summary(report["shard_summary"]))
    for a in report["events"]:
        lines.append("")
        lines.extend(_render_events(a))
    if report["slo"]:
        s = report["slo"]
        lines.append("")
        lines.append(render_slo(s["windows"], s["summary"],
                                s.get("anomalies", [])))
    if report.get("links"):
        lines.append("")
        lines.extend(_render_links(report["links"]))
    if report.get("campaign"):
        lines.append("")
        lines.extend(_render_campaign(report["campaign"]))
    if not (report["events"] or report["slo"]
            or report["shard_summary"] or report.get("links")
            or report.get("campaign")):
        lines.append("  (no recognized artifacts — expected "
                     "*.events.jsonl, slo.json, shard_summary.json, "
                     "links.json or campaign.json)")
    return "\n".join(lines)


def report_main(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render one unified report (text + JSON) from a "
                    "traced run directory: latency breakdown, SLO "
                    "windows, per-shard rollups, anomaly flags.")
    ap.add_argument("run_dir", metavar="RUN-DIR",
                    help="directory holding run artifacts "
                         "(*.events.jsonl, slo.json, "
                         "shard_summary.json)")
    ap.add_argument("--out", default=None, metavar="DIR",
                    help="where to write report.txt/report.json "
                         "(default: the run dir itself)")
    args = ap.parse_args(argv)
    if not os.path.isdir(args.run_dir):
        ap.error(f"not a directory: {args.run_dir}")

    report = build_report(args.run_dir)
    text = render_report(report)
    out_dir = args.out or args.run_dir
    os.makedirs(out_dir, exist_ok=True)
    txt_path = os.path.join(out_dir, "report.txt")
    json_path = os.path.join(out_dir, "report.json")
    from repro.campaign.artifacts import atomic_write_json
    with open(txt_path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    atomic_write_json(json_path, report, indent=1, sort_keys=True)
    print(text)
    print(f"\n  wrote {txt_path}")
    print(f"  wrote {json_path}")
    return 0
