"""Counter time-series sampling on the virtual clock.

Aggregate counters (hit rate, pinned bytes) say what happened over a
whole run; the sampler says *when*: address-cache occupancy, pinned
bytes, AM handler queue length and bulk-engine in-flight depth are
sampled at fixed simulated-time intervals, giving the time axis the
paper's Paraver screenshots have.

The sampler is an ordinary simulator process.  It re-arms only while
other events are pending, so it never keeps the simulation alive on
its own and never masks the runtime's deadlock detection (a drained
heap still means nothing more can happen).  Each sampling tick adds
exactly one simulator event — cost proportional to run length /
interval, and only when sampling was explicitly started.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.obs.events import COUNTER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime

#: One sample: (virtual time µs, node id (-1 = global), counter, value).
Sample = Tuple[float, int, str, float]


class CounterSampler:
    """Samples runtime gauges every ``interval_us`` of virtual time."""

    def __init__(self, runtime: "Runtime",
                 interval_us: float = 50.0) -> None:
        if interval_us <= 0:
            raise ValueError(
                f"interval_us must be > 0, got {interval_us}")
        self.rt = runtime
        self.interval_us = interval_us
        self.samples: List[Sample] = []
        self._started = False

    def start(self) -> None:
        """Arm the sampler (call before ``runtime.run()``)."""
        if self._started:
            return
        self._started = True
        # Subscribe to backlog transitions so AM queue depth between
        # poll ticks is captured too (the §4.6 pathology builds and
        # drains its backlog entirely inside one compute slice).
        for node in self.rt.cluster.nodes:
            node.progress.sampler = self
        self.rt.sim.process(self._run(), name="obs-sampler")

    def backlog_transition(self, node_id: int, depth: int) -> None:
        """One AM-queue enqueue/drain edge, pushed by the progress
        engine the moment it happens (not at the next tick)."""
        self.samples.append(
            (self.rt.sim.now, node_id, "am_queue", float(depth)))

    def _run(self):
        sim = self.rt.sim
        while True:
            self._sample_once()
            yield sim.sleep(self.interval_us)
            # When this tick was the only remaining event the program
            # is done: stop instead of keeping the clock running.
            if not sim.pending:
                self._sample_once()
                return

    def _sample_once(self) -> None:
        rt = self.rt
        t = rt.sim.now
        add = self.samples.append
        for node in rt.cluster.nodes:
            nid = node.id
            add((t, nid, "cache_entries",
                 float(len(rt.addr_cache(nid)))))
            add((t, nid, "pinned_bytes", float(node.pins.pinned_bytes)))
            queue = getattr(node.progress, "_waiters", None)
            add((t, nid, "am_queue",
                 float(len(queue)) if queue is not None else 0.0))
        add((t, -1, "bulk_inflight", float(rt.bulk.live_messages)))
        log = rt.events
        if log.enabled:
            log.emit(t, COUNTER, node=-1,
                     bulk_inflight=rt.bulk.live_messages)

    # -- queries -------------------------------------------------------

    def series(self, name: str,
               node: Optional[int] = None) -> List[Tuple[float, float]]:
        """(t, value) points of one counter, optionally one node."""
        return [(t, v) for t, n, c, v in self.samples
                if c == name and (node is None or n == node)]

    def __len__(self) -> int:
        return len(self.samples)
