"""The flight recorder: typed, timestamped, causally-linked events.

The interval tracer (:mod:`repro.trace`) answers "how long did thread
3 spend in ``get:am``?"; it cannot answer "where did remote GET #4217
spend its 14 µs?".  This module records *op-level* events: every
protocol layer — op engine, bulk engine, address cache, pinned table,
transport, progress engine — emits events tagged with a causal
``op_id`` allocated at operation begin, so one remote GET becomes a
reconstructable span tree from the initiator through the wire to the
target handler and back.

Cost discipline: recording must be free when off.  Every
instrumentation site guards with ``if log.enabled:`` (one attribute
load and branch — no argument evaluation, no allocation); a disabled
:class:`EventLog` therefore adds **zero** simulator events and zero
virtual time, and runs remain bit-identical with recording on or off
(events are pure observations; nothing yields).

Event taxonomy (see ``docs/OBSERVABILITY.md`` for the full contract):

=================  ======================================================
kind               meaning
=================  ======================================================
``op_begin/end``   one runtime operation (get/put/memget/bulk/barrier/
                   lock/compute); ``end`` carries the resolved protocol
``phase``          a measured latency component on the op's critical
                   path: ``comp`` in {queue, wire, handler, piggyback}
                   and ``dur`` µs (software overhead is the residual)
``cache_*``        address-cache lookup/seed/evict/invalidate
``pin/unpin``      pinned-address-table registration traffic
``am_*``           active-message request/reply send/receive
                   (``piggyback=True`` when the reply carried an address)
``rdma_*``         one-sided issue/complete
``queue_*``        AM handler waiting for service (progress engine)
``bulk_*``         bulk-engine plan/issue/drain
``counter``        sampled time-series point (:mod:`repro.obs.sampler`)
``fault_inject``   the fault plane fired (drop/duplicate/delay/stall/
                   pin-deny; see ``docs/FAULTS.md``)
``timeout``        initiator-side retransmit or RDMA-completion timer
                   expired
``retry``          a timed-out request is being retransmitted
                   (``attempt`` counts from 1, ``backoff_us`` the wait)
``degrade``        a fast path was abandoned: ``mode`` is
                   ``rdma_to_am`` (cache entry invalidated, op falls
                   back to AM) or ``unpinnable`` (object served over
                   AM forever)
=================  ======================================================
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

# -- event kinds -------------------------------------------------------

OP_BEGIN = "op_begin"
OP_END = "op_end"
PHASE = "phase"

CACHE_LOOKUP = "cache_lookup"
CACHE_SEED = "cache_seed"
CACHE_EVICT = "cache_evict"
CACHE_INVALIDATE = "cache_invalidate"

PIN = "pin"
UNPIN = "unpin"

AM_SEND = "am_send"
AM_RECV = "am_recv"
AM_REPLY_SEND = "am_reply_send"
AM_REPLY_RECV = "am_reply_recv"

RDMA_ISSUE = "rdma_issue"
RDMA_COMPLETE = "rdma_complete"

QUEUE_ENTER = "queue_enter"
QUEUE_LEAVE = "queue_leave"

HANDLER_BEGIN = "handler_begin"
HANDLER_END = "handler_end"

BULK_PLAN = "bulk_plan"
BULK_ISSUE = "bulk_issue"
BULK_DRAIN = "bulk_drain"

#: Service-layer op-span names (:mod:`repro.service`).  KV ops reuse
#: the generic ``op_begin``/``op_end`` kinds; the span's ``name`` attr
#: carries one of these so analyzers can attribute the underlying
#: memget/lock/AM traffic to the data-structure operation above it.
KV_GET = "kv_get"
KV_PUT = "kv_put"
KV_DEL = "kv_del"
KV_MGET = "kv_mget"

#: Sharded-PDES-core kinds (:mod:`repro.sim.shard`).  ``xshard_send``
#: and ``xshard_recv`` bracket one cross-shard message — the receive
#: carries the sender's ``(src, seq)`` pair, which is the join key
#: linking the two halves into one logical span across shard logs.
#: ``sync_round`` marks one conservative-sync grain (the barrier
#: window): its ``round`` attr is the coordinator's global round
#: number, ``stall`` flags grains that processed zero events — the
#: conservative-sync stalls the Chrome export makes visible.
XSHARD_SEND = "xshard_send"
XSHARD_RECV = "xshard_recv"
SYNC_ROUND = "sync_round"
BARRIER_ARRIVE = "barrier_arrive"
BARRIER_RELEASE = "barrier_release"

COUNTER = "counter"

FAULT_INJECT = "fault_inject"
TIMEOUT = "timeout"
RETRY = "retry"
DEGRADE = "degrade"
#: A repair policy acted on a link (tune/untune, disable/restore,
#: failover/failback) — attrs carry src/dst, action, mode, policy.
POLICY_ACTION = "policy_action"

#: Latency-breakdown components carried by ``phase`` events.  Software
#: overhead has no phase events: it is defined as the residual
#: ``end_to_end - (queue + wire + handler + piggyback)``, which is what
#: makes the decomposition sum exactly by construction.
COMP_QUEUE = "queue"
COMP_WIRE = "wire"
COMP_HANDLER = "handler"
COMP_PIGGYBACK = "piggyback"
COMP_SOFTWARE = "software"

COMPONENTS = (COMP_SOFTWARE, COMP_QUEUE, COMP_WIRE, COMP_HANDLER,
              COMP_PIGGYBACK)


class TraceEvent:
    """One recorded event.

    ``op`` is the causal operation id (``-1``: not tied to an op);
    ``thread`` the issuing UPC thread (``-1``: none — e.g. target-side
    events); ``node`` the node the event happened on (``-1``: global).
    ``attrs`` carries kind-specific detail (name, proto, nbytes, comp,
    dur, hit, ...), JSON-representable by contract.
    """

    __slots__ = ("t", "kind", "op", "thread", "node", "attrs")

    def __init__(self, t: float, kind: str, op: int = -1,
                 thread: int = -1, node: int = -1,
                 attrs: Optional[dict] = None) -> None:
        self.t = t
        self.kind = kind
        self.op = op
        self.thread = thread
        self.node = node
        self.attrs = attrs if attrs is not None else {}

    def key(self) -> Tuple:
        return (self.t, self.kind, self.op, self.thread, self.node,
                self.attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:  # attrs is a dict — identity hashing
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" {self.attrs}" if self.attrs else ""
        return (f"<{self.kind} t={self.t:.3f} op={self.op} "
                f"th={self.thread} n={self.node}{extra}>")


class EventLog:
    """Per-runtime sink for :class:`TraceEvent` records.

    ``max_events`` bounds memory (drop-newest: once the budget is hit,
    further events are discarded and counted in ``dropped_events`` —
    a truncated log is never silently read as complete).
    """

    __slots__ = ("events", "enabled", "max_events", "dropped_events",
                 "_next_op")

    def __init__(self, enabled: bool = True,
                 max_events: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.enabled = enabled
        self.max_events = max_events
        self.dropped_events = 0
        self._next_op = 0

    # -- recording -----------------------------------------------------

    def next_op_id(self) -> int:
        """Allocate a fresh causal operation id."""
        self._next_op += 1
        return self._next_op

    def emit(self, t: float, kind: str, op: int = -1, thread: int = -1,
             node: int = -1, **attrs) -> None:
        """Record one event.  Callers on hot paths must guard with
        ``if log.enabled:`` so a disabled log costs one branch."""
        if not self.enabled:
            return
        if (self.max_events is not None
                and len(self.events) >= self.max_events):
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(t, kind, op, thread, node, attrs))

    def append(self, event: TraceEvent) -> None:
        """Append an already-built event (importers)."""
        if (self.max_events is not None
                and len(self.events) >= self.max_events):
            self.dropped_events += 1
            return
        self.events.append(event)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_op(self, op: int) -> List[TraceEvent]:
        """Every event of one causal operation, in record order."""
        return [e for e in self.events if e.op == op]

    def op_spans(self) -> Dict[int, Tuple[TraceEvent, TraceEvent]]:
        """Map op_id -> (op_begin, op_end) for completed operations."""
        begins: Dict[int, TraceEvent] = {}
        spans: Dict[int, Tuple[TraceEvent, TraceEvent]] = {}
        for e in self.events:
            if e.op < 0:
                continue
            if e.kind == OP_BEGIN:
                begins[e.op] = e
            elif e.kind == OP_END:
                b = begins.get(e.op)
                if b is not None:
                    spans[e.op] = (b, e)
        return spans

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"<EventLog {len(self.events)} events ({state}, "
                f"{self.dropped_events} dropped)>")
