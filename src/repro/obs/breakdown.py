"""Latency-breakdown analysis: where did remote op #4217 spend 14 µs?

The paper's tables separate *software overhead* from *wire time* from
*target-handler time*; this module reproduces that decomposition from
flight-recorder events.  Every instrumented protocol path emits
``phase`` events with measured durations for the queue / wire /
handler / piggyback components of the op's critical path; software
overhead is the **residual** ``end_to_end - sum(components)`` —
o_send/o_recv software stacks, cache probes, bounce-buffer copies,
descriptor setup.  Because components are measured wall-virtual-clock
over disjoint regions of a blocking op, the five parts sum to the
end-to-end latency *exactly* (up to float rounding).

Blocking GETs are strictly sequential initiator→target→initiator, so
the decomposition is well defined; relaxed PUTs complete locally while
their target half proceeds in the background, so by default only GETs
are analyzed (pass ``names=('put', ...)`` to override, understanding
that put phases can land after local completion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.events import (
    COMP_HANDLER,
    COMP_PIGGYBACK,
    COMP_QUEUE,
    COMP_SOFTWARE,
    COMP_WIRE,
    COMPONENTS,
    EventLog,
    OP_BEGIN,
    OP_END,
    PHASE,
)

#: Protocols that went over the wire; local/shm ops have no breakdown.
REMOTE_PROTOS = ("rdma", "am")


@dataclass
class OpBreakdown:
    """One remote operation decomposed into latency components."""

    op: int
    name: str
    proto: str
    thread: int
    node: int
    t0: float
    t1: float
    nbytes: int = 0
    queue: float = 0.0
    wire: float = 0.0
    handler: float = 0.0
    piggyback: float = 0.0

    @property
    def end_to_end(self) -> float:
        return self.t1 - self.t0

    @property
    def software(self) -> float:
        """The residual: software overhead on the critical path."""
        return (self.end_to_end
                - (self.queue + self.wire + self.handler + self.piggyback))

    def component(self, comp: str) -> float:
        if comp == COMP_SOFTWARE:
            return self.software
        return getattr(self, comp)

    def components(self) -> Dict[str, float]:
        return {c: self.component(c) for c in COMPONENTS}


def collect_breakdowns(log: EventLog,
                       names: Sequence[str] = ("get",),
                       protos: Sequence[str] = REMOTE_PROTOS,
                       ) -> List[OpBreakdown]:
    """Reconstruct per-op breakdowns from a flight-recorder log.

    ``names`` filters by operation name (``op_begin.attrs['name']``);
    ``protos`` by the protocol the op resolved to.  Phase events are
    matched to ops by ``op_id`` and restricted to the op's own time
    span, which keeps detached continuations (put tails) out of a
    containing op's budget.
    """
    begins: Dict[int, object] = {}
    out: Dict[int, OpBreakdown] = {}
    phases: Dict[int, List] = {}
    for e in log:
        if e.op < 0:
            continue
        if e.kind == OP_BEGIN:
            begins[e.op] = e
        elif e.kind == PHASE:
            phases.setdefault(e.op, []).append(e)
        elif e.kind == OP_END:
            b = begins.get(e.op)
            if b is None or b.attrs.get("name") not in names:
                continue
            if e.attrs.get("proto") not in protos:
                continue
            out[e.op] = OpBreakdown(
                op=e.op, name=b.attrs.get("name", "?"),
                proto=e.attrs.get("proto", "?"),
                thread=b.thread, node=b.node, t0=b.t, t1=e.t,
                nbytes=int(e.attrs.get("nbytes", 0)))
    eps = 1e-9
    for op_id, bd in out.items():
        for ph in phases.get(op_id, ()):
            if ph.t > bd.t1 + eps:
                continue  # detached continuation after op end
            comp = ph.attrs.get("comp")
            dur = float(ph.attrs.get("dur", 0.0))
            if comp == COMP_QUEUE:
                bd.queue += dur
            elif comp == COMP_WIRE:
                bd.wire += dur
            elif comp == COMP_HANDLER:
                bd.handler += dur
            elif comp == COMP_PIGGYBACK:
                bd.piggyback += dur
    return [out[k] for k in sorted(out)]


@dataclass
class ComponentStats:
    """Aggregate view of one latency component across ops."""

    mean: float = 0.0
    total: float = 0.0
    share: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0


@dataclass
class BreakdownSummary:
    """Per-component aggregates over a set of op breakdowns."""

    n_ops: int = 0
    e2e_mean: float = 0.0
    by_component: Dict[str, ComponentStats] = field(default_factory=dict)

    @property
    def component_mean_sum(self) -> float:
        return sum(s.mean for s in self.by_component.values())


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_vals:
        return 0.0
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = (len(sorted_vals) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def summarize(breakdowns: Iterable[OpBreakdown]) -> BreakdownSummary:
    """Fold op breakdowns into per-component means/shares/percentiles."""
    bds = list(breakdowns)
    summary = BreakdownSummary(n_ops=len(bds))
    if not bds:
        return summary
    e2e_total = sum(b.end_to_end for b in bds)
    summary.e2e_mean = e2e_total / len(bds)
    for comp in COMPONENTS:
        vals = sorted(b.component(comp) for b in bds)
        total = sum(vals)
        summary.by_component[comp] = ComponentStats(
            mean=total / len(vals),
            total=total,
            share=(total / e2e_total) if e2e_total else 0.0,
            p50=_percentile(vals, 0.50),
            p95=_percentile(vals, 0.95),
            p99=_percentile(vals, 0.99),
        )
    return summary


def render_breakdown(breakdowns: Iterable[OpBreakdown],
                     title: str = "remote GET latency breakdown") -> str:
    """The paper-style component table, plus a sum self-check.

    The final line reports how far the component means are from the
    measured end-to-end mean — by construction this is float noise;
    the acceptance bar is 1%.
    """
    s = summarize(breakdowns)
    if not s.n_ops:
        return f"{title}: no remote operations recorded"
    lines = [
        f"{title} ({s.n_ops} ops, end-to-end mean "
        f"{s.e2e_mean:.2f}us)",
        f"{'component':>12} {'mean_us':>9} {'share':>7} "
        f"{'p50_us':>9} {'p95_us':>9} {'p99_us':>9}",
    ]
    for comp in COMPONENTS:
        cs = s.by_component[comp]
        lines.append(
            f"{comp:>12} {cs.mean:>9.3f} {cs.share:>7.1%} "
            f"{cs.p50:>9.3f} {cs.p95:>9.3f} {cs.p99:>9.3f}")
    total_mean = s.component_mean_sum
    err = (abs(total_mean - s.e2e_mean) / s.e2e_mean
           if s.e2e_mean else 0.0)
    lines.append(
        f"{'sum':>12} {total_mean:>9.3f} "
        f"(vs end-to-end {s.e2e_mean:.3f}us, error {err:.4%})")
    return "\n".join(lines)
