"""Streaming SLO monitor: rolling-window latency, burn rate, anomalies.

The KV traffic harness (:mod:`repro.workloads.kv_traffic`) produces
millions of flow-completion times; this module watches that stream the
way a service owner would:

* **windows** — completions are bucketed into fixed-width time windows
  (``window_us``).  Each window keeps its own fixed-edge log-binned
  latency histogram plus counters (violations, hits, retries, peak
  in-flight).  Fixed window edges (``index = floor(t / window_us)``)
  and fixed histogram edges make the cross-shard merge an elementwise
  sum — the same layout-invariance discipline as the traffic
  histograms, so ``shards=1/2/4`` report bit-identical windows;
* **quantiles** — per-window p50/p99 come from the window histogram
  (mergeable); the run-level streaming digest is the existing P²
  estimator (:class:`~repro.util.quantiles.LatencyDigest`);
* **burn rate** — each window's violation fraction over the error
  budget ``1 - slo_quantile``: burn 1.0 means "spending budget exactly
  at the sustainable rate", 10 means "budget gone in a tenth of the
  period" (the standard multi-window burn-rate alerting currency);
* **anomaly detectors** — threshold flags over the window series:
  ``retry_storm`` (retry fraction above an absolute bar),
  ``backlog_spike`` (peak in-flight far above the run median) and
  ``p99_regression`` (window p99 far above the median of the preceding
  windows).

Everything here is observational: the monitor never touches the
simulator, so enabling it leaves runs bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.util.quantiles import LatencyDigest

#: Histogram geometry — identical to the traffic harness's FCT
#: histograms (256 log bins over [0.1 µs, 1 s]) so window quantiles
#: and run quantiles are directly comparable.
SLO_HIST_BINS = 256
_HIST_LO_US = 0.1
_HIST_HI_US = 1e6
_LOG_LO = math.log(_HIST_LO_US)
_LOG_SPAN = math.log(_HIST_HI_US) - _LOG_LO


def _bin_of(latency_us: float) -> int:
    if latency_us <= _HIST_LO_US:
        return 0
    b = int((math.log(latency_us) - _LOG_LO) / _LOG_SPAN * SLO_HIST_BINS)
    return min(b, SLO_HIST_BINS - 1)


def _bin_edge(idx: int) -> float:
    """Upper edge (µs) of histogram bin ``idx``."""
    return math.exp(_LOG_LO + _LOG_SPAN * (idx + 1) / SLO_HIST_BINS)


def hist_quantile(hist: List[int], q: float) -> float:
    """Quantile from a (possibly merged) window histogram — the upper
    edge of the bin where the cumulative count crosses ``q``."""
    total = sum(hist)
    if total == 0:
        return 0.0
    want = q * total
    cum = 0
    for idx, n in enumerate(hist):
        cum += n
        if cum >= want:
            return _bin_edge(idx)
    return _bin_edge(SLO_HIST_BINS - 1)  # pragma: no cover - guard


class SLOWindow:
    """One fixed time window's worth of completions."""

    __slots__ = ("index", "count", "violations", "hits", "retries",
                 "max_inflight", "policy_actions", "hist")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.violations = 0
        self.hits = 0
        self.retries = 0
        self.max_inflight = 0
        self.policy_actions = 0
        self.hist = [0] * SLO_HIST_BINS

    def p50(self) -> float:
        return hist_quantile(self.hist, 0.50)

    def p99(self) -> float:
        return hist_quantile(self.hist, 0.99)


class SLOMonitor:
    """Streaming service-level monitor over a completion stream.

    ``observe(t, latency_us, ...)`` is the only hot-path call; it costs
    a dict lookup, a histogram increment and three P² updates — no
    simulator interaction whatsoever.
    """

    def __init__(self, target_us: float, window_us: float = 5000.0,
                 slo_quantile: float = 0.99) -> None:
        if target_us <= 0:
            raise ValueError("target_us must be positive")
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if not 0.0 < slo_quantile < 1.0:
            raise ValueError("slo_quantile must be in (0, 1)")
        self.target_us = float(target_us)
        self.window_us = float(window_us)
        self.slo_quantile = float(slo_quantile)
        self.windows: Dict[int, SLOWindow] = {}
        #: Run-level streaming percentiles (P² — the existing
        #: constant-space estimator).
        self.digest = LatencyDigest()

    @property
    def error_budget(self) -> float:
        return 1.0 - self.slo_quantile

    def observe(self, t: float, latency_us: float, *, hit: bool = False,
                retried: bool = False, inflight: int = 0) -> None:
        """Record one completion at virtual time ``t``."""
        idx = int(t // self.window_us)
        w = self.windows.get(idx)
        if w is None:
            w = self.windows[idx] = SLOWindow(idx)
        w.count += 1
        w.hist[_bin_of(latency_us)] += 1
        if latency_us > self.target_us:
            w.violations += 1
        if hit:
            w.hits += 1
        if retried:
            w.retries += 1
        if inflight > w.max_inflight:
            w.max_inflight = inflight
        self.digest.add(latency_us)

    def observe_policy_action(self, t: float) -> None:
        """Record one repair-policy action at virtual time ``t`` — the
        window series then shows *when* the policy moved, so flapping
        policies surface in the same view as their latency damage."""
        idx = int(t // self.window_us)
        w = self.windows.get(idx)
        if w is None:
            w = self.windows[idx] = SLOWindow(idx)
        w.policy_actions += 1

    # -- window math ---------------------------------------------------

    def burn_rate(self, window: SLOWindow) -> float:
        """Error-budget burn rate of one window (violation fraction
        over the budget; 1.0 = sustainable, >1 = overspending)."""
        if window.count == 0:
            return 0.0
        return (window.violations / window.count) / self.error_budget

    def sorted_windows(self) -> List[SLOWindow]:
        return [self.windows[i] for i in sorted(self.windows)]

    # -- serialization / merge -----------------------------------------

    def export(self) -> List[dict]:
        """Windows as plain picklable/JSON-able dicts (shards publish
        these; :func:`merge_window_dicts` recombines them)."""
        return [{"index": w.index, "count": w.count,
                 "violations": w.violations, "hits": w.hits,
                 "retries": w.retries, "max_inflight": w.max_inflight,
                 "policy_actions": w.policy_actions,
                 "hist": list(w.hist)}
                for w in self.sorted_windows()]

    @staticmethod
    def merge_window_dicts(batches: Iterable[List[dict]]) -> List[dict]:
        """Merge per-shard window exports: counts sum, histograms sum
        elementwise, in-flight peaks take the max.  Pure arithmetic on
        fixed-edge windows — layout-invariant by construction."""
        merged: Dict[int, dict] = {}
        for batch in batches:
            for w in batch:
                m = merged.get(w["index"])
                if m is None:
                    m = merged[w["index"]] = {
                        "index": w["index"], "count": 0, "violations": 0,
                        "hits": 0, "retries": 0, "max_inflight": 0,
                        "policy_actions": 0,
                        "hist": [0] * SLO_HIST_BINS}
                m["count"] += w["count"]
                m["violations"] += w["violations"]
                m["hits"] += w["hits"]
                m["retries"] += w["retries"]
                m["max_inflight"] = max(m["max_inflight"],
                                        w["max_inflight"])
                m["policy_actions"] += w.get("policy_actions", 0)
                m["hist"] = [a + b for a, b in zip(m["hist"], w["hist"])]
        return [merged[i] for i in sorted(merged)]


def window_stats(window: dict, *, target_us: float, window_us: float,
                 slo_quantile: float = 0.99) -> dict:
    """Derived per-window numbers (quantiles, burn rate) from one
    exported/merged window dict."""
    budget = 1.0 - slo_quantile
    count = window["count"]
    frac = window["violations"] / count if count else 0.0
    return {
        "index": window["index"],
        "t0_us": window["index"] * window_us,
        "t1_us": (window["index"] + 1) * window_us,
        "count": count,
        "violations": window["violations"],
        "violation_frac": frac,
        "burn_rate": frac / budget,
        "p50_us": hist_quantile(window["hist"], 0.50),
        "p99_us": hist_quantile(window["hist"], 0.99),
        "hit_rate": window["hits"] / count if count else 0.0,
        "retries": window["retries"],
        "max_inflight": window["max_inflight"],
        "policy_actions": window.get("policy_actions", 0),
    }


def _median(values: List[float]) -> float:
    if not values:
        return 0.0
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def detect_anomalies(windows: List[dict], *, target_us: float,
                     window_us: float, slo_quantile: float = 0.99,
                     retry_frac: float = 0.05, min_retries: int = 8,
                     backlog_factor: float = 3.0, min_inflight: int = 8,
                     p99_factor: float = 2.0, min_count: int = 16,
                     warmup_windows: int = 3,
                     flap_actions: int = 4) -> List[dict]:
    """Threshold anomaly detectors over a merged window series.

    Each flag is ``{"kind", "index", "t0_us", "t1_us", "value",
    "threshold"}``:

    ``retry_storm``
        a window whose retry fraction exceeds ``retry_frac`` (with at
        least ``min_retries`` retries — tiny windows don't storm);
    ``backlog_spike``
        peak in-flight above ``backlog_factor`` × the run-median peak
        (and above ``min_inflight`` absolutely — median-relative
        factors drown when the run mostly idles);
    ``p99_regression``
        window p99 above ``p99_factor`` × the median p99 of *preceding*
        windows (at least ``warmup_windows`` of them, each with
        ``min_count`` completions — the causal form a live monitor
        could actually alert on);
    ``policy_flap``
        ``flap_actions`` or more repair-policy actions inside one
        window — a policy oscillating faster than the service recovers
        is itself an incident.
    """
    flags: List[dict] = []

    def flag(kind: str, w: dict, value: float, threshold: float) -> None:
        flags.append({"kind": kind, "index": w["index"],
                      "t0_us": w["index"] * window_us,
                      "t1_us": (w["index"] + 1) * window_us,
                      "value": value, "threshold": threshold})

    for w in windows:
        if w["count"] == 0:
            continue
        frac = w["retries"] / w["count"]
        if w["retries"] >= min_retries and frac > retry_frac:
            flag("retry_storm", w, frac, retry_frac)

    for w in windows:
        actions = w.get("policy_actions", 0)
        if actions >= flap_actions:
            flag("policy_flap", w, float(actions), float(flap_actions))

    peaks = [w["max_inflight"] for w in windows if w["count"]]
    med_peak = _median([float(p) for p in peaks])
    if med_peak > 0:
        thr = max(backlog_factor * med_peak, float(min_inflight))
        for w in windows:
            if w["count"] and w["max_inflight"] > thr:
                flag("backlog_spike", w, float(w["max_inflight"]), thr)

    history: List[float] = []
    for w in windows:
        if w["count"] < min_count:
            continue
        p99 = hist_quantile(w["hist"], 0.99)
        if len(history) >= warmup_windows:
            baseline = _median(history)
            if baseline > 0 and p99 > p99_factor * baseline:
                flag("p99_regression", w, p99, p99_factor * baseline)
        history.append(p99)
    return flags


def slo_summary(windows: List[dict], *, target_us: float,
                window_us: float, slo_quantile: float = 0.99) -> dict:
    """Run-level rollup of a merged window series (overall quantiles
    from the summed histograms, total burn, worst window)."""
    total_hist = [0] * SLO_HIST_BINS
    count = violations = hits = retries = policy_actions = 0
    worst: Optional[dict] = None
    budget = 1.0 - slo_quantile
    for w in windows:
        total_hist = [a + b for a, b in zip(total_hist, w["hist"])]
        count += w["count"]
        violations += w["violations"]
        hits += w["hits"]
        retries += w["retries"]
        policy_actions += w.get("policy_actions", 0)
        if w["count"]:
            burn = (w["violations"] / w["count"]) / budget
            if worst is None or burn > worst["burn_rate"]:
                worst = {"index": w["index"], "burn_rate": burn}
    frac = violations / count if count else 0.0
    return {
        "target_us": target_us,
        "window_us": window_us,
        "slo_quantile": slo_quantile,
        "windows": len(windows),
        "count": count,
        "violations": violations,
        "violation_frac": frac,
        "burn_rate": frac / budget,
        "p50_us": hist_quantile(total_hist, 0.50),
        "p99_us": hist_quantile(total_hist, 0.99),
        "hit_rate": hits / count if count else 0.0,
        "retries": retries,
        "policy_actions": policy_actions,
        "worst_window": worst,
    }


def render_slo(windows: List[dict], summary: dict,
               anomalies: List[dict], *, max_rows: int = 12) -> str:
    """Human-readable SLO report section (windows table + flags)."""
    lines = [
        f"SLO: target {summary['target_us']:.1f}us at "
        f"p{summary['slo_quantile'] * 100:.0f}, "
        f"{summary['window_us']:.0f}us windows",
        f"  {summary['count']} completions in {summary['windows']} "
        f"windows; overall p50={summary['p50_us']:.1f}us "
        f"p99={summary['p99_us']:.1f}us",
        f"  violations {summary['violations']} "
        f"({summary['violation_frac']:.2%}), "
        f"burn rate {summary['burn_rate']:.2f} "
        f"(1.0 = budget-sustainable), hit rate "
        f"{summary['hit_rate']:.3f}",
    ]
    stats = [window_stats(w, target_us=summary["target_us"],
                          window_us=summary["window_us"],
                          slo_quantile=summary["slo_quantile"])
             for w in windows]
    shown = stats[:max_rows]
    lines.append(f"  {'window':>8} {'count':>7} {'p50_us':>8} "
                 f"{'p99_us':>8} {'burn':>6} {'hit':>6} {'infl':>5}")
    for s in shown:
        lines.append(
            f"  {s['index']:>8} {s['count']:>7} {s['p50_us']:>8.1f} "
            f"{s['p99_us']:>8.1f} {s['burn_rate']:>6.2f} "
            f"{s['hit_rate']:>6.3f} {s['max_inflight']:>5}")
    if len(stats) > max_rows:
        lines.append(f"  ... {len(stats) - max_rows} more window(s)")
    if anomalies:
        lines.append(f"  {len(anomalies)} anomaly flag(s):")
        for a in anomalies:
            lines.append(
                f"    [{a['kind']}] window {a['index']} "
                f"({a['t0_us']:.0f}..{a['t1_us']:.0f}us): "
                f"value {a['value']:.2f} > threshold "
                f"{a['threshold']:.2f}")
    else:
        lines.append("  no anomaly flags")
    return "\n".join(lines)
