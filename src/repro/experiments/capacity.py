"""The section 4.5 memory/speedup compromise, in the time domain.

    "Cache size is an important metric that may affect overall
    application performance. ... For this kind of applications we have
    a compromise between memory usage and speedup."

Figure 8 shows the *hit rate* side of that compromise; this experiment
shows the *speedup* side: improvement % of the Pointer stressmark as a
function of address-cache capacity, at a fixed machine size.  The
curve saturates once the capacity covers the (nodes - 1)-entry working
set — the quantitative backing for the paper's choice of a 100-entry
default.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.figures import FigureResult, _pointer_params
from repro.network.params import GM_MARENOSTRUM
from repro.util.stats import improvement_pct
from repro.workloads.dis.pointer import run_pointer


def capacity_speedup(threads: int = 64, nodes: int = 16,
                     capacities: Optional[Sequence[int]] = None,
                     seed: int = 1) -> FigureResult:
    """Pointer improvement % and hit rate vs cache capacity."""
    capacities = list(capacities or [0, 2, 4, 8, 10, 16, 32, 100])
    base_params = _pointer_params(threads, nodes, GM_MARENOSTRUM, seed)
    baseline = run_pointer(replace(base_params, cache_enabled=False))
    fig = FigureResult(
        figure_id="Section 4.5",
        title=f"Pointer improvement vs cache capacity "
              f"({threads} threads / {nodes} nodes; working set = "
              f"{nodes - 1} entries)",
        columns=["capacity", "hit_rate", "improvement_pct",
                 "cache_bytes"],
    )
    for cap in capacities:
        cached = run_pointer(replace(base_params, cache_capacity=cap))
        if cached.check != baseline.check:
            raise AssertionError("functional divergence in capacity sweep")
        fig.add(
            capacity=cap,
            hit_rate=round(cached.hit_rate, 3),
            improvement_pct=round(
                improvement_pct(baseline.elapsed_us, cached.elapsed_us),
                1),
            cache_bytes=cap * 64,
        )
    return fig
