"""Experiment harness: reproduces every evaluation figure.

Index (see DESIGN.md section 4):

* :func:`~repro.experiments.figures.fig6_get` /
  :func:`~repro.experiments.figures.fig6_put` — latency improvement %
  vs message size on GM and LAPI;
* :func:`~repro.experiments.figures.fig7` — absolute small-message GET
  latencies with/without the cache;
* :func:`~repro.experiments.figures.fig8` — Pointer/Neighborhood cache
  hit rate vs scale for cache capacities 4/10/100;
* :func:`~repro.experiments.figures.fig9` — DIS stressmark improvement
  vs scale on hybrid GM and hybrid LAPI;
* :func:`~repro.experiments.figures.miss_overhead` — the section 6
  claim that failed caching attempts cost <= 2%.

Every runner returns a result object with ``rows()`` (list of dicts)
and ``render()`` (aligned text table, the shape EXPERIMENTS.md embeds).
"""

from repro.experiments.harness import (
    PairedRun,
    improvement_series,
    paired_run,
    repeat_ci,
)
from repro.experiments.figures import (
    FigureResult,
    GM_SCALES,
    LAPI_SCALES,
    fig6_get,
    fig6_put,
    fig7,
    fig8,
    fig9,
    miss_overhead,
)
from repro.experiments.report import render_table

__all__ = [
    "PairedRun",
    "paired_run",
    "repeat_ci",
    "improvement_series",
    "FigureResult",
    "fig6_get",
    "fig6_put",
    "fig7",
    "fig8",
    "fig9",
    "miss_overhead",
    "GM_SCALES",
    "LAPI_SCALES",
    "render_table",
]
