"""Runners for every evaluation figure of the paper.

Each ``figN`` function sweeps the paper's x-axis, runs the paired
(cache off / cache on) simulations, and returns a
:class:`FigureResult` whose ``render()`` emits the table embedded in
EXPERIMENTS.md.

Scales follow the paper's axes:

* Figure 9a (GM / MareNostrum): 8 threads on 2 nodes up to 2048
  threads on 512 nodes, 4 threads per blade;
* Figure 9b (LAPI / Power5): 4 threads on 2 nodes up to 448 threads on
  28 nodes (the paper varies threads per node up to 16);
* Figure 8 uses the GM scale with address-cache capacities 4/10/100.

Simulating the top GM scale point (2048 simulated UPC threads) costs
minutes of wall clock in pure Python; callers (benchmarks, tests) pass
a truncated ``scales`` list, while the EXPERIMENTS.md generator uses
the full range.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import paired_run, repeat_ci
from repro.experiments.report import render_table
from repro.network.params import (
    GM_MARENOSTRUM,
    LAPI_POWER5,
    MachineParams,
)
from repro.util.stats import improvement_pct
from repro.workloads.micro import (
    FIG6_SIZES,
    FIG7_SIZES,
    MicroParams,
    get_roundtrip_us,
    put_overhead_us,
)
from repro.workloads.dis.field import FieldParams, run_field
from repro.workloads.dis.neighborhood import (
    NeighborhoodParams,
    run_neighborhood,
)
from repro.workloads.dis.pointer import PointerParams, run_pointer
from repro.workloads.dis.update import UpdateParams, run_update

#: Figure 8/9a x-axis: (threads, nodes), 4 threads per node.
GM_SCALES: List[Tuple[int, int]] = [
    (8, 2), (16, 4), (32, 8), (64, 16), (128, 32), (256, 64),
    (512, 128), (1024, 256), (2048, 512),
]
#: Figure 9b x-axis: (threads, nodes) on the 28-node Power5 cluster.
LAPI_SCALES: List[Tuple[int, int]] = [
    (4, 2), (8, 2), (16, 2), (32, 2), (64, 4), (128, 8),
    (256, 16), (448, 28),
]


@dataclass
class FigureResult:
    """A reproduced figure: rows of data plus rendering metadata."""

    figure_id: str
    title: str
    columns: List[str]
    _rows: List[Dict] = field(default_factory=list)

    def add(self, **row) -> None:
        self._rows.append(row)

    def rows(self) -> List[Dict]:
        return list(self._rows)

    def series(self, column: str) -> List:
        return [r.get(column) for r in self._rows]

    def render(self) -> str:
        return render_table(self._rows, self.columns,
                            title=f"{self.figure_id}: {self.title}")


# ---------------------------------------------------------------------------
# Figure 6: latency improvement vs message size.
# ---------------------------------------------------------------------------

def _micro_improvement(fn: Callable[[MicroParams], float],
                       machine: MachineParams, size: int,
                       reps: int) -> float:
    z = fn(MicroParams(machine=machine, msg_bytes=size,
                       cache_enabled=False, reps=reps))
    w = fn(MicroParams(machine=machine, msg_bytes=size,
                       cache_enabled=True, reps=reps))
    return improvement_pct(z, w)


def fig6_get(sizes: Optional[Sequence[int]] = None,
             reps: int = 10) -> FigureResult:
    """Figure 6 (left): GET round-trip improvement %, GM and LAPI."""
    sizes = list(sizes or FIG6_SIZES)
    fig = FigureResult(
        figure_id="Figure 6 (left)",
        title="xlupc_distr_get latency improvement using the address "
              "cache (%)",
        columns=["size_bytes", "gm_pct", "lapi_pct"],
    )
    for size in sizes:
        fig.add(
            size_bytes=size,
            gm_pct=_micro_improvement(get_roundtrip_us, GM_MARENOSTRUM,
                                      size, reps),
            lapi_pct=_micro_improvement(get_roundtrip_us, LAPI_POWER5,
                                        size, reps),
        )
    return fig


def fig6_put(sizes: Optional[Sequence[int]] = None,
             reps: int = 10) -> FigureResult:
    """Figure 6 (right): PUT overhead improvement %, GM and LAPI.

    LAPI goes deeply negative for small messages — the measurement
    that made the paper disable RDMA PUT on that platform.
    """
    sizes = list(sizes or FIG6_SIZES)
    fig = FigureResult(
        figure_id="Figure 6 (right)",
        title="xlupc_distr_put latency improvement using the address "
              "cache (%)",
        columns=["size_bytes", "gm_pct", "lapi_pct"],
    )
    for size in sizes:
        fig.add(
            size_bytes=size,
            gm_pct=_micro_improvement(put_overhead_us, GM_MARENOSTRUM,
                                      size, reps),
            lapi_pct=_micro_improvement(put_overhead_us, LAPI_POWER5,
                                        size, reps),
        )
    return fig


# ---------------------------------------------------------------------------
# Figure 7: absolute small-message GET latency.
# ---------------------------------------------------------------------------

def fig7(sizes: Optional[Sequence[int]] = None,
         reps: int = 10) -> FigureResult:
    """Figure 7: GET latency (µs) with and without the cache."""
    sizes = list(sizes or FIG7_SIZES)
    fig = FigureResult(
        figure_id="Figure 7",
        title="GET latency (us) with/without the address cache, small "
              "messages",
        columns=["size_bytes", "gm_nocache_us", "gm_cache_us",
                 "lapi_nocache_us", "lapi_cache_us"],
    )
    for size in sizes:
        row = {"size_bytes": size}
        for prefix, machine in (("gm", GM_MARENOSTRUM),
                                ("lapi", LAPI_POWER5)):
            for label, cache in (("nocache", False), ("cache", True)):
                row[f"{prefix}_{label}_us"] = get_roundtrip_us(
                    MicroParams(machine=machine, msg_bytes=size,
                                cache_enabled=cache, reps=reps))
        fig.add(**row)
    return fig


# ---------------------------------------------------------------------------
# Figure 8: hit rate vs scale for cache capacities 4/10/100.
# ---------------------------------------------------------------------------

def _pointer_params(threads: int, nodes: int, machine: MachineParams,
                    seed: int, capacity: int = 100,
                    hops: int = 0) -> PointerParams:
    # Real DIS runs are long; scale the chain with the machine so
    # compulsory misses and first-touch pinning amortize (the paper's
    # hit-rate study, Figure 8a, likewise reflects steady state).
    if hops <= 0:
        hops = max(48, min(2 * nodes, 256))
    return PointerParams(
        machine=machine, nthreads=threads,
        threads_per_node=threads // nodes,
        cache_capacity=capacity, seed=seed,
        nelems=max(1 << 14, threads * 16),
        hops=hops, work_us=0.2,
    )


def _neighborhood_params(threads: int, nodes: int, machine: MachineParams,
                         seed: int, capacity: int = 100,
                         ) -> NeighborhoodParams:
    return NeighborhoodParams(
        machine=machine, nthreads=threads,
        threads_per_node=threads // nodes,
        cache_capacity=capacity, seed=seed,
        dim=threads * 24,       # fixed 24-row strips per thread
        width=64,               # keep the data plane bounded at scale
        distance=10, samples=32, iterations=3,
    )


def fig8(workload: str = "pointer",
         scales: Optional[Sequence[Tuple[int, int]]] = None,
         capacities: Sequence[int] = (4, 10, 100),
         seed: int = 1) -> FigureResult:
    """Figure 8: address-cache hit rate vs scale per capacity.

    ``workload`` is "pointer" (8a: degrading) or "neighborhood"
    (8b: flat near 1.0).
    """
    scales = list(scales or GM_SCALES)
    makers = {"pointer": (_pointer_params, run_pointer),
              "neighborhood": (_neighborhood_params, run_neighborhood)}
    if workload not in makers:
        raise ValueError(f"unknown workload {workload!r}")
    make, run = makers[workload]
    cols = ["threads", "nodes"] + [f"hit_cap{c}" for c in capacities]
    fig = FigureResult(
        figure_id=f"Figure 8{'a' if workload == 'pointer' else 'b'}",
        title=f"{workload.capitalize()}: cache hit rate vs scale",
        columns=cols,
    )
    for threads, nodes in scales:
        row = {"threads": threads, "nodes": nodes}
        for cap in capacities:
            kw = {"capacity": cap}
            if workload == "pointer":
                # Longer chains amortize the compulsory misses, as in
                # the paper's long-running stressmark.
                kw["hops"] = 96
            result = run(make(threads, nodes, GM_MARENOSTRUM, seed, **kw))
            row[f"hit_cap{cap}"] = round(result.hit_rate, 3)
        fig.add(**row)
    return fig


# ---------------------------------------------------------------------------
# Figure 9: DIS improvement vs scale on both platforms.
# ---------------------------------------------------------------------------

def _update_params(threads: int, nodes: int, machine: MachineParams,
                   seed: int) -> UpdateParams:
    return UpdateParams(
        machine=machine, nthreads=threads,
        threads_per_node=threads // nodes, seed=seed,
        # Long chains keep thread 0's measured work dominant over the
        # collective setup/teardown, and amortize first-touch pinning
        # across the (nodes - 1) partners, at every scale.
        nelems=max(1 << 14, threads * 16),
        hops=max(192, 8 * nodes),
    )


def _field_params(threads: int, nodes: int, machine: MachineParams,
                  seed: int) -> FieldParams:
    return FieldParams(
        machine=machine, nthreads=threads,
        threads_per_node=threads // nodes, seed=seed,
        nelems=1024 * threads, ntokens=8,
    )


_FIG9_WORKLOADS = [
    ("pointer", _pointer_params, run_pointer),
    ("update", _update_params, run_update),
    ("neighborhood", _neighborhood_params, run_neighborhood),
    ("field", _field_params, run_field),
]


def fig9(platform: str = "gm",
         scales: Optional[Sequence[Tuple[int, int]]] = None,
         seeds: Sequence[int] = (1, 2, 3)) -> FigureResult:
    """Figure 9: DIS stressmark improvement % vs scale.

    ``platform`` is "gm" (9a, hybrid GM on MareNostrum) or "lapi"
    (9b, hybrid LAPI on the Power5 cluster).
    """
    if platform == "gm":
        machine, default_scales, sub = GM_MARENOSTRUM, GM_SCALES, "a"
    elif platform == "lapi":
        machine, default_scales, sub = LAPI_POWER5, LAPI_SCALES, "b"
    else:
        raise ValueError(f"unknown platform {platform!r}")
    scales = list(scales or default_scales)
    cols = (["threads", "nodes"]
            + [name for name, _, _ in _FIG9_WORKLOADS]
            + [f"{name}_ci" for name, _, _ in _FIG9_WORKLOADS])
    fig = FigureResult(
        figure_id=f"Figure 9{sub}",
        title=f"DIS address-cache improvement (%) on hybrid "
              f"{machine.name}",
        columns=cols[:2 + len(_FIG9_WORKLOADS)],
    )
    for threads, nodes in scales:
        row: Dict = {"threads": threads, "nodes": nodes}
        for name, make, run in _FIG9_WORKLOADS:
            ci = repeat_ci(run, make(threads, nodes, machine, 0),
                           seeds=list(seeds))
            if ci.n == 0:
                # Every repetition of this cell was degenerate
                # (zero-elapsed baseline); report the hole instead of
                # aborting the whole figure sweep.
                row[name] = None
                row[f"{name}_ci"] = None
            else:
                row[name] = round(ci.mean, 1)
                row[f"{name}_ci"] = round(ci.half_width, 1)
        fig.add(**row)
    return fig


# ---------------------------------------------------------------------------
# Section 6 claim: miss overhead <= 2%.
# ---------------------------------------------------------------------------

def miss_overhead(threads: int = 16, nodes: int = 16,
                  seeds: Sequence[int] = (1, 2, 3)) -> FigureResult:
    """Overhead of *unsuccessful* caching attempts.

    Runs Pointer with the cache machinery enabled but capacity 0:
    every lookup misses, every piggyback is wasted, nothing is ever
    reused.  The slowdown vs the cache-disabled baseline is the
    paper's "overhead of unsuccessful attempts" — claimed "typically
    1.5% and never worse than 2%" (section 6).
    """
    fig = FigureResult(
        figure_id="Section 6",
        title="Overhead of unsuccessful caching attempts (%)",
        columns=["seed", "overhead_pct", "elapsed_pct"],
    )
    for seed in seeds:
        # Long runs amortize first-touch pinning, and one thread per
        # node removes NIC-sharing noise: what remains is the pure
        # per-miss bookkeeping the claim is about.  ``overhead_pct``
        # compares mean remote-GET latency (the per-attempt cost the
        # claim quantifies); ``elapsed_pct`` the end-to-end runtimes.
        params = replace(
            _pointer_params(threads, nodes, GM_MARENOSTRUM, seed,
                            hops=192),
            threads_per_node=1)
        miss = run_pointer(replace(params, cache_capacity=0))
        baseline = run_pointer(replace(params, cache_enabled=False))
        if baseline.check != miss.check:
            raise AssertionError("functional divergence in miss-overhead run")
        per_op = -improvement_pct(baseline.run.metrics.get_remote.mean,
                                  miss.run.metrics.get_remote.mean)
        elapsed = -improvement_pct(baseline.elapsed_us, miss.elapsed_us)
        fig.add(seed=seed, overhead_pct=round(per_op, 2),
                elapsed_pct=round(elapsed, 2))
    return fig
