"""Plain-text table rendering for experiment results.

The paper's figures become aligned text tables (one row per x-axis
point, one column per series) that EXPERIMENTS.md embeds verbatim.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.util.stats import ConfidenceInterval


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, ConfidenceInterval):
        # Delegates to ConfidenceInterval.__str__, which marks n=1
        # point estimates as "no CI" rather than "± 0.00".
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.2f}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def render_table(rows: Sequence[Dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no data)"
    widths: List[int] = []
    for col in columns:
        w = max(len(col), *(len(_fmt(r.get(col))) for r in rows))
        widths.append(w)
    out = []
    if title:
        out.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(columns, widths))
    out.append(header)
    out.append("-" * len(header))
    for r in rows:
        out.append("  ".join(_fmt(r.get(c)).rjust(w)
                             for c, w in zip(columns, widths)))
    return "\n".join(out)
