"""Paired-run machinery and confidence intervals.

Every number the paper reports is ``100 (Z - W) / Z`` where ``Z`` is
the regular runtime and ``W`` the address-cache runtime of the *same*
workload.  :func:`paired_run` runs both configurations on identical
inputs (same seed → identical access streams) and verifies the
functional outputs match before reporting any timing — a cached run
that computed a different answer is a bug, not a speedup.

Section 4: "We defined a confidence coefficient of 95% and ran each
experiment multiple times" — :func:`repeat_ci` does the same across
seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

from repro.util.stats import (
    ConfidenceInterval,
    DegenerateBaselineError,
    improvement_pct,
    mean_ci95,
)
from repro.workloads.dis.common import DISResult


@dataclass
class PairedRun:
    """Z (uncached) vs W (cached) for one workload configuration."""

    baseline: DISResult
    cached: DISResult

    @property
    def improvement_pct(self) -> float:
        return improvement_pct(self.baseline.elapsed_us,
                               self.cached.elapsed_us)

    @property
    def hit_rate(self) -> float:
        return self.cached.hit_rate


def paired_run(run_fn: Callable[..., DISResult], params) -> PairedRun:
    """Run ``params`` with the cache off and on; check equivalence."""
    baseline = run_fn(replace(params, cache_enabled=False))
    cached = run_fn(replace(params, cache_enabled=True))
    if baseline.check != cached.check:
        raise AssertionError(
            f"functional divergence between cached and uncached runs of "
            f"{type(params).__name__}: {baseline.check!r} != "
            f"{cached.check!r}")
    return PairedRun(baseline=baseline, cached=cached)


def repeat_ci(run_fn: Callable[..., DISResult], params,
              seeds: Sequence[int]) -> ConfidenceInterval:
    """Improvement % across repetitions with different seeds, as a
    95% confidence interval (normal approximation, as in the paper).

    A repetition whose baseline ran in zero time (a degenerate cell —
    e.g. a truncated sweep point where thread 0 does no measured work)
    is *skipped* and counted in the interval's ``skipped`` field
    rather than aborting the whole sweep; if every repetition is
    degenerate the result has ``n == 0`` and a NaN mean.
    """
    if not seeds:
        raise ValueError("repeat_ci needs at least one seed")
    samples: List[float] = []
    skipped = 0
    for seed in seeds:
        pair = paired_run(run_fn, replace(params, seed=seed))
        try:
            samples.append(pair.improvement_pct)
        except DegenerateBaselineError:
            skipped += 1
    if not samples:
        return ConfidenceInterval(mean=float("nan"), half_width=0.0,
                                  n=0, skipped=skipped)
    ci = mean_ci95(samples)
    return replace(ci, skipped=skipped) if skipped else ci


def improvement_series(run_fn: Callable[..., DISResult], params_list,
                       seeds: Sequence[int]) -> List[ConfidenceInterval]:
    """One CI per configuration (a figure line)."""
    return [repeat_ci(run_fn, p, seeds) for p in params_list]
