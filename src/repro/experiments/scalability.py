"""Scalability rationale experiments (section 2).

The paper motivates the SVD against two alternatives:

1. *"Ensure that shared objects have the same addresses in all nodes.
   Unfortunately this approach does not work too well with dynamic
   objects: it tends to fragment the address space..."*
2. *"A distributed table of size O(nodes x objects) can be set up to
   track the addresses of every shared object on every node.  For a
   large number of nodes or threads, this can be prohibitively
   expensive..."*

Two experiments quantify those claims with this repository's actual
structures:

* :func:`directory_memory` — per-node metadata footprint of the SVD
  (O(objects)) vs the full address table (O(nodes x objects)) vs the
  bounded address cache, across machine sizes;
* :func:`address_space_ablation` — per-node virtual-address-space
  consumption when every allocation must occupy the *same* range on
  every node (the identical-addresses model) vs the SVD model where
  each node packs its own heap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.address_cache import DEFAULT_CAPACITY
from repro.experiments.figures import FigureResult
from repro.memory.address_space import AddressSpace
from repro.util.rng import seeded_rng

#: Modelled bytes per directory/table entry (control-block metadata or
#: one remote address + tag).  The exact constant does not matter for
#: the asymptotic comparison; 64 B is generous for an address entry.
ENTRY_BYTES = 64


def directory_memory(node_counts: Optional[Sequence[int]] = None,
                     objects: int = 32) -> FigureResult:
    """Per-node metadata bytes: SVD vs full table vs address cache.

    ``objects`` is the number of live shared variables — "most UPC
    applications ... declare a relatively small number of shared
    variables" (section 4.5).
    """
    node_counts = list(node_counts or
                       [2, 8, 32, 128, 512, 2048, 8192, 65536])
    fig = FigureResult(
        figure_id="Section 2",
        title=f"Per-node metadata bytes for {objects} shared objects",
        columns=["nodes", "svd_bytes", "full_table_bytes",
                 "addr_cache_bytes", "table_vs_svd"],
    )
    for nodes in node_counts:
        # SVD replica: one control block per object (+ local address
        # where applicable) — independent of machine size.
        svd = objects * ENTRY_BYTES
        # Full table: every node tracks every object's address on
        # every node.
        table = objects * nodes * ENTRY_BYTES
        # The paper's compromise: a bounded cache (100 entries).
        cache = min(DEFAULT_CAPACITY, objects * max(0, nodes - 1)) \
            * ENTRY_BYTES
        fig.add(nodes=nodes, svd_bytes=svd, full_table_bytes=table,
                addr_cache_bytes=cache,
                table_vs_svd=round(table / svd, 1))
    return fig


def address_space_ablation(nodes: int = 16, threads_per_node: int = 4,
                           allocs_per_thread: int = 40,
                           alloc_bytes: int = 1 << 20,
                           churn: float = 0.5,
                           seed: int = 1) -> FigureResult:
    """Identical-addresses vs SVD allocation under dynamic churn.

    Every thread repeatedly allocates (and with probability ``churn``
    frees a random earlier allocation).  Under the identical-addresses
    model every allocation must reserve the same range on *all* nodes,
    so one shared arena serves the whole machine and every node's
    address space is consumed by everyone's allocations and holes.
    Under the SVD model each node packs only its own objects.

    Reports per-node touched address space and fragmentation for both.
    """
    rng = seeded_rng(seed, 0xADD2)

    # SVD model: one private allocator per node.
    svd_spaces = [AddressSpace(i) for i in range(nodes)]
    # Identical-address model: a single logical arena (replicated
    # everywhere, so per-node consumption == arena consumption).
    ident = AddressSpace(0)

    svd_live: List[List[int]] = [[] for _ in range(nodes)]
    ident_live: List[int] = []

    for _ in range(allocs_per_thread):
        for node in range(nodes):
            for _t in range(threads_per_node):
                size = int(alloc_bytes * (0.5 + rng.random()))
                svd_live[node].append(svd_spaces[node].allocate(size))
                ident_live.append(ident.allocate(size))
                if svd_live[node] and rng.random() < churn:
                    k = int(rng.integers(len(svd_live[node])))
                    svd_spaces[node].free(svd_live[node].pop(k))
                if ident_live and rng.random() < churn:
                    k = int(rng.integers(len(ident_live)))
                    ident.free(ident_live.pop(k))

    svd_touched = max(s._brk - s.base for s in svd_spaces)
    svd_frag = max(s.fragmentation for s in svd_spaces)
    ident_touched = ident._brk - ident.base
    ident_frag = ident.fragmentation

    fig = FigureResult(
        figure_id="Section 2 (alternative 1)",
        title="Per-node address-space consumption: identical addresses "
              "vs SVD",
        columns=["model", "touched_mb", "fragmentation",
                 "blowup_vs_svd"],
    )
    fig.add(model="svd", touched_mb=round(svd_touched / 2 ** 20, 1),
            fragmentation=round(svd_frag, 3), blowup_vs_svd=1.0)
    fig.add(model="identical-addresses",
            touched_mb=round(ident_touched / 2 ** 20, 1),
            fragmentation=round(ident_frag, 3),
            blowup_vs_svd=round(ident_touched / max(1, svd_touched), 1))
    return fig


def allocation_latency(node_counts: Optional[Sequence[int]] = None,
                       threads_per_node: int = 4) -> FigureResult:
    """Simulated latency of ``upc_all_alloc`` vs machine size.

    The collective allocation rides a barrier + broadcast tree, so the
    critical path grows logarithmically — the property that let the
    design reach BlueGene/L scales [8].
    """
    from repro.network.params import GM_MARENOSTRUM
    from repro.runtime.runtime import Runtime, RuntimeConfig

    node_counts = list(node_counts or [2, 4, 8, 16, 32, 64])
    fig = FigureResult(
        figure_id="Section 2 (allocation)",
        title="upc_all_alloc critical-path latency vs machine size",
        columns=["nodes", "threads", "alloc_us", "per_node_ns"],
    )
    for nodes in node_counts:
        nthreads = nodes * threads_per_node
        cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads,
                            threads_per_node=threads_per_node, seed=1)
        rt = Runtime(cfg)
        marks = {}

        def kernel(th):
            t0 = th.runtime.sim.now
            yield from th.all_alloc(4096, blocksize=64, dtype="u8")
            if th.id == 0:
                marks["alloc_us"] = th.runtime.sim.now - t0
            yield from th.barrier()

        rt.spawn(kernel)
        rt.run()
        alloc_us = marks["alloc_us"]
        fig.add(nodes=nodes, threads=nthreads,
                alloc_us=round(alloc_us, 2),
                per_node_ns=round(1000 * alloc_us / nodes, 1))
    return fig
