"""The paper's contribution: the remote address cache (section 3).

Components:

* :class:`~repro.core.address_cache.RemoteAddressCache` — per-node
  bounded hash table ``(SVD handle, node id) -> remote base address``;
* :class:`~repro.core.pinned_table.PinnedAddressTable` — per-node
  registry of pinned shared objects ("tagged by local virtual
  addresses and contains physical addresses in the format needed by
  RDMA operations");
* :mod:`~repro.core.policy` — pinning policies (greedy pin-everything
  of section 3.1 and the chunked variant of section 3.1's "more
  elaborated technique");
* :mod:`~repro.core.piggyback` — how a cache miss's fallback protocol
  carries the remote base address home.

The package is deliberately independent of :mod:`repro.runtime`: cache
keys are opaque hashables, costs are plain numbers charged by the
caller, so the cache can be unit-tested and trace-driven in isolation
(which is how the Figure 8 hit-rate study runs at 2048 threads).
"""

from repro.core.address_cache import EvictionPolicy, RemoteAddressCache
from repro.core.piggyback import PiggybackConfig, PiggybackMode
from repro.core.pinned_table import PinnedAddressTable
from repro.core.policy import PinningPolicy
from repro.core.stats import CacheStats

__all__ = [
    "RemoteAddressCache",
    "EvictionPolicy",
    "CacheStats",
    "PinnedAddressTable",
    "PinningPolicy",
    "PiggybackConfig",
    "PiggybackMode",
]
