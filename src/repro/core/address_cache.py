"""The remote address cache (section 3).

    "The address cache is implemented as a hash table.  Each entry in
    the cache correlates a universal SVD handle and a node identifier
    ID with the physical base address for the shared variable
    identified by the SVD handle on the remote node ID."

Design points taken from the paper:

* a **hit** guarantees `base address + offset` can be computed on the
  initiator, enabling an RDMA transfer;
* a **miss** falls back to the default protocol, which piggybacks the
  base address home, seeding the cache for the next access;
* entries are **eagerly invalidated** when the shared object is
  deallocated (section 3.1), so consistency "is not an issue" as long
  as objects stay pinned until freed;
* the table is "a dynamic hash table.  Its size is allowed to increase
  on demand to a fixed limit of 100 entries" (section 4.5) — we expose
  the capacity (and the eviction policy, for ablations) as knobs.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.core.stats import CacheStats
from repro.util.rng import seeded_rng

#: The paper's default capacity (section 4.5).
DEFAULT_CAPACITY = 100

#: Cache key: (SVD handle, remote node id).  The handle is opaque to
#: this module; anything hashable works.
Key = Tuple[Hashable, int]


class EvictionPolicy(enum.Enum):
    """Victim selection when the table is full (LRU is the default;
    FIFO and RANDOM exist for the ablation study)."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class RemoteAddressCache:
    """Bounded map ``(handle, node) -> remote base address``.

    Lookup/insert *costs* (µs) are accumulated into :class:`CacheStats`
    and also returned, so the calling op can charge them on the clock.
    """

    __slots__ = ("capacity", "policy", "stats", "_table", "_rng",
                 "lookup_cost_us", "insert_cost_us", "enabled",
                 "_by_handle", "_keys", "_pos",
                 "events", "clock", "node_id")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 policy: EvictionPolicy = EvictionPolicy.LRU,
                 lookup_cost_us: float = 0.15,
                 insert_cost_us: float = 0.25,
                 seed: int = 0,
                 enabled: bool = True) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.stats = CacheStats()
        self._table: "OrderedDict[Key, int]" = OrderedDict()
        #: Secondary index handle -> keys, so eager invalidation on
        #: free costs O(entries for that handle), not a full-table scan.
        self._by_handle: Dict[Hashable, set] = {}
        #: Dense key list + position map for O(1) swap-remove — RANDOM
        #: eviction draws a victim without materialising the table.
        self._keys: list = []
        self._pos: Dict[Key, int] = {}
        self._rng = seeded_rng(seed, 0xCACE)
        self.lookup_cost_us = lookup_cost_us
        self.insert_cost_us = insert_cost_us
        #: Master switch: a disabled cache always misses and never
        #: stores — the "without cache" baseline runs use this so both
        #: configurations execute identical code paths.
        self.enabled = enabled
        #: Flight-recorder hookup, injected by the Runtime; a bare
        #: cache (unit tests) records nothing.
        self.events = None
        self.clock = None
        self.node_id = -1

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Key) -> bool:
        return key in self._table

    # -- secondary indices ----------------------------------------------

    def _index_add(self, key: Key) -> None:
        self._by_handle.setdefault(key[0], set()).add(key)
        self._pos[key] = len(self._keys)
        self._keys.append(key)

    def _index_discard(self, key: Key) -> None:
        keys = self._by_handle.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_handle[key[0]]
        # Swap-remove from the dense list: move the tail key into the
        # vacated slot so deletion stays O(1).
        pos = self._pos.pop(key)
        tail = self._keys.pop()
        if tail != key:
            self._keys[pos] = tail
            self._pos[tail] = pos

    # -- operations -----------------------------------------------------

    def lookup(self, handle: Hashable, node: int) -> Tuple[Optional[int], float]:
        """Return ``(base_address | None, cost_us)`` for the pair.

        A disabled cache charges nothing and always misses (that path
        doesn't even do the hash probe in the real runtime).
        """
        if not self.enabled:
            return None, 0.0
        cost = self.lookup_cost_us
        self.stats.lookup_time_us += cost
        key = (handle, node)
        addr = self._table.get(key)
        if addr is None:
            self.stats.misses += 1
            return None, cost
        self.stats.hits += 1
        if self.policy is EvictionPolicy.LRU:
            self._table.move_to_end(key)
        return addr, cost

    def insert(self, handle: Hashable, node: int, base_addr: int) -> float:
        """Record a piggybacked address; returns the cost to charge."""
        if not self.enabled or self.capacity == 0:
            return 0.0
        cost = self.insert_cost_us
        self.stats.insert_time_us += cost
        key = (handle, node)
        if key in self._table:
            self._table[key] = base_addr
            if self.policy is EvictionPolicy.LRU:
                self._table.move_to_end(key)
            self.stats.updates += 1
            return cost
        if len(self._table) >= self.capacity:
            self._evict_one()
        self._table[key] = base_addr
        self._index_add(key)
        self.stats.insertions += 1
        return cost

    def _evict_one(self) -> None:
        self.stats.evictions += 1
        if self.policy is EvictionPolicy.RANDOM:
            victim = self._keys[int(self._rng.integers(len(self._keys)))]
            del self._table[victim]
        else:
            # LRU keeps recency order via move_to_end; FIFO never
            # reorders — either way the head is the victim.
            victim, _ = self._table.popitem(last=False)
        self._index_discard(victim)
        ev = self.events
        if ev is not None and ev.enabled:
            from repro.obs.events import CACHE_EVICT
            ev.emit(self.clock.now if self.clock else 0.0, CACHE_EVICT,
                    node=self.node_id, handle=str(victim[0]),
                    target=victim[1], policy=self.policy.value)

    # -- invalidation ------------------------------------------------------

    def invalidate_handle(self, handle: Hashable) -> int:
        """Eager invalidation on deallocation (section 3.1): drop every
        entry of ``handle`` regardless of node.  Returns entries dropped.

        Served from the per-handle index — O(entries for this handle)
        rather than a scan of the whole table, which matters when frees
        are frequent and the table is at capacity.  The index entry is
        popped outright (never looked up with a default that would
        materialize it), so invalidating a handle with zero cached
        entries — the common case under alloc/free churn, where most
        frees never had a remote reader — leaves no empty per-handle
        set behind to accumulate.
        """
        doomed = self._by_handle.pop(handle, None)
        if not doomed:
            return 0
        n = len(doomed)
        for key in doomed:
            del self._table[key]
            self._index_discard(key)
        self.stats.invalidations += n
        ev = self.events
        if ev is not None and ev.enabled:
            from repro.obs.events import CACHE_INVALIDATE
            ev.emit(self.clock.now if self.clock else 0.0,
                    CACHE_INVALIDATE, node=self.node_id,
                    handle=str(handle), count=n)
        return n

    def invalidate_entry(self, handle: Hashable, node: int) -> bool:
        """Targeted invalidation of one ``(handle, node)`` entry — the
        RDMA-timeout degradation path drops exactly the suspect address
        and nothing else, then lets the AM fallback's piggyback re-seed
        it.  O(1) via the same swap-remove indices eviction uses.
        Returns True if the entry was present."""
        key = (handle, node)
        if key not in self._table:
            return False
        del self._table[key]
        self._index_discard(key)
        self.stats.invalidations += 1
        ev = self.events
        if ev is not None and ev.enabled:
            from repro.obs.events import CACHE_INVALIDATE
            ev.emit(self.clock.now if self.clock else 0.0,
                    CACHE_INVALIDATE, node=self.node_id,
                    handle=str(handle), count=1, target=node)
        return True

    def invalidate_all(self) -> int:
        """Drop everything (runtime teardown)."""
        n = len(self._table)
        self._table.clear()
        self._by_handle.clear()
        self._keys.clear()
        self._pos.clear()
        self.stats.invalidations += n
        return n

    def entries(self) -> Dict[Key, int]:
        """Snapshot of the table (for tests and debugging)."""
        return dict(self._table)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RemoteAddressCache {len(self._table)}/{self.capacity} "
                f"policy={self.policy.value} hit_rate={self.stats.hit_rate:.2f}>")
