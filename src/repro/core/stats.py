"""Counters for the remote address cache.

These feed the Figure 8 hit-rate study and the section 6 claim that
"the overhead of unsuccessful attempts to cache remote addresses is
relatively small, typically 1.5% and never worse than 2%".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one node's address cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    updates: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: µs spent on lookups/inserts (the "unsuccessful attempt" cost).
    lookup_time_us: float = 0.0
    insert_time_us: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 before any access."""
        n = self.accesses
        return self.hits / n if n else 0.0

    @property
    def overhead_us(self) -> float:
        """Total bookkeeping time — the cost a cache-miss-heavy run
        pays on top of the uncached baseline."""
        return self.lookup_time_us + self.insert_time_us

    def merge(self, other: "CacheStats") -> None:
        """Fold another node's stats into this aggregate."""
        self.hits += other.hits
        self.misses += other.misses
        self.insertions += other.insertions
        self.updates += other.updates
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        self.lookup_time_us += other.lookup_time_us
        self.insert_time_us += other.insert_time_us

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits, misses=self.misses,
            insertions=self.insertions, updates=self.updates,
            evictions=self.evictions, invalidations=self.invalidations,
            lookup_time_us=self.lookup_time_us,
            insert_time_us=self.insert_time_us,
        )
