"""Pinning policies (section 3.1).

The paper presents the greedy policy and mentions a refined one:

    "(i) the entire memory allocated for a shared object is pinned at
    once on a particular node. ... (ii) once a shared object is pinned
    it remains pinned until it is freed."

    "We have successfully implemented a more elaborated technique to
    deal with [per-call and total pin limits] obtaining similar
    results."  (the chunked policy below)

A policy decides *what byte range to pin* when a shared object is
first touched by a remote access.  It returns ranges; the caller
registers them through the :class:`~repro.core.pinned_table.PinnedAddressTable`.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.util.units import MB


class PinningPolicy(enum.Enum):
    """Which part of an object to pin on first remote touch."""

    #: Section 3.1's greedy default: pin the whole object at once.
    PIN_EVERYTHING = "pin-everything"
    #: The refined technique: pin fixed-size chunks on demand, so
    #: per-call and total registration limits are respected.
    CHUNKED = "chunked"


#: Chunk granularity of the CHUNKED policy.  Matches LAPI's per-handle
#: cap so a chunk always fits in one registered handle.
DEFAULT_CHUNK_BYTES = 32 * MB


def ranges_to_pin(policy: PinningPolicy, obj_vaddr: int, obj_size: int,
                  touch_offset: int, touch_size: int,
                  chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                  ) -> List[Tuple[int, int]]:
    """Byte ranges to register for a remote touch of
    ``[touch_offset, touch_offset + touch_size)`` within the object.

    Returns a list of ``(vaddr, size)`` pairs (possibly empty ranges
    are never returned).
    """
    if touch_size <= 0:
        raise ValueError(f"touch_size must be > 0, got {touch_size}")
    if touch_offset < 0 or touch_offset + touch_size > obj_size:
        raise ValueError(
            f"touch [{touch_offset}, {touch_offset + touch_size}) outside "
            f"object of {obj_size} bytes"
        )
    if policy is PinningPolicy.PIN_EVERYTHING:
        return [(obj_vaddr, obj_size)]
    if policy is PinningPolicy.CHUNKED:
        first = (touch_offset // chunk_bytes) * chunk_bytes
        last = touch_offset + touch_size - 1
        out: List[Tuple[int, int]] = []
        pos = first
        while pos <= last:
            size = min(chunk_bytes, obj_size - pos)
            out.append((obj_vaddr + pos, size))
            pos += chunk_bytes
        return out
    raise ValueError(f"unknown pinning policy {policy!r}")
