"""The pinned address table (section 3).

    "To this end we augmented the address cache with a table of
    registered (pinned) memory locations.  The pinned address table is
    tagged by local virtual addresses and contains physical addresses
    in the format needed by RDMA operations."

One table per node.  Before a node's base address may live in another
node's address cache, the object must be pinned *here* (section 3.1:
"before an address can be tagged in another node's address cache it
needs to be pinned locally").  Deallocation unpins and reports which
handle to invalidate remotely.

Section 4.5: "a table of 10 entries is more than enough for well
defined UPC applications" — entry counts are exposed for that check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.memory.pinning import PinLimitError, PinManager


@dataclass(frozen=True)
class PinnedEntry:
    """One pinned shared object (or chunk of one)."""

    handle: Hashable
    vaddr: int
    size: int
    phys: int


class PinnedAddressTable:
    """Registry of pinned shared-object memory on one node."""

    __slots__ = ("pins", "_by_vaddr", "_by_handle", "pin_time_us",
                 "unpin_time_us", "events", "clock", "node_id",
                 "_unpinnable", "last_pin_error")

    def __init__(self, pin_manager: PinManager) -> None:
        self.pins = pin_manager
        self._by_vaddr: Dict[int, PinnedEntry] = {}
        self._by_handle: Dict[Hashable, List[PinnedEntry]] = {}
        self.pin_time_us = 0.0
        self.unpin_time_us = 0.0
        #: Handles whose registration failed — served over AM forever;
        #: the fast path stops retrying them (see docs/FAULTS.md).
        self._unpinnable: set = set()
        #: The exception behind the most recent ``register`` failure,
        #: for callers that want to fail loudly instead of degrading.
        self.last_pin_error: Optional[PinLimitError] = None
        #: Flight-recorder hookup, injected by the Runtime.
        self.events = None
        self.clock = None
        self.node_id = -1

    def __len__(self) -> int:
        return len(self._by_vaddr)

    def is_pinned(self, vaddr: int, size: int = 1) -> bool:
        return self.pins.is_pinned(vaddr, size)

    def entry_count_for(self, handle: Hashable) -> int:
        return len(self._by_handle.get(handle, ()))

    # -- registration ----------------------------------------------------

    def register(self, handle: Hashable, vaddr: int,
                 size: int) -> Tuple[float, bool]:
        """Pin ``[vaddr, vaddr+size)`` for ``handle``; return
        ``(cost_us, ok)``.

        Idempotent: re-registering a pinned range costs nothing —
        "once a shared object is pinned it remains pinned until it is
        freed" (section 3.1).

        Registration can *fail*: NIC registration memory is finite
        (``PinManager``'s total-bytes limit, or an injected fault
        budget).  A failure returns ``(0.0, False)`` — the table is
        left untouched — and records the underlying exception in
        ``last_pin_error``; the caller decides between raising it
        (strict mode, the pre-fault behavior) and degrading the handle
        to the AM path via :meth:`mark_unpinnable`.
        """
        try:
            cost, regions = self.pins.pin(vaddr, size)
        except PinLimitError as exc:
            self.last_pin_error = exc
            return 0.0, False
        fresh = 0
        for region in regions:
            if region.vaddr in self._by_vaddr:
                continue  # already tabled (idempotent re-registration)
            entry = PinnedEntry(handle=handle, vaddr=region.vaddr,
                                size=region.size, phys=region.phys)
            self._by_vaddr[region.vaddr] = entry
            self._by_handle.setdefault(handle, []).append(entry)
            fresh += 1
        self.pin_time_us += cost
        ev = self.events
        if fresh and ev is not None and ev.enabled:
            from repro.obs.events import PIN
            ev.emit(self.clock.now if self.clock else 0.0, PIN,
                    node=self.node_id, handle=str(handle), vaddr=vaddr,
                    size=size, regions=fresh, cost=cost)
        return cost, True

    # -- degradation -----------------------------------------------------

    def mark_unpinnable(self, handle: Hashable) -> None:
        """Permanently degrade ``handle`` on this node: registration
        failed, so it is served over the AM path forever and the fast
        path must stop retrying (one failed pin attempt, not one per
        access)."""
        self._unpinnable.add(handle)

    def is_unpinnable(self, handle: Hashable) -> bool:
        return handle in self._unpinnable

    @property
    def unpinnable_count(self) -> int:
        return len(self._unpinnable)

    def lookup_phys(self, vaddr: int) -> Optional[int]:
        """Virtual → physical for RDMA descriptors; None if unpinned."""
        try:
            return self.pins.phys_addr(vaddr)
        except Exception:
            return None

    # -- deregistration ----------------------------------------------------

    def unregister_handle(self, handle: Hashable) -> Tuple[float, int]:
        """Unpin everything belonging to ``handle`` (object freed).

        Returns ``(cost_us, entries_removed)``.  The caller is
        responsible for eagerly invalidating remote address caches.
        """
        entries = self._by_handle.pop(handle, [])
        self._unpinnable.discard(handle)
        cost = 0.0
        for entry in entries:
            self._by_vaddr.pop(entry.vaddr, None)
            cost += self.pins.unpin(entry.vaddr, entry.size)
        self.unpin_time_us += cost
        ev = self.events
        if entries and ev is not None and ev.enabled:
            from repro.obs.events import UNPIN
            ev.emit(self.clock.now if self.clock else 0.0, UNPIN,
                    node=self.node_id, handle=str(handle),
                    count=len(entries), cost=cost)
        return cost, len(entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PinnedAddressTable entries={len(self._by_vaddr)} "
                f"bytes={self.pins.pinned_bytes}>")
