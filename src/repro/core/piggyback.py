"""Piggyback strategies for populating the address cache.

Section 3: "We have modified the default (non-RDMA) one-sided
messaging protocol to retrieve the base address of the remote shared
object during the transfer by piggybacking it either on the data
stream or on the ACK message."

Three modes:

``ON_DATA``
    the base address rides on the GET reply / PUT data message — no
    extra message, a few extra header bytes (the paper's default, and
    what both the LAPI and GM integrations in Figure 5 do);
``ON_ACK``
    the address rides on the PUT acknowledgement;
``EXPLICIT``
    a dedicated address-fetch round trip runs *before* the data
    transfer (a strawman for the ablation — this is what you would do
    without protocol integration, and it is strictly worse).

The mode only changes *when* the initiator learns the address and how
many extra bytes/messages the miss path pays; hits are identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PiggybackMode(enum.Enum):
    ON_DATA = "on-data"
    ON_ACK = "on-ack"
    EXPLICIT = "explicit"
    DISABLED = "disabled"


@dataclass(frozen=True)
class PiggybackConfig:
    """How the fallback protocol carries remote base addresses."""

    mode: PiggybackMode = PiggybackMode.ON_DATA
    #: Extra bytes appended to the carrying message.
    extra_bytes: int = 16

    @property
    def wants_address(self) -> bool:
        """Should the fallback protocol request the base address?"""
        return self.mode is not PiggybackMode.DISABLED

    @property
    def needs_dedicated_fetch(self) -> bool:
        return self.mode is PiggybackMode.EXPLICIT

    def reply_extra_bytes(self) -> int:
        """Bytes added to the data reply (ON_DATA) — other modes add
        their bytes to control messages that already exist."""
        if self.mode is PiggybackMode.ON_DATA:
            return self.extra_bytes
        return 0
