"""Pin-down cache: registered-region cache with lazy deregistration.

Section 3.3: *"As an optimization a cache of registered memory regions
was implemented with lazy memory de-registration"* — because on
Myrinet/GM "memory registration is an expensive operation; memory
de-registration even more so", the transport keeps regions registered
after a transfer finishes and only deregisters (lazily, LRU-first)
when the DMAable-memory budget is exceeded.

This is the same idea as the Pin-down cache of PM (Tezuka et al.) and
Berkeley UPC's Firehose, cited in section 5.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.memory.errors import PinLimitError
from repro.memory.pinning import PinManager


class RegistrationCache:
    """LRU cache of registered regions on top of a :class:`PinManager`.

    ``register`` returns the µs cost actually incurred:

    * hit → 0 (region already pinned, refresh LRU);
    * miss → pin cost, possibly plus unpin costs of evicted victims
      when ``capacity_bytes`` would be exceeded.
    """

    __slots__ = ("pins", "capacity_bytes", "_lru", "hits", "misses",
                 "evictions", "evicted_bytes")

    def __init__(self, pin_manager: PinManager, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise PinLimitError(
                f"registration cache capacity must be > 0, got {capacity_bytes}"
            )
        self.pins = pin_manager
        self.capacity_bytes = capacity_bytes
        #: (vaddr, size) -> None, in LRU order (oldest first).
        self._lru: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0

    @property
    def resident_bytes(self) -> int:
        return sum(size for (_, size) in self._lru)

    def register(self, vaddr: int, size: int) -> float:
        """Ensure ``[vaddr, vaddr+size)`` is registered; return µs cost."""
        key = (vaddr, size)
        if key in self._lru and self.pins.is_pinned(vaddr, size):
            self._lru.move_to_end(key)
            self.hits += 1
            return 0.0
        self.misses += 1
        cost = self._make_room(size)
        pin_cost, _ = self.pins.pin(vaddr, size)
        cost += pin_cost
        self._lru[key] = None
        self._lru.move_to_end(key)
        return cost

    def _make_room(self, incoming: int) -> float:
        """Lazily deregister LRU victims until ``incoming`` bytes fit."""
        if incoming > self.capacity_bytes:
            raise PinLimitError(
                f"region of {incoming} bytes exceeds registration cache "
                f"capacity {self.capacity_bytes}"
            )
        cost = 0.0
        while self.resident_bytes + incoming > self.capacity_bytes and self._lru:
            (vaddr, size), _ = self._lru.popitem(last=False)
            cost += self.pins.unpin(vaddr, size)
            self.evictions += 1
            self.evicted_bytes += size
        return cost

    def invalidate(self, vaddr: int, size: int) -> float:
        """Drop (and deregister) any cached region overlapping the range.

        Called when the memory is freed; returns the unpin cost.
        """
        cost = 0.0
        doomed = [k for k in self._lru
                  if k[0] < vaddr + size and vaddr < k[0] + k[1]]
        for key in doomed:
            del self._lru[key]
            cost += self.pins.unpin(*key)
        return cost

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RegistrationCache entries={len(self._lru)} "
                f"bytes={self.resident_bytes}/{self.capacity_bytes} "
                f"hit_rate={self.hit_rate:.2f}>")
