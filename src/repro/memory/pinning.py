"""Memory registration (pinning) model.

RDMA hardware reads and writes physical memory, so any buffer touched
by a one-sided operation must be *registered*: the OS pins its pages
and hands the NIC a translation.  The paper leans on three facts:

* registration is expensive and deregistration more so (section 3.3);
* LAPI caps the bytes behind a single registered handle (32 MB on the
  paper's machines, section 3.2) so large objects pin in chunks;
* GM caps the *total* DMAable memory (1 GB, section 3.3).

:class:`PinManager` is a per-node registry of pinned regions.  Costs
are returned to the caller (the transport charges them on the virtual
clock); this module itself is clock-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memory.errors import NotPinnedError, PinLimitError

#: Physical addresses are synthesized from virtual ones with a node
#: salt — "physical addresses in the format needed by RDMA operations"
#: (section 3) are opaque tokens as far as the model is concerned.
_PHYS_SALT = 0x7A00_0000_0000


@dataclass(frozen=True)
class PinCostModel:
    """Cost of registering/deregistering memory, in microseconds.

    ``pin = pin_base_us + pages * pin_per_page_us`` and likewise for
    unpin.  Defaults approximate published GM measurements (tens of µs
    per registration, dereg ~2x pin).
    """

    pin_base_us: float = 10.0
    pin_per_page_us: float = 0.25
    unpin_base_us: float = 20.0
    unpin_per_page_us: float = 0.5

    def pin_cost(self, nbytes: int, page_size: int) -> float:
        pages = -(-nbytes // page_size)
        return self.pin_base_us + pages * self.pin_per_page_us

    def unpin_cost(self, nbytes: int, page_size: int) -> float:
        pages = -(-nbytes // page_size)
        return self.unpin_base_us + pages * self.unpin_per_page_us


@dataclass(frozen=True)
class PinnedRegion:
    """One registered handle: a contiguous pinned byte range."""

    vaddr: int
    size: int
    phys: int

    @property
    def end(self) -> int:
        return self.vaddr + self.size

    def covers(self, vaddr: int, size: int) -> bool:
        return self.vaddr <= vaddr and vaddr + size <= self.end


class PinManager:
    """Registry of pinned regions on one node.

    ``max_region_bytes`` models LAPI's per-handle cap: a pin request
    larger than it is split into several :class:`PinnedRegion` handles.
    ``max_total_bytes`` models GM's DMAable-memory cap: exceeding it
    raises :class:`PinLimitError` (callers then fall back to copy
    protocols or evict via the registration cache).
    """

    __slots__ = ("node_id", "page_size", "cost_model", "max_region_bytes",
                 "max_total_bytes", "_regions", "pinned_bytes",
                 "pin_calls", "unpin_calls", "peak_pinned_bytes")

    def __init__(self, node_id: int, cost_model: Optional[PinCostModel] = None,
                 page_size: int = 4096,
                 max_region_bytes: Optional[int] = None,
                 max_total_bytes: Optional[int] = None) -> None:
        self.node_id = node_id
        self.page_size = page_size
        self.cost_model = cost_model or PinCostModel()
        self.max_region_bytes = max_region_bytes
        self.max_total_bytes = max_total_bytes
        #: vaddr of region start -> PinnedRegion (regions never overlap)
        self._regions: Dict[int, PinnedRegion] = {}
        self.pinned_bytes = 0
        self.peak_pinned_bytes = 0
        self.pin_calls = 0
        self.unpin_calls = 0

    # -- queries -------------------------------------------------------

    def is_pinned(self, vaddr: int, size: int = 1) -> bool:
        """True if ``[vaddr, vaddr+size)`` is fully covered.

        Regions produced by one chunked ``pin`` call are contiguous, so
        coverage may span several of them.
        """
        pos = vaddr
        end = vaddr + size
        while pos < end:
            region = self._find_covering(pos)
            if region is None:
                return False
            pos = region.end
        return True

    def _find_covering(self, vaddr: int) -> Optional[PinnedRegion]:
        for region in self._regions.values():
            if region.vaddr <= vaddr < region.end:
                return region
        return None

    def phys_addr(self, vaddr: int) -> int:
        """Physical address for a pinned virtual address.

        This is what the paper's *pinned address table* serves: "tagged
        by local virtual addresses and contains physical addresses in
        the format needed by RDMA operations" (section 3).
        """
        region = self._find_covering(vaddr)
        if region is None:
            raise NotPinnedError(
                f"node {self.node_id}: {vaddr:#x} is not registered"
            )
        return region.phys + (vaddr - region.vaddr)

    # -- pin / unpin -----------------------------------------------------

    def pin(self, vaddr: int, size: int) -> Tuple[float, List[PinnedRegion]]:
        """Register ``[vaddr, vaddr+size)``; returns (cost_us, regions).

        Already-pinned spans are skipped (idempotent, zero marginal
        cost), matching the greedy "once pinned stays pinned" policy of
        section 3.1.  Chunking honours ``max_region_bytes``.
        """
        if size <= 0:
            raise PinLimitError(f"pin size must be > 0, got {size}")
        if self.is_pinned(vaddr, size):
            return 0.0, self._regions_covering(vaddr, size)

        new_bytes = self._uncovered_bytes(vaddr, size)
        if (self.max_total_bytes is not None
                and self.pinned_bytes + new_bytes > self.max_total_bytes):
            raise PinLimitError(
                f"node {self.node_id}: pinning {new_bytes} bytes would "
                f"exceed the DMAable limit of {self.max_total_bytes}"
            )

        cost = 0.0
        created: List[PinnedRegion] = []
        pos, end = vaddr, vaddr + size
        while pos < end:
            covering = self._find_covering(pos)
            if covering is not None:
                pos = covering.end
                continue
            # Extent of the uncovered gap starting at pos.
            gap_end = min(end, self._next_region_start(pos, end))
            chunk_cap = self.max_region_bytes or (gap_end - pos)
            while pos < gap_end:
                chunk = min(chunk_cap, gap_end - pos)
                region = PinnedRegion(
                    vaddr=pos, size=chunk,
                    phys=_PHYS_SALT + (self.node_id << 40) + pos,
                )
                self._regions[pos] = region
                created.append(region)
                cost += self.cost_model.pin_cost(chunk, self.page_size)
                self.pinned_bytes += chunk
                self.pin_calls += 1
                pos += chunk
        self.peak_pinned_bytes = max(self.peak_pinned_bytes, self.pinned_bytes)
        return cost, created

    def _next_region_start(self, pos: int, end: int) -> int:
        starts = [r.vaddr for r in self._regions.values()
                  if pos < r.vaddr < end]
        return min(starts) if starts else end

    def _uncovered_bytes(self, vaddr: int, size: int) -> int:
        covered = 0
        for region in self._regions.values():
            lo = max(region.vaddr, vaddr)
            hi = min(region.end, vaddr + size)
            if hi > lo:
                covered += hi - lo
        return size - covered

    def _regions_covering(self, vaddr: int, size: int) -> List[PinnedRegion]:
        out = []
        pos, end = vaddr, vaddr + size
        while pos < end:
            region = self._find_covering(pos)
            assert region is not None
            out.append(region)
            pos = region.end
        return out

    def unpin(self, vaddr: int, size: int) -> float:
        """Deregister every region overlapping ``[vaddr, vaddr+size)``.

        Returns the deregistration cost. Used when a shared object is
        freed ("once a shared object is pinned it remains pinned until
        it is freed", section 3.1) and by the registration cache's lazy
        eviction.
        """
        cost = 0.0
        doomed = [r for r in self._regions.values()
                  if r.vaddr < vaddr + size and vaddr < r.end]
        for region in doomed:
            del self._regions[region.vaddr]
            self.pinned_bytes -= region.size
            self.unpin_calls += 1
            cost += self.cost_model.unpin_cost(region.size, self.page_size)
        return cost

    @property
    def region_count(self) -> int:
        return len(self._regions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PinManager node={self.node_id} regions={len(self._regions)} "
                f"bytes={self.pinned_bytes}>")
