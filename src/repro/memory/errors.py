"""Exceptions raised by the memory substrate."""

from __future__ import annotations


class MemoryModelError(RuntimeError):
    """Base class for memory-model misuse."""


class AllocationError(MemoryModelError):
    """Out of simulated memory, double free, or bad free address."""


class PinLimitError(MemoryModelError):
    """A pin request exceeded the platform's registered-memory limits
    (total DMAable bytes, GM ~1 GB on MareNostrum)."""


class NotPinnedError(MemoryModelError):
    """Asked for a physical address of memory that is not registered —
    an RDMA op on unpinned memory would fault on real hardware."""
