"""Per-node memory substrate.

Models the three memory facts the paper's optimization interacts with:

* every node has its **own virtual address space**, so the same shared
  object has a *different* base address on every node (Figure 2 —
  that is why remote addresses must be discovered and cached at all);
* RDMA needs memory **registered/pinned**, an expensive OS operation
  with platform limits (LAPI: 32 MB per registered handle, GM: 1 GB of
  DMAable memory on the test machines — sections 3.2 and 3.3);
* GM-style transports amortize registration with a **pin-down cache**
  of registered regions with lazy deregistration (section 3.3,
  citing Tezuka et al.).

This package is pure bookkeeping + cost arithmetic; it never touches
the simulator clock.  Transports charge the returned costs.
"""

from repro.memory.errors import (
    AllocationError,
    MemoryModelError,
    NotPinnedError,
    PinLimitError,
)
from repro.memory.address_space import AddressSpace
from repro.memory.pinning import PinCostModel, PinManager, PinnedRegion
from repro.memory.registration_cache import RegistrationCache

__all__ = [
    "AddressSpace",
    "PinCostModel",
    "PinManager",
    "PinnedRegion",
    "RegistrationCache",
    "AllocationError",
    "MemoryModelError",
    "NotPinnedError",
    "PinLimitError",
]
