"""Per-node virtual address space with a first-fit allocator.

Each node's heap starts at a node-dependent base so the same shared
object lands at a *different* virtual address on every node — the
property (Figure 2: "Distributed shared array All-0 has a different
local address on every node") that motivates the entire remote address
cache.  Previously existing UPC runtimes forced identical addresses on
all nodes, fragmenting the address space (section 5); the XLUPC design
deliberately does not.

Addresses are plain ints; no real memory backs them (the data plane
lives in NumPy arrays owned by the runtime's shared objects).
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Tuple

from repro.memory.errors import AllocationError

#: Heap base of node 0; chosen to look like a mmap'd region.
_HEAP_BASE = 0x2000_0000
#: Per-node stagger.  A prime-ish odd stride keeps node heaps disjoint
#: and makes accidental cross-node address reuse (a classic bug this
#: model is designed to surface) essentially impossible.
_NODE_STRIDE = 0x0137_1000_0


class AddressSpace:
    """Virtual address allocator for one node.

    First-fit over a sorted free list with coalescing on free; bump
    allocation extends the heap when no hole fits.  O(holes) per call,
    which is fine: UPC applications declare few shared variables
    (section 4.5).
    """

    __slots__ = ("node_id", "page_size", "_base", "_brk", "_limit",
                 "_live", "_holes", "allocated_bytes", "peak_bytes",
                 "alloc_count", "free_count")

    def __init__(self, node_id: int, page_size: int = 4096,
                 capacity_bytes: int = 8 * 1024 ** 3) -> None:
        if node_id < 0:
            raise AllocationError(f"node_id must be >= 0, got {node_id}")
        self.node_id = node_id
        self.page_size = page_size
        self._base = _HEAP_BASE + node_id * _NODE_STRIDE
        self._brk = self._base
        self._limit = self._base + capacity_bytes
        #: live allocations: vaddr -> size
        self._live: Dict[int, int] = {}
        #: free holes as sorted list of (vaddr, size)
        self._holes: List[Tuple[int, int]] = []
        self.allocated_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    # -- queries ------------------------------------------------------

    @property
    def base(self) -> int:
        return self._base

    def size_of(self, vaddr: int) -> int:
        """Size of the live allocation starting at ``vaddr``."""
        try:
            return self._live[vaddr]
        except KeyError:
            raise AllocationError(
                f"node {self.node_id}: {vaddr:#x} is not a live allocation"
            ) from None

    def owns(self, vaddr: int) -> bool:
        """True if ``vaddr`` falls inside this node's heap range."""
        return self._base <= vaddr < self._limit

    def contains(self, vaddr: int, size: int = 1) -> bool:
        """True if ``[vaddr, vaddr+size)`` lies inside one live block."""
        for start, blk in self._live.items():
            if start <= vaddr and vaddr + size <= start + blk:
                return True
        return False

    # -- allocate / free ---------------------------------------------

    def allocate(self, size: int, align: int = 16) -> int:
        """Allocate ``size`` bytes, ``align``-aligned; returns vaddr."""
        if size <= 0:
            raise AllocationError(f"allocation size must be > 0, got {size}")
        if align <= 0 or (align & (align - 1)):
            raise AllocationError(f"alignment must be a power of two, got {align}")
        # First fit in existing holes.
        for i, (start, hole) in enumerate(self._holes):
            aligned = (start + align - 1) & ~(align - 1)
            waste = aligned - start
            if hole >= waste + size:
                del self._holes[i]
                if waste:
                    insort(self._holes, (start, waste))
                rest = hole - waste - size
                if rest:
                    insort(self._holes, (aligned + size, rest))
                return self._finish_alloc(aligned, size)
        # Bump.
        aligned = (self._brk + align - 1) & ~(align - 1)
        if aligned + size > self._limit:
            raise AllocationError(
                f"node {self.node_id}: out of memory "
                f"({size} bytes requested, heap limit {self._limit:#x})"
            )
        if aligned != self._brk:
            insort(self._holes, (self._brk, aligned - self._brk))
        self._brk = aligned + size
        return self._finish_alloc(aligned, size)

    def _finish_alloc(self, vaddr: int, size: int) -> int:
        self._live[vaddr] = size
        self.allocated_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        self.alloc_count += 1
        return vaddr

    def free(self, vaddr: int) -> int:
        """Free the block at ``vaddr``; returns its size."""
        size = self._live.pop(vaddr, None)
        if size is None:
            raise AllocationError(
                f"node {self.node_id}: free({vaddr:#x}) — not allocated "
                "(double free?)"
            )
        self.allocated_bytes -= size
        self.free_count += 1
        self._insert_hole(vaddr, size)
        return size

    def _insert_hole(self, vaddr: int, size: int) -> None:
        """Insert and coalesce with adjacent holes / the brk frontier."""
        insort(self._holes, (vaddr, size))
        # Coalesce neighbours (the list is sorted by address).
        merged: List[Tuple[int, int]] = []
        for start, sz in self._holes:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((start, sz))
        # Give back a hole touching the frontier.
        if merged and merged[-1][0] + merged[-1][1] == self._brk:
            start, sz = merged.pop()
            self._brk = start
        self._holes = merged

    # -- stats ---------------------------------------------------------

    @property
    def fragmentation(self) -> float:
        """Fraction of the touched heap currently sitting in holes."""
        touched = self._brk - self._base
        if touched == 0:
            return 0.0
        return sum(sz for _, sz in self._holes) / touched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<AddressSpace node={self.node_id} live={len(self._live)} "
                f"bytes={self.allocated_bytes} holes={len(self._holes)}>")
