"""Collective operations: barrier (and the broadcast used by
collective allocation).

The paper's stressmarks lean on ``upc_barrier`` both for correctness
and, in Update, as the idle state of non-communicating threads
("the other threads idle in a barrier", section 4.4) — which matters
to the model because a thread blocked in a barrier is *inside the
runtime* and therefore polls the network on GM.

Cost model: a dissemination barrier over the nodes —
``2 * ceil(log2(nnodes))`` message stages of typical wire latency,
plus a per-thread software entry/exit cost.  Within a node threads
synchronize through shared memory at memcpy-like cost.
"""

from __future__ import annotations

import math
from typing import Dict, TYPE_CHECKING

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime
    from repro.runtime.thread import UPCThread


class BarrierManager:
    """Counts arrivals per barrier generation; releases everyone."""

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self._generation = 0
        self._arrived = 0
        self._release: Event = Event(runtime.sim, name="barrier-gen0")
        self.completions = 0
        #: thread id -> release event of the generation it notified
        #: into (split-phase barrier state).
        self._notified: Dict[int, Event] = {}

    @property
    def generation(self) -> int:
        return self._generation

    def network_cost_us(self) -> float:
        """Dissemination-phase cost across nodes.

        Machines with a dedicated combine/broadcast network (BG/L's
        tree) complete the inter-node phase in near-constant time.
        """
        nnodes = self.rt.cluster.nnodes
        machine = self.rt.cluster.machine
        if nnodes <= 1:
            return 0.5  # pure shared-memory barrier
        if machine.collective_network_barrier_us > 0:
            return machine.collective_network_barrier_us
        stages = max(1, math.ceil(math.log2(nnodes)))
        hop = machine.wire_base_us + 3 * machine.wire_per_hop_us
        p = self.rt.cluster.params
        return 2 * stages * (hop + p.o_send_us + p.o_recv_us)

    def _arrive(self, thread: "UPCThread") -> Event:
        """Register one arrival; returns this generation's release
        event (triggering it if the arrival was the last)."""
        rt = self.rt
        self._arrived += 1
        release = self._release
        if self._arrived == rt.nthreads:
            # Last arrival triggers the network phase and the release.
            self._arrived = 0
            self._generation += 1
            self.completions += 1
            rt.metrics.barriers += 1
            self._release = Event(rt.sim,
                                  name=f"barrier-gen{self._generation}")
            release.succeed(value=self._generation,
                            delay=self.network_cost_us())
        return release

    def wait(self, thread: "UPCThread"):
        """Generator: block until every UPC thread arrived
        (``upc_barrier`` = notify + wait back to back)."""
        sim = self.rt.sim
        yield sim.sleep(self.rt.cluster.params.o_sw_us)  # entry
        release = self._arrive(thread)
        yield release
        # Exit overhead (wakeup, flag reset).
        yield sim.sleep(0.2)

    # -- split-phase barrier (upc_notify / upc_wait) --------------------

    def notify(self, thread: "UPCThread"):
        """``upc_notify``: register arrival and return immediately.
        The thread may compute before calling :meth:`phase_wait`,
        overlapping its work with the barrier's network phase."""
        sim = self.rt.sim
        yield sim.sleep(self.rt.cluster.params.o_sw_us)
        if thread.id in self._notified:
            raise RuntimeError(
                f"thread {thread.id}: upc_notify twice without upc_wait")
        self._notified[thread.id] = self._arrive(thread)

    def phase_wait(self, thread: "UPCThread"):
        """``upc_wait``: block until the generation this thread
        notified into has released."""
        release = self._notified.pop(thread.id, None)
        if release is None:
            raise RuntimeError(
                f"thread {thread.id}: upc_wait without upc_notify")
        yield release
        yield self.rt.sim.sleep(0.2)


class Reducer:
    """Value collectives: ``upc_all_reduce``-style combine + broadcast.

    All threads contribute a value; everyone receives the reduction.
    Cost: one barrier (the combine tree piggybacks on the barrier's
    dissemination stages) plus one broadcast-stage latency.
    """

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self._slots: Dict[int, list] = {}
        self._results: Dict[int, object] = {}

    def all_reduce(self, thread: "UPCThread", tag: int, value, op=None):
        """Generator: contribute ``value``; returns ``op``-fold of all
        contributions (default: sum).

        The fold runs in **thread-id order**, not arrival order, so
        the result is identical whatever the timing (cached vs
        uncached runs must agree even for non-commutative ``op``).
        """
        rt = self.rt
        self._slots.setdefault(tag, []).append((thread.id, value))
        yield from rt.barrier_mgr.wait(thread)
        if tag not in self._results:
            values = [v for _, v in sorted(self._slots.pop(tag))]
            if op is None:
                acc = sum(values[1:], values[0])
            else:
                acc = values[0]
                for v in values[1:]:
                    acc = op(acc, v)
            self._results[tag] = acc
        # Propagation latency of the result tree.
        nnodes = rt.cluster.nnodes
        if nnodes > 1:
            stages = max(1, math.ceil(math.log2(nnodes)))
            machine = rt.cluster.machine
            yield rt.sim.sleep(stages * (machine.wire_base_us
                                           + 3 * machine.wire_per_hop_us))
        result = self._results[tag]
        # The last thread out cleans the slot for tag reuse safety.
        return result


class Broadcaster:
    """Small-value broadcast used by collective allocation: thread 0's
    value becomes visible to everyone after a tree of control
    messages.  Modelled as one dissemination phase."""

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self._slots: Dict[int, object] = {}

    def bcast(self, thread: "UPCThread", tag: int, value=None):
        """Generator: thread 0 contributes ``value``; all threads
        return it.  Must be called collectively (all threads, same tag
        sequence) — like any UPC collective.

        The internal barrier polls the network (a thread blocked in a
        collective is inside the runtime), so in-flight AM handlers
        keep being serviced while everyone synchronizes.
        """
        rt = self.rt
        sim = rt.sim
        if thread.id == 0:
            self._slots[tag] = value
        # One barrier guarantees the slot is written, then a tree
        # latency charges the propagation.
        thread.node.progress.enter_runtime()
        try:
            yield from rt.barrier_mgr.wait(thread)
        finally:
            thread.node.progress.leave_runtime()
        nnodes = rt.cluster.nnodes
        if nnodes > 1:
            stages = max(1, math.ceil(math.log2(nnodes)))
            machine = rt.cluster.machine
            yield sim.sleep(stages * (machine.wire_base_us
                                        + 3 * machine.wire_per_hop_us))
        result = self._slots[tag]
        return result
