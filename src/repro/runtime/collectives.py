"""Collective operations: barrier (and the broadcast used by
collective allocation).

The paper's stressmarks lean on ``upc_barrier`` both for correctness
and, in Update, as the idle state of non-communicating threads
("the other threads idle in a barrier", section 4.4) — which matters
to the model because a thread blocked in a barrier is *inside the
runtime* and therefore polls the network on GM.

Cost model: a dissemination barrier over the nodes —
``2 * ceil(log2(nnodes))`` message stages of typical wire latency,
plus a per-thread software entry/exit cost.  Within a node threads
synchronize through shared memory at memcpy-like cost.
"""

from __future__ import annotations

import math
from typing import Dict, TYPE_CHECKING

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.params import MachineParams, TransportParams
    from repro.runtime.runtime import Runtime
    from repro.runtime.thread import UPCThread
    from repro.sim.shard import ShardContext


def dissemination_cost_us(machine: "MachineParams", nnodes: int,
                          params: "TransportParams") -> float:
    """Inter-node phase cost of a dissemination barrier.

    Single source of truth for *both* cores: :class:`BarrierManager`
    (pooled runtime) and :class:`ShardBarrier` (sharded PDES programs)
    charge this same formula, which is what makes barrier release
    times comparable between a pooled run and its sharded replay.
    Machines with a dedicated combine/broadcast network (BG/L's tree)
    complete in near-constant time instead.
    """
    if nnodes <= 1:
        return 0.5  # pure shared-memory barrier
    if machine.collective_network_barrier_us > 0:
        return machine.collective_network_barrier_us
    stages = max(1, math.ceil(math.log2(nnodes)))
    hop = machine.wire_base_us + 3 * machine.wire_per_hop_us
    return 2 * stages * (hop + params.o_send_us + params.o_recv_us)


class BarrierManager:
    """Counts arrivals per barrier generation; releases everyone."""

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self._generation = 0
        self._arrived = 0
        self._release: Event = Event(runtime.sim, name="barrier-gen0")
        self.completions = 0
        #: thread id -> release event of the generation it notified
        #: into (split-phase barrier state).
        self._notified: Dict[int, Event] = {}

    @property
    def generation(self) -> int:
        return self._generation

    def network_cost_us(self) -> float:
        """Dissemination-phase cost across nodes (shared formula —
        see :func:`dissemination_cost_us`)."""
        return dissemination_cost_us(self.rt.cluster.machine,
                                     self.rt.cluster.nnodes,
                                     self.rt.cluster.params)

    def _arrive(self, thread: "UPCThread") -> Event:
        """Register one arrival; returns this generation's release
        event (triggering it if the arrival was the last)."""
        rt = self.rt
        self._arrived += 1
        release = self._release
        if self._arrived == rt.nthreads:
            # Last arrival triggers the network phase and the release.
            self._arrived = 0
            self._generation += 1
            self.completions += 1
            rt.metrics.barriers += 1
            self._release = Event(rt.sim,
                                  name=f"barrier-gen{self._generation}")
            release.succeed(value=self._generation,
                            delay=self.network_cost_us())
        return release

    def wait(self, thread: "UPCThread"):
        """Generator: block until every UPC thread arrived
        (``upc_barrier`` = notify + wait back to back)."""
        sim = self.rt.sim
        yield sim.sleep(self.rt.cluster.params.o_sw_us)  # entry
        release = self._arrive(thread)
        yield release
        # Exit overhead (wakeup, flag reset).
        yield sim.sleep(0.2)

    # -- split-phase barrier (upc_notify / upc_wait) --------------------

    def notify(self, thread: "UPCThread"):
        """``upc_notify``: register arrival and return immediately.
        The thread may compute before calling :meth:`phase_wait`,
        overlapping its work with the barrier's network phase."""
        sim = self.rt.sim
        yield sim.sleep(self.rt.cluster.params.o_sw_us)
        if thread.id in self._notified:
            raise RuntimeError(
                f"thread {thread.id}: upc_notify twice without upc_wait")
        self._notified[thread.id] = self._arrive(thread)

    def phase_wait(self, thread: "UPCThread"):
        """``upc_wait``: block until the generation this thread
        notified into has released."""
        release = self._notified.pop(thread.id, None)
        if release is None:
            raise RuntimeError(
                f"thread {thread.id}: upc_wait without upc_notify")
        yield release
        yield self.rt.sim.sleep(0.2)


class ShardBarrier:
    """``upc_barrier`` semantics for *sharded* programs.

    Participants may live on any shard; arrival counting and the
    release time are resolved by the sync coordinator
    (:class:`repro.sim.sync.SyncCoordinator`), which releases at
    ``max(arrival times) + cost`` — the same counter-barrier semantics
    :class:`BarrierManager` implements inside one pooled core, with
    the cost produced by the same :func:`dissemination_cost_us`.
    ``generation`` disambiguates repeated barriers (coordinator names
    are one-shot); every participant of a generation must use the same
    number, exactly as every UPC thread passes the same barrier phase.
    """

    def __init__(self, ctx: "ShardContext", expected: int,
                 cost_us: float, entry_us: float = 0.0,
                 exit_us: float = 0.2, name: str = "barrier") -> None:
        if expected < 1:
            raise ValueError(f"expected must be >= 1, got {expected}")
        self.ctx = ctx
        self.expected = expected
        self.cost_us = cost_us
        self.entry_us = entry_us
        self.exit_us = exit_us
        self.name = name

    def wait(self, generation: int = 0, count: int = 1):
        """Generator: arrive and block until the global release."""
        sim = self.ctx.sim
        if self.entry_us:
            yield sim.sleep(self.entry_us)
        gate = self.ctx.barrier_arrive(
            f"{self.name}@{generation}", self.expected,
            self.cost_us, count=count)
        yield gate
        if self.exit_us:
            yield sim.sleep(self.exit_us)


class ShardFence:
    """``upc_fence`` semantics for sharded programs.

    Remote stores cross shard boundaries as messages, so "my writes
    are globally visible" becomes "every write I issued has been
    acknowledged".  A writer takes a token per acked operation
    (:meth:`issue`), the ack handler resolves it (:meth:`ack`), and
    :meth:`wait` blocks until all outstanding tokens resolved —
    matching the pooled runtime's rule that a fence drains the
    issuing thread's outstanding PUT tickets.
    """

    def __init__(self, ctx: "ShardContext") -> None:
        self.ctx = ctx
        self._next = 0
        self._open: Dict[int, Event] = {}
        self.completed = 0

    @property
    def outstanding(self) -> int:
        return len(self._open)

    def issue(self) -> int:
        """Register one un-acked remote operation; returns its token
        (carry it in the request so the ack can name it)."""
        self._next += 1
        self._open[self._next] = Event(self.ctx.sim,
                                       name=f"fence-ack#{self._next}")
        return self._next

    def ack(self, token: int) -> None:
        """Resolve a token (call from the ack message handler)."""
        ev = self._open.pop(token, None)
        if ev is None:
            raise RuntimeError(f"unknown or duplicate fence token {token}")
        self.completed += 1
        ev.succeed()

    def wait(self):
        """Generator: block until every issued token was acked."""
        while self._open:
            # Oldest outstanding token first (dict preserves issue
            # order); its gate resolves when the ack arrives, then the
            # loop re-checks — acks landing meanwhile already removed
            # themselves.
            token = next(iter(self._open))
            yield self._open[token]


class Reducer:
    """Value collectives: ``upc_all_reduce``-style combine + broadcast.

    All threads contribute a value; everyone receives the reduction.
    Cost: one barrier (the combine tree piggybacks on the barrier's
    dissemination stages) plus one broadcast-stage latency.
    """

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self._slots: Dict[int, list] = {}
        self._results: Dict[int, object] = {}

    def all_reduce(self, thread: "UPCThread", tag: int, value, op=None):
        """Generator: contribute ``value``; returns ``op``-fold of all
        contributions (default: sum).

        The fold runs in **thread-id order**, not arrival order, so
        the result is identical whatever the timing (cached vs
        uncached runs must agree even for non-commutative ``op``).
        """
        rt = self.rt
        self._slots.setdefault(tag, []).append((thread.id, value))
        yield from rt.barrier_mgr.wait(thread)
        if tag not in self._results:
            values = [v for _, v in sorted(self._slots.pop(tag))]
            if op is None:
                acc = sum(values[1:], values[0])
            else:
                acc = values[0]
                for v in values[1:]:
                    acc = op(acc, v)
            self._results[tag] = acc
        # Propagation latency of the result tree.
        nnodes = rt.cluster.nnodes
        if nnodes > 1:
            stages = max(1, math.ceil(math.log2(nnodes)))
            machine = rt.cluster.machine
            yield rt.sim.sleep(stages * (machine.wire_base_us
                                           + 3 * machine.wire_per_hop_us))
        result = self._results[tag]
        # The last thread out cleans the slot for tag reuse safety.
        return result


class Broadcaster:
    """Small-value broadcast used by collective allocation: thread 0's
    value becomes visible to everyone after a tree of control
    messages.  Modelled as one dissemination phase."""

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self._slots: Dict[int, object] = {}

    def bcast(self, thread: "UPCThread", tag: int, value=None):
        """Generator: thread 0 contributes ``value``; all threads
        return it.  Must be called collectively (all threads, same tag
        sequence) — like any UPC collective.

        The internal barrier polls the network (a thread blocked in a
        collective is inside the runtime), so in-flight AM handlers
        keep being serviced while everyone synchronizes.
        """
        rt = self.rt
        sim = rt.sim
        if thread.id == 0:
            self._slots[tag] = value
        # One barrier guarantees the slot is written, then a tree
        # latency charges the propagation.
        thread.node.progress.enter_runtime()
        try:
            yield from rt.barrier_mgr.wait(thread)
        finally:
            thread.node.progress.leave_runtime()
        nnodes = rt.cluster.nnodes
        if nnodes > 1:
            stages = max(1, math.ceil(math.log2(nnodes)))
            machine = rt.cluster.machine
            yield sim.sleep(stages * (machine.wire_base_us
                                        + 3 * machine.wire_per_hop_us))
        result = self._slots[tag]
        return result
