"""The IBM XLUPC runtime model (sections 2–3).

Public surface:

* :class:`~repro.runtime.runtime.RuntimeConfig` /
  :class:`~repro.runtime.runtime.Runtime` — build and run UPC programs;
* :class:`~repro.runtime.thread.UPCThread` — the API kernels program
  against (``yield from th.get(...)`` etc.);
* shared objects (:class:`SharedArray`, :class:`SharedScalar`,
  :class:`SharedLock`), handles, layouts and pointers-to-shared;
* :class:`~repro.runtime.svd.SVDReplica` — the Shared Variable
  Directory.
"""

from repro.runtime.errors import (
    AffinityError,
    LayoutError,
    SVDError,
    UPCRuntimeError,
)
from repro.runtime.handle import ALL_PARTITION, SVDHandle
from repro.runtime.layout import (
    BlockCyclicLayout,
    blocked_layout,
    cyclic_layout,
)
from repro.runtime.metrics import RunResult, RuntimeMetrics
from repro.runtime.pointer import PointerToShared
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.shared_array import SharedArray
from repro.runtime.shared_matrix import SharedMatrix
from repro.runtime.shared_lock import SharedLock
from repro.runtime.shared_scalar import SharedScalar
from repro.runtime.svd import (
    ControlBlock,
    HandleAllocator,
    SVDReplica,
)
from repro.runtime.thread import UPCThread

__all__ = [
    "Runtime",
    "RuntimeConfig",
    "UPCThread",
    "SharedArray",
    "SharedMatrix",
    "SharedScalar",
    "SharedLock",
    "SVDHandle",
    "ALL_PARTITION",
    "SVDReplica",
    "ControlBlock",
    "HandleAllocator",
    "BlockCyclicLayout",
    "blocked_layout",
    "cyclic_layout",
    "PointerToShared",
    "RunResult",
    "RuntimeMetrics",
    "UPCRuntimeError",
    "SVDError",
    "LayoutError",
    "AffinityError",
]
