"""The program-facing UPC thread API.

UPC kernels are generator coroutines receiving a :class:`UPCThread`::

    def kernel(th):
        arr = yield from th.all_alloc(1 << 20, blocksize=4096,
                                      dtype="u8")
        v = yield from th.get(arr, 12345)
        yield from th.put(arr, 0, v + 1)
        yield from th.barrier()

Every blocking call brackets itself with the node progress engine's
``enter_runtime``/``leave_runtime`` so that, on polling transports, a
thread blocked in communication serves incoming AM handlers while a
thread busy in :meth:`compute` does not — the GM/LAPI asymmetry of
sections 4.6/4.7.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.obs.events import OP_BEGIN, OP_END
from repro.runtime.errors import UPCRuntimeError
from repro.runtime.shared_array import SharedArray
from repro.runtime.shared_lock import SharedLock
from repro.sim.event import AllOf, Event
from repro.util.rng import seeded_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class UPCThread:
    """One UPC thread pinned to a node."""

    def __init__(self, runtime: "Runtime", thread_id: int,
                 node_id: int) -> None:
        self.runtime = runtime
        self.id = thread_id
        self.node = runtime.cluster.node(node_id)
        #: Outstanding put completions (drained by fence/barrier).
        self._outstanding_puts: List[Event] = []
        #: Deterministic per-thread RNG for workloads.
        self.rng = seeded_rng(runtime.config.seed, thread_id)

    # -- identity -------------------------------------------------------

    @property
    def nthreads(self) -> int:
        """UPC's ``THREADS``."""
        return self.runtime.nthreads

    @property
    def node_id(self) -> int:
        return self.node.id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<UPCThread {self.id}@node{self.node.id}>"

    # -- runtime bracketing ------------------------------------------------

    def _in_runtime(self, gen):
        """Run a blocking runtime op while polling the network."""
        progress = self.node.progress
        progress.enter_runtime()
        try:
            result = yield from gen
        finally:
            progress.leave_runtime()
        return result

    def _span_begin(self, name: str) -> int:
        """Open a flight-recorder span for a thread-level op (barrier,
        lock, compute — strictly sequential per thread)."""
        log = self.runtime.events
        if not log.enabled:
            return -1
        op_id = log.next_op_id()
        log.emit(self.runtime.sim.now, OP_BEGIN, op=op_id,
                 thread=self.id, node=self.node.id, name=name)
        return op_id

    def _span_end(self, op_id: int, **attrs) -> None:
        log = self.runtime.events
        if log.enabled and op_id >= 0:
            log.emit(self.runtime.sim.now, OP_END, op=op_id,
                     thread=self.id, node=self.node.id, **attrs)

    # -- data movement -------------------------------------------------------

    def get(self, array: SharedArray, index: int, nelems: int = 1):
        """Blocking read; returns np scalar (nelems=1) or array.

        Progress note: the op engine enters the messaging library (and
        hence polls, on GM) only when the access is actually remote;
        local and same-node accesses are plain memory operations.
        """
        out = yield from self.runtime.ops.get(self, array, index, nelems)
        return out[0] if nelems == 1 else out

    def put(self, array: SharedArray, index: int, values,
            nelems: Optional[int] = None):
        """Locally-complete write (relaxed); order with fence/barrier."""
        yield from self.runtime.ops.put(self, array, index, values, nelems)

    def put_strict(self, array: SharedArray, index: int, values,
                   nelems: Optional[int] = None):
        """A *strict* write: blocks until the value is applied at the
        target and acknowledged.  Without the address cache the target
        CPU must service the request (on GM: once somebody polls), so
        strict remote puts feel the full progress pathology — the
        "abnormally large ... PUT access times" of the Field trace
        (section 4.6).  With a cache hit the RDMA PUT needs no target
        CPU at all.
        """
        rt = self.runtime
        ticket = yield from rt.ops.put(self, array, index, values, nelems)
        if ticket is not None and not ticket.remote_applied.processed:
            self.node.progress.enter_runtime()
            try:
                yield ticket.remote_applied
            finally:
                self.node.progress.leave_runtime()
        if ticket is not None:
            # Completion acknowledgement back to the initiator.
            owner_node = array.owner_node(index)
            yield rt.sim.sleep(
                rt.cluster.topology.latency(owner_node, self.node.id)
                + rt.cluster.params.o_recv_us)

    def get_nb(self, array: SharedArray, index: int, nelems: int = 1):
        """Split-phase (non-blocking) GET: returns a handle event
        immediately; several may be in flight, overlapping their
        round trips (the split-phase style GASNet-era runtimes use).
        The event's value is the fetched data; synchronize with
        :meth:`wait_all` or by yielding the handle."""
        proc = self.runtime.sim.process(
            self.runtime.ops.get(self, array, index, nelems),
            name=f"get_nb[t{self.id}]")
        return proc

    def put_nb(self, array: SharedArray, index: int, values,
               nelems: Optional[int] = None):
        """Split-phase PUT: local completion is signalled by the
        returned event; remote completion is tracked for fence."""
        proc = self.runtime.sim.process(
            self.runtime.ops.put(self, array, index, values, nelems),
            name=f"put_nb[t{self.id}]")
        return proc

    def wait_all(self, handles):
        """Block until every split-phase handle completed; returns
        their values in order (for GETs: the fetched arrays)."""
        handles = list(handles)
        if not handles:
            return []
        result = yield AllOf(self.runtime.sim, handles)
        return result

    def gather(self, array: SharedArray, indices, width: int = 8,
               nelems: int = 1):
        """Fetch ``array[i : i+nelems]`` for every ``i`` in ``indices``
        with up to ``width`` transfers in flight.  Returns the values
        in input order.

        Contract: with ``nelems == 1`` (the default) each entry is a
        NumPy *scalar*; with ``nelems > 1`` each entry is the fetched
        array — the old implementation silently returned only ``v[0]``.
        Through the bulk engine the window refills on every completion
        (a sliding window) and adjacent same-destination reads coalesce
        into single wire messages; the legacy path (engine off) keeps
        the lock-step batch behaviour.
        """
        indices = list(indices)
        if self.runtime.config.bulk_enabled:
            vals = yield from self.runtime.bulk.get_spans(
                self, array, [(i, nelems) for i in indices], window=width)
            return [v[0] for v in vals] if nelems == 1 else vals
        out = [None] * len(indices)
        pos = 0
        while pos < len(indices):
            batch = indices[pos:pos + width]
            if nelems == 1:
                handles = [self.get_nb(array, i, 1) for i in batch]
                values = yield from self.wait_all(handles)
                for k, v in enumerate(values):
                    out[pos + k] = v[0]
            else:
                # Multi-element entries may span affinity boundaries;
                # memget splits them per owning block (ops.get cannot).
                handles = [self.runtime.sim.process(
                    self.memget(array, i, nelems),
                    name=f"gather[t{self.id}]") for i in batch]
                values = yield from self.wait_all(handles)
                for k, v in enumerate(values):
                    out[pos + k] = v
            pos += len(batch)
        return out

    def memget(self, array: SharedArray, index: int, nelems: int):
        """``upc_memget``-style bulk read of a contiguous span.

        A span crossing block (affinity) boundaries is split into one
        transfer per owning block; through the bulk engine the
        per-block transfers are coalesced per destination node and
        pipelined under a bounded in-flight window (engine off: one
        blocking round trip per block, in order).
        """
        if self.runtime.config.bulk_enabled:
            out = yield from self.runtime.bulk.get_spans(
                self, array, [(index, nelems)])
            return out[0]
        pieces = []
        for start, count in self._segments(array, index, nelems):
            out = yield from self.runtime.ops.get(self, array, start,
                                                  count)
            pieces.append(out)
        if not pieces:
            return np.empty(0, dtype=array.dtype)
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def memput(self, array: SharedArray, index: int, values):
        """``upc_memput``-style bulk write (split per affine block,
        coalesced + pipelined by the bulk engine; locally complete on
        return, ordered by fence/barrier either way)."""
        if self.runtime.config.bulk_enabled:
            yield from self.runtime.bulk.put_spans(
                self, array, [(index, values)])
            return
        values = np.asarray(values, dtype=array.dtype).ravel()
        offset = 0
        for start, count in self._segments(array, index, len(values)):
            yield from self.runtime.ops.put(
                self, array, start, values[offset:offset + count], count)
            offset += count

    def memget_v(self, array: SharedArray, spans):
        """Vectored bulk read: fetch every ``(index, nelems)`` span in
        one engine pass, so segments of *different* spans bound for the
        same node coalesce (e.g. the rows of one remote tile become a
        single wire message).  Returns one array per span, in order."""
        if self.runtime.config.bulk_enabled:
            out = yield from self.runtime.bulk.get_spans(self, array,
                                                         list(spans))
            return out
        out = []
        for index, nelems in spans:
            piece = yield from self.memget(array, index, nelems)
            out.append(np.atleast_1d(piece))
        return out

    def memput_v(self, array: SharedArray, puts):
        """Vectored bulk write of ``(index, values)`` pairs — the PUT
        mirror of :meth:`memget_v` (relaxed; order with fence)."""
        if self.runtime.config.bulk_enabled:
            yield from self.runtime.bulk.put_spans(self, array,
                                                   list(puts))
            return
        for index, values in puts:
            yield from self.memput(array, index, values)

    @staticmethod
    def _segments(array: SharedArray, index: int, nelems: int):
        """Break ``[index, index+nelems)`` at block boundaries.

        A zero-length span yields no segments: ``upc_memget(p, q, 0)``
        is a no-op, and gather/memget_v callers expect empty results
        rather than an error.
        """
        if nelems < 0:
            raise UPCRuntimeError(f"nelems must be >= 0, got {nelems}")
        if nelems == 0:
            return
        if array.owner is not None:
            yield index, nelems
            return
        bs = array.layout.blocksize
        pos, end = index, index + nelems
        while pos < end:
            block_end = (pos // bs + 1) * bs
            count = min(end, block_end) - pos
            yield pos, count
            pos += count

    def track_put(self, remote_applied: Event) -> None:
        """Called by the op engine for every non-local put issued."""
        self._outstanding_puts.append(remote_applied)

    def fence(self):
        """``upc_fence``: wait until all this thread's outstanding puts
        are applied at their targets."""
        pending = [ev for ev in self._outstanding_puts if not ev.processed]
        self._outstanding_puts.clear()
        if pending:
            yield from self._in_runtime(self._await_all(pending))

    def _await_all(self, events):
        yield AllOf(self.runtime.sim, events)
        return None

    # -- synchronization -----------------------------------------------------

    def barrier(self):
        """``upc_barrier``: fence + global barrier."""
        t0 = self.runtime.sim.now
        op_id = self._span_begin("barrier")
        yield from self.fence()
        yield from self._in_runtime(
            self.runtime.barrier_mgr.wait(self))
        tracer = self.runtime.config.tracer
        if tracer is not None:
            tracer.record(self.id, "barrier", t0, self.runtime.sim.now)
        self._span_end(op_id)

    def barrier_notify(self):
        """``upc_notify``: split-phase barrier arrival.  Returns
        immediately; compute freely, then :meth:`barrier_wait`."""
        yield from self.fence()
        yield from self._in_runtime(
            self.runtime.barrier_mgr.notify(self))

    def barrier_wait(self):
        """``upc_wait``: completes the split-phase barrier."""
        yield from self._in_runtime(
            self.runtime.barrier_mgr.phase_wait(self))

    def lock(self, lck: SharedLock):
        """``upc_lock``: AM round trip to the home node + queueing."""
        rt = self.runtime

        op_id = self._span_begin("lock")

        def _go():
            if lck.owner_node != self.node.id:
                yield from rt.cluster.transport.default_get(
                    self.node, rt.cluster.node(lck.owner_node),
                    rt.cluster.params.ctrl_bytes,
                    lambda n: (rt.cluster.params.svd_lookup_us, None, 0),
                    op_id=op_id)
            else:
                yield rt.sim.sleep(rt.cluster.params.shm_access_us)
            yield lck._res.acquire()
            lck._grant(self.id)
            rt.metrics.lock_acquires += 1

        yield from self._in_runtime(_go())
        self._span_end(op_id)

    def unlock(self, lck: SharedLock):
        """``upc_unlock``: release travels back to the home node."""
        rt = self.runtime

        def _go():
            if lck.owner_node != self.node.id:
                yield rt.sim.sleep(rt.cluster.params.o_send_us)
                yield rt.sim.sleep(
                    rt.cluster.topology.latency(self.node.id,
                                                lck.owner_node))
            else:
                yield rt.sim.sleep(rt.cluster.params.shm_access_us)
            lck._release(self.id)
            lck._res.release()

        yield from self._in_runtime(_go())

    # -- computation ------------------------------------------------------------

    def compute(self, usec: float):
        """Model local computation for ``usec``.

        Crucially this does *not* poll the network: on GM transports,
        AM requests arriving at this node during the slice wait (the
        Field stressmark effect, section 4.6).
        """
        if usec < 0:
            raise UPCRuntimeError(f"negative compute time {usec}")
        self.runtime.metrics.compute_time_us += usec
        if usec > 0:
            t0 = self.runtime.sim.now
            op_id = self._span_begin("compute")
            yield self.runtime.sim.sleep(usec)
            tracer = self.runtime.config.tracer
            if tracer is not None:
                tracer.record(self.id, "compute", t0, self.runtime.sim.now)
            self._span_end(op_id, usec=usec)

    def poll(self):
        """An explicit runtime tick (``upc_poll``-alike): lets queued
        handlers run on polling transports."""
        self.node.progress.poll()
        yield self.runtime.sim.sleep(0.1)

    # -- iteration ------------------------------------------------------------

    def forall(self, stop: int, array: Optional[SharedArray] = None,
               start: int = 0, step: int = 1):
        """``upc_forall``-style affinity-driven iteration.

        Yields the indices in ``range(start, stop, step)`` whose
        affinity matches this thread: with ``array`` given, indices
        whose owning thread is this one (``upc_forall(...; &a[i])``);
        without, round-robin by index (``upc_forall(...; i)``).

        This is a plain generator of ints (no virtual time passes);
        the loop body does the timed work::

            for i in th.forall(len(arr), arr):
                v = yield from th.get(arr, i)   # always local here
        """
        for i in range(start, stop, step):
            if array is None:
                if i % self.nthreads == self.id:
                    yield i
            elif array.owner_thread(i) == self.id:
                yield i

    # -- allocation (delegates to the runtime) ------------------------------------

    def all_alloc(self, nelems: int, blocksize: Optional[int] = None,
                  dtype="u8"):
        """``upc_all_alloc``: collective allocation in the ALL partition."""
        arr = yield from self.runtime.all_alloc(self, nelems, blocksize,
                                                dtype)
        return arr

    def global_alloc(self, nelems: int, blocksize: Optional[int] = None,
                     dtype="u8"):
        """``upc_global_alloc``: one thread allocates a distributed
        array; others learn of it via SVD notifications."""
        arr = yield from self.runtime.global_alloc(self, nelems, blocksize,
                                                   dtype)
        return arr

    def all_alloc_matrix(self, rows: int, cols: int, tile_r: int,
                         tile_c: int, dtype="f8"):
        """Collective allocation of a multiblocked (2-D tiled) array."""
        m = yield from self.runtime.all_alloc_matrix(
            self, rows, cols, tile_r, tile_c, dtype)
        return m

    def get_rc(self, matrix, r: int, c: int):
        """Read matrix element (r, c)."""
        v = yield from self.get(matrix, matrix.linear(r, c))
        return v

    def put_rc(self, matrix, r: int, c: int, value):
        """Write matrix element (r, c) (relaxed)."""
        yield from self.put(matrix, matrix.linear(r, c), value)

    def memget_row(self, matrix, r: int, c0: int, nelems: int):
        """Bulk-read a row segment inside one tile (zero-copy shaped
        like the dense row)."""
        start, count = matrix.row_segment(r, c0, nelems)
        out = yield from self.memget(matrix, start, count)
        return out

    def local_alloc(self, nelems: int, dtype="u8"):
        """``upc_alloc``: shared memory with affinity entirely here."""
        arr = yield from self.runtime.local_alloc(self, nelems, dtype)
        return arr

    def all_free(self, array: SharedArray):
        """Collective free with eager remote-cache invalidation."""
        yield from self.runtime.all_free(self, array)

    # -- value collectives ---------------------------------------------------

    def all_reduce(self, value, op=None):
        """``upc_all_reduce``-style: everyone contributes, everyone
        receives the reduction (default op: sum)."""
        rt = self.runtime
        tag = rt._next_collective_tag(self.id)
        self.node.progress.enter_runtime()
        try:
            result = yield from rt.reducer.all_reduce(self, tag, value, op)
        finally:
            self.node.progress.leave_runtime()
        return result

    def all_broadcast(self, value=None):
        """Thread 0's ``value`` is returned on every thread."""
        rt = self.runtime
        tag = rt._next_collective_tag(self.id)
        self.node.progress.enter_runtime()
        try:
            result = yield from rt.broadcaster.bcast(self, tag, value)
        finally:
            self.node.progress.leave_runtime()
        return result
