"""The XLUPC runtime: threads, directory, caches, allocation, runs.

A :class:`Runtime` wires together every substrate:

* a :class:`~repro.network.cluster.Cluster` (nodes, topology,
  transport) built from :class:`~repro.network.params.MachineParams`;
* one :class:`~repro.runtime.svd.SVDReplica` per node (section 2.1);
* one :class:`~repro.core.address_cache.RemoteAddressCache` and one
  :class:`~repro.core.pinned_table.PinnedAddressTable` per node
  (section 3);
* the :class:`~repro.runtime.ops.OpEngine`, barrier manager and
  thread objects.

Quickstart::

    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(1024, blocksize=64, dtype="u8")
        v = yield from th.get(arr, (th.id * 131) % 1024)
        yield from th.barrier()

    rt.spawn(kernel)
    result = rt.run()
    print(result.elapsed_us, result.cache_stats.hit_rate)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.address_cache import (
    DEFAULT_CAPACITY,
    EvictionPolicy,
    RemoteAddressCache,
)
from repro.core.piggyback import PiggybackConfig
from repro.core.pinned_table import PinnedAddressTable
from repro.core.policy import DEFAULT_CHUNK_BYTES, PinningPolicy
from repro.core.stats import CacheStats
from repro.network.cluster import Cluster
from repro.network.params import MachineParams
from repro.runtime.bulk import BulkEngine
from repro.runtime.collectives import BarrierManager, Broadcaster, Reducer
from repro.runtime.errors import UPCRuntimeError
from repro.runtime.handle import ALL_PARTITION
from repro.runtime.layout import BlockCyclicLayout
from repro.runtime.metrics import RunResult, RuntimeMetrics
from repro.runtime.ops import OpEngine
from repro.runtime.shared_array import SharedArray
from repro.runtime.shared_lock import SharedLock
from repro.runtime.shared_scalar import SharedScalar
from repro.runtime.svd import (
    ControlBlock,
    HandleAllocator,
    KIND_ARRAY,
    KIND_LOCK,
    KIND_SCALAR,
    SVDReplica,
)
from repro.runtime.thread import UPCThread
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that defines one experiment configuration."""

    machine: MachineParams
    nthreads: int
    #: UPC threads per node; default from the machine (hybrid mode).
    threads_per_node: Optional[int] = None
    #: The paper's on/off switch: False reproduces the "without
    #: cache" baselines of every figure.
    cache_enabled: bool = True
    #: Section 4.5: "a fixed limit of 100 entries" by default.
    cache_capacity: int = DEFAULT_CAPACITY
    cache_policy: EvictionPolicy = EvictionPolicy.LRU
    pinning_policy: PinningPolicy = PinningPolicy.PIN_EVERYTHING
    pin_chunk_bytes: int = DEFAULT_CHUNK_BYTES
    piggyback: PiggybackConfig = field(default_factory=PiggybackConfig)
    #: None = platform default (GM: RDMA PUTs on; LAPI: off, 4.3).
    use_rdma_put: Optional[bool] = None
    #: Bulk-transfer engine switch: False falls back to the serial
    #: per-segment memget/memput/gather loops (escape hatch used by
    #: baselines and degenerate-behaviour tests).
    bulk_enabled: bool = True
    #: Max in-flight wire messages per bulk operation (sliding window
    #: with completion-driven refill; 1 = strictly serial issue).
    bulk_max_inflight: int = 8
    #: Coalesce arena-contiguous same-destination segments into single
    #: wire messages up to this many bytes (0 disables coalescing; a
    #: single segment is never split, whatever its size).
    bulk_max_coalesce_bytes: int = 64 * 1024
    seed: int = 0
    #: Optional Paraver-style tracer (see :mod:`repro.trace`).
    tracer: Optional[object] = None
    #: Optional flight recorder (an :class:`repro.obs.EventLog`); when
    #: None a disabled log is used and recording costs one branch per
    #: instrumentation site (see :mod:`repro.obs`).
    events: Optional[object] = None
    #: Optional deterministic fault plan (a
    #: :class:`repro.faults.FaultPlan`).  None — or an *empty* plan —
    #: installs no injector, and the run is bit-identical to a build
    #: without the fault plane (see docs/FAULTS.md).
    fault_plan: Optional[object] = None
    #: Reliability knobs (a :class:`repro.faults.ReliabilityConfig`);
    #: None keeps the transport's defaults.  Only consulted when
    #: messages can actually be lost, but configurable independently
    #: so tests can tighten timeouts.
    reliability: Optional[object] = None
    #: Degrade pin-registration failures to the AM path even without a
    #: fault plan (the default False preserves strict
    #: PinLimitError-raising behavior for capacity experiments).
    degrade_pin_failures: bool = False
    #: Optional time-evolving :class:`repro.faults.LinkTrace`.  None —
    #: or an *empty* trace — layers nothing on the fabric; a non-empty
    #: trace installs the injector (with an empty plan if none was
    #: configured) so the reliability protocols engage.
    link_trace: Optional[object] = None
    #: Optional repair policy name (one of
    #: :data:`repro.faults.POLICIES`); None = static fabric.  Builds a
    #: :class:`repro.faults.PolicyEngine` over a per-link
    #: :class:`repro.faults.HealthTracker` and wires both into the
    #: transport and injector.
    repair_policy: Optional[str] = None
    #: Policy thresholds (a :class:`repro.faults.PolicyConfig`); None
    #: keeps the defaults.
    policy_config: Optional[object] = None

    def __post_init__(self) -> None:
        if self.nthreads < 1:
            raise UPCRuntimeError(f"nthreads must be >= 1, got {self.nthreads}")
        tpn = self.threads_per_node
        if tpn is not None and tpn < 1:
            raise UPCRuntimeError(f"threads_per_node must be >= 1, got {tpn}")
        if self.bulk_max_inflight < 1:
            raise UPCRuntimeError(
                f"bulk_max_inflight must be >= 1, got "
                f"{self.bulk_max_inflight}")
        if self.bulk_max_coalesce_bytes < 0:
            raise UPCRuntimeError(
                f"bulk_max_coalesce_bytes must be >= 0, got "
                f"{self.bulk_max_coalesce_bytes}")

    @property
    def effective_threads_per_node(self) -> int:
        return self.threads_per_node or self.machine.default_threads_per_node

    @property
    def nnodes(self) -> int:
        tpn = self.effective_threads_per_node
        return -(-self.nthreads // tpn)

    def with_cache(self, enabled: bool) -> "RuntimeConfig":
        """The paired configuration for Z-vs-W comparisons."""
        return replace(self, cache_enabled=enabled)


class Runtime:
    """A running XLUPC instance on a simulated cluster."""

    def __init__(self, config: RuntimeConfig,
                 sim: Optional[Simulator] = None) -> None:
        self.config = config
        self.sim = sim or Simulator()
        self.cluster = Cluster(self.sim, config.machine, config.nnodes)
        self.nthreads = config.nthreads
        self._tpn = config.effective_threads_per_node

        # Flight recorder: a disabled EventLog when not requested, so
        # instrumentation sites can always write `if events.enabled:`.
        if config.events is not None:
            self.events = config.events
        else:
            from repro.obs.events import EventLog
            self.events = EventLog(enabled=False)

        # Per-node runtime structures.
        self._svd: Dict[int, SVDReplica] = {}
        self._caches: Dict[int, RemoteAddressCache] = {}
        self._pinned: Dict[int, PinnedAddressTable] = {}
        for node in self.cluster.nodes:
            self._svd[node.id] = SVDReplica(node.id, config.nthreads)
            self._caches[node.id] = RemoteAddressCache(
                capacity=config.cache_capacity,
                policy=config.cache_policy,
                lookup_cost_us=config.machine.transport.cache_lookup_us,
                insert_cost_us=config.machine.transport.cache_insert_us,
                seed=config.seed + node.id,
                # A fabric without one-sided operations (e.g. the
                # TCP/IP sockets transport) gives the cache nothing to
                # unlock; the runtime never consults it there.
                enabled=(config.cache_enabled
                         and config.machine.transport.supports_rdma),
            )
            self._pinned[node.id] = PinnedAddressTable(node.pins)
            # Observability hookup (attribute injection keeps the core
            # data structures constructible without a runtime).
            for obj in (self._caches[node.id], self._pinned[node.id]):
                obj.events = self.events
                obj.clock = self.sim
                obj.node_id = node.id
            node.progress.events = self.events
        self.cluster.transport.events = self.events

        self.handles = HandleAllocator(config.nthreads)
        self.metrics = RuntimeMetrics()
        # Progress engines report backlog peaks into the run metrics
        # (see PollingProgress.enqueue / metrics.max_backlog).
        for node in self.cluster.nodes:
            node.progress.metrics = self.metrics

        # Fault plane + reliability layer.  An absent or *empty* plan
        # installs nothing — transport.faults stays None and every
        # hot-path site short-circuits on that, keeping fault-free
        # runs bit-identical to the pre-fault build.  A non-empty link
        # trace installs the injector too (over an empty plan when no
        # static rules were configured) so the retransmit protocols
        # engage against the evolving loss.
        self.faults = None
        self.health = None
        self.policy = None
        trace = config.link_trace
        if trace is not None and trace.empty:
            trace = None
        have_plan = (config.fault_plan is not None
                     and not config.fault_plan.empty)
        if have_plan or trace is not None:
            from repro.faults.injector import FaultInjector
            from repro.faults.plan import FaultPlan
            plan = config.fault_plan if have_plan else FaultPlan(
                seed=trace.seed if trace is not None else 0)
            if config.repair_policy is not None:
                from repro.faults.health import HealthTracker
                from repro.faults.policy import PolicyConfig, PolicyEngine
                pcfg = config.policy_config or PolicyConfig()
                self.health = HealthTracker(pcfg.window_us)
                self.policy = PolicyEngine(
                    config.repair_policy, pcfg, self.health,
                    nnodes=self.cluster.nnodes,
                    on_decision=self._on_policy_decision)
            self.faults = FaultInjector(plan, self.sim,
                                        events=self.events,
                                        metrics=self.metrics,
                                        trace=trace,
                                        policy=self.policy,
                                        health=self.health)
            self.cluster.transport.faults = self.faults
            self.cluster.transport.health = self.health
            self.cluster.transport.policy = self.policy
            for node in self.cluster.nodes:
                node.progress.faults = self.faults
        elif config.repair_policy is not None:
            raise UPCRuntimeError(
                "repair_policy needs a fault plan or link trace to "
                "observe — configure fault_plan or link_trace")
        self.cluster.transport.metrics = self.metrics
        if config.reliability is not None:
            from repro.faults.reliability import DedupLedger
            self.cluster.transport.reliability = config.reliability
            self.cluster.transport.ledger = DedupLedger(
                config.reliability.ledger_capacity)
        self.ops = OpEngine(self)
        self.bulk = BulkEngine(self)
        self.barrier_mgr = BarrierManager(self)
        self.broadcaster = Broadcaster(self)
        self.reducer = Reducer(self)
        self.threads: List[UPCThread] = [
            UPCThread(self, t, self.node_of_thread(t))
            for t in range(config.nthreads)
        ]
        self._programs: List = []
        #: Per-thread collective sequence numbers: every thread runs
        #: the same sequence of collectives, so call #k on thread A
        #: pairs with call #k on thread B.
        self._collective_seq: Dict[int, int] = {}

    def _on_policy_decision(self, decision: Dict) -> None:
        """Repair-policy actuation hook: count it and put it on the
        flight-recorder timeline (feeds the SLO/anomaly windows)."""
        self.metrics.policy_actions += 1
        ev = self.events
        if ev is not None and ev.enabled:
            from repro.obs.events import POLICY_ACTION
            ev.emit(self.sim.now, POLICY_ACTION,
                    node=decision["src"], dst=decision["dst"],
                    action=decision["action"], mode=decision["mode"],
                    t_us=decision["t_us"], policy=decision["policy"])

    # -- thread <-> node mapping -------------------------------------------

    def node_of_thread(self, thread_id: int) -> int:
        """Hybrid mapping: consecutive blocks of threads per node."""
        if not 0 <= thread_id < self.nthreads:
            raise UPCRuntimeError(f"thread {thread_id} out of range")
        return thread_id // self._tpn

    def first_thread_of_node(self, node_id: int) -> int:
        return node_id * self._tpn

    def threads_on_node(self, node_id: int) -> int:
        lo = self.first_thread_of_node(node_id)
        return max(0, min(self.nthreads - lo, self._tpn))

    # -- per-node structure accessors -----------------------------------------

    def svd(self, node_id: int) -> SVDReplica:
        return self._svd[node_id]

    def addr_cache(self, node_id: int) -> RemoteAddressCache:
        return self._caches[node_id]

    def pinned_table(self, node_id: int) -> PinnedAddressTable:
        return self._pinned[node_id]

    @property
    def use_rdma_put(self) -> bool:
        """Effective PUT fast-path switch (config override or the
        platform default, section 4.3)."""
        if not self.config.cache_enabled:
            return False
        if not self.config.machine.transport.supports_rdma:
            return False
        if self.config.use_rdma_put is not None:
            return self.config.use_rdma_put
        return self.config.machine.use_rdma_put_default

    # -- allocation ----------------------------------------------------------

    def _make_layout(self, nelems: int, blocksize: Optional[int],
                     dtype) -> BlockCyclicLayout:
        dt = np.dtype(dtype)
        if blocksize is None:
            blocksize = -(-nelems // self.nthreads)  # pure blocked
        return BlockCyclicLayout(nelems=nelems, elem_size=dt.itemsize,
                                 blocksize=blocksize,
                                 nthreads=self.nthreads)

    def _install_everywhere(self, array: SharedArray) -> None:
        """Install the control block in every replica (metadata is
        modelled as instantly consistent; notification *traffic* is
        charged separately by the caller where applicable)."""
        cb = ControlBlock(
            handle=array.handle, kind=KIND_ARRAY,
            total_bytes=array.total_bytes, nelems=array.nelems,
            elem_size=array.elem_size, blocksize=array.layout.blocksize,
        )
        for node in self.cluster.nodes:
            entry = self._svd[node.id].add(
                cb,
                local_base=array.node_base.get(node.id),
                local_bytes=array.node_bytes.get(node.id, 0),
                notified=(array.handle.partition != ALL_PARTITION
                          and self.node_of_thread(
                              max(array.handle.partition, 0)) != node.id),
            )
            _ = entry

    def all_alloc(self, thread: UPCThread, nelems: int,
                  blocksize: Optional[int], dtype):
        """``upc_all_alloc``: collective, lands in the ALL partition.

        Single-writer rule 2 of section 2.1: the ALL partition is only
        updated inside an already-synchronized collective, so no locks
        are needed — modelled by thread 0 constructing after a barrier.
        """
        tag = self._next_collective_tag(thread.id)

        def build():
            layout = self._make_layout(nelems, blocksize, dtype)
            handle = self.handles.fresh(ALL_PARTITION)
            array = SharedArray(self, handle, layout, np.dtype(dtype))
            self._install_everywhere(array)
            self.metrics.allocations += 1
            return array

        if thread.id == 0:
            value = build()
        else:
            value = None
        yield self.sim.sleep(self.cluster.params.o_sw_us)
        array = yield from self.broadcaster.bcast(thread, tag, value)
        return array

    def global_alloc(self, thread: UPCThread, nelems: int,
                     blocksize: Optional[int], dtype):
        """``upc_global_alloc``: non-collective distributed allocation.

        Rule 1 of section 2.1: the thread updates its own partition and
        *notifies* the other nodes (one-way control messages, charged
        on the wire but processed asynchronously).
        """
        layout = self._make_layout(nelems, blocksize, dtype)
        handle = self.handles.fresh(thread.id)
        array = SharedArray(self, handle, layout, np.dtype(dtype))
        self._install_everywhere(array)
        self.metrics.allocations += 1
        # Allocation bookkeeping + notification injection costs.
        p = self.cluster.params
        yield self.sim.sleep(p.o_sw_us)
        for node in self.cluster.nodes:
            if node.id != thread.node.id:
                self.cluster.transport.am_oneway(thread.node, node,
                                                 p.ctrl_bytes)
                yield self.sim.sleep(p.o_send_us * 0.25)
        return array

    def all_alloc_matrix(self, thread: UPCThread, rows: int, cols: int,
                         tile_r: int, tile_c: int, dtype):
        """Collective allocation of a multiblocked 2-D array
        (section 2.1's "multi-blocked array [7]")."""
        from repro.runtime.shared_matrix import SharedMatrix

        tag = self._next_collective_tag(thread.id)

        def build():
            handle = self.handles.fresh(ALL_PARTITION)
            matrix = SharedMatrix(self, handle, rows, cols, tile_r,
                                  tile_c, np.dtype(dtype))
            self._install_everywhere(matrix)
            self.metrics.allocations += 1
            return matrix

        value = build() if thread.id == 0 else None
        yield self.sim.sleep(self.cluster.params.o_sw_us)
        matrix = yield from self.broadcaster.bcast(thread, tag, value)
        return matrix

    def local_alloc(self, thread: UPCThread, nelems: int, dtype):
        """``upc_alloc``: affinity entirely to the calling thread."""
        dt = np.dtype(dtype)
        layout = BlockCyclicLayout(nelems=nelems, elem_size=dt.itemsize,
                                   blocksize=nelems, nthreads=1)
        handle = self.handles.fresh(thread.id)
        array = SharedArray(self, handle, layout, dt, owner=thread.id)
        self._install_everywhere(array)
        self.metrics.allocations += 1
        yield self.sim.sleep(self.cluster.params.o_sw_us)
        return array

    def all_free(self, thread: UPCThread, array: SharedArray):
        """Collective free: unpin + **eager invalidation** of every
        remote address cache (section 3.1).

        Ordering matters: every thread first drains its outstanding
        puts (fence) and all threads synchronize *before* the
        directory entries and arenas are torn down — otherwise an
        in-flight put tail could hit a removed SVD entry.
        """
        tag = self._next_collective_tag(thread.id)

        def teardown():
            for node in self.cluster.nodes:
                cost, _ = self._pinned[node.id].unregister_handle(
                    array.handle)
                _ = cost  # charged to the owning node asynchronously
                self._caches[node.id].invalidate_handle(array.handle)
                self._svd[node.id].remove(array.handle)
            array.free_arenas()
            self.metrics.frees += 1
            return True

        yield self.sim.sleep(self.cluster.params.o_sw_us)
        yield from thread.fence()
        # Quiesce barrier: polls while waiting so other threads'
        # in-flight put handlers can still be serviced here.
        thread.node.progress.enter_runtime()
        try:
            yield from self.barrier_mgr.wait(thread)
        finally:
            thread.node.progress.leave_runtime()
        value = teardown() if thread.id == 0 else None
        yield from self.broadcaster.bcast(thread, tag, value)

    def alloc_scalar(self, owner_thread: int, dtype="f8") -> SharedScalar:
        """Statically-allocated shared scalar (no clock cost: happens
        before the program runs, like compile-time allocation)."""
        handle = self.handles.fresh(ALL_PARTITION)
        scalar = SharedScalar(self, handle, owner_thread, np.dtype(dtype))
        cb = ControlBlock(handle=handle, kind=KIND_SCALAR,
                          total_bytes=scalar.elem_size)
        for node in self.cluster.nodes:
            self._svd[node.id].add(
                cb,
                local_base=scalar.vaddr if node.id == scalar.home_node
                else None,
                local_bytes=scalar.elem_size
                if node.id == scalar.home_node else 0)
        return scalar

    def alloc_lock(self, owner_thread: int = 0) -> SharedLock:
        """Statically-allocated upc_lock_t."""
        handle = self.handles.fresh(ALL_PARTITION)
        lock = SharedLock(self, handle, owner_thread)
        cb = ControlBlock(handle=handle, kind=KIND_LOCK, total_bytes=0)
        for node in self.cluster.nodes:
            self._svd[node.id].add(cb)
        return lock

    def _next_collective_tag(self, thread_id: int) -> int:
        seq = self._collective_seq.get(thread_id, 0) + 1
        self._collective_seq[thread_id] = seq
        return seq

    # -- program execution ---------------------------------------------------

    def spawn(self, program: Callable, *args) -> List:
        """Launch ``program(thread, *args)`` on every UPC thread.

        A finished thread parks in ``upc_exit``: it registers a
        permanent poller on its node so in-flight AMs targeting that
        node still get service (the implicit exit barrier of real
        runtimes).  Without this, a kernel whose last op is not a
        barrier deadlocks any remote thread still reading its data.
        """
        def main(th):
            result = yield from program(th, *args)
            th.node.progress.enter_runtime()
            return result

        procs = []
        for th in self.threads:
            proc = self.sim.process(main(th), name=f"upc{th.id}")
            procs.append(proc)
        self._programs.extend(procs)
        return procs

    def run(self, max_events: Optional[int] = None) -> RunResult:
        """Run to completion and collect results."""
        if not self._programs:
            raise UPCRuntimeError("run() before spawn() — nothing to do")
        end_times: Dict[int, float] = {}
        for i, proc in enumerate(self._programs):
            proc.add_callback(
                lambda ev, i=i: end_times.setdefault(i, self.sim.now))
        self.sim.run(max_events=max_events)
        # Surface crashes first: a crashed thread usually deadlocks the
        # others, and the crash is the interesting diagnosis.
        for proc in self._programs:
            if proc.triggered and not proc.ok:
                raise proc.exception
        for proc in self._programs:
            if not proc.triggered:
                raise UPCRuntimeError(
                    f"deadlock: {proc.name} never finished "
                    f"(t={self.sim.now:.1f})")
        elapsed = max(end_times.values()) if end_times else self.sim.now
        return RunResult(
            elapsed_us=elapsed,
            metrics=self.metrics,
            cache_stats=self.aggregate_cache_stats(),
            sim_events=self.sim.events_processed,
        )

    def aggregate_cache_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._caches.values():
            total.merge(cache.stats)
        return total

    def report(self) -> str:
        """A human-readable post-run summary: operation mix, cache
        behaviour, NIC utilization and progress-engine statistics.

        The shape of the report mirrors what the paper's authors read
        off Paraver + runtime counters when they diagnosed Field.
        """
        m = self.metrics
        cs = self.aggregate_cache_stats()
        lines = [
            f"run summary — {self.config.machine.name}, "
            f"{self.nthreads} threads on {self.cluster.nnodes} nodes "
            f"(cache {'on' if self.config.cache_enabled else 'off'}, "
            f"capacity {self.config.cache_capacity})",
            f"  ops: local={m.get_local.n + m.put_local.n} "
            f"shm={m.get_shm.n + m.put_shm.n} "
            f"remote_get={m.get_remote.n} remote_put={m.put_remote.n} "
            f"(rdma share {m.rdma_fraction:.0%})",
            f"  remote GET latency: mean={m.get_remote.mean:.2f}us "
            f"max={m.get_remote.max if m.get_remote.n else 0:.2f}us "
            f"[{m.get_remote_digest.summary()}]",
            f"  cache: {cs.hits} hits / {cs.misses} misses "
            f"(hit rate {cs.hit_rate:.3f}), {cs.insertions} inserts, "
            f"{cs.evictions} evictions, {cs.invalidations} invalidations",
            f"  collectives: {m.barriers} barriers, "
            f"{m.allocations} allocations, {m.frees} frees, "
            f"{m.lock_acquires} lock acquisitions",
            f"  bulk engine: {m.bulk_transfers} transfers, "
            f"{m.bulk_segments} segments -> {m.bulk_messages} messages "
            f"({m.bulk_coalesced_segments} coalesced, "
            f"{m.bulk_bytes_saved} B overhead saved), pipeline depth "
            f"mean={m.bulk_depth.mean:.1f} "
            f"max={m.bulk_depth.max if m.bulk_depth.n else 0:.0f}",
        ]
        if self.faults is not None:
            lines.append(
                f"  reliability: {m.faults_injected} faults injected, "
                f"{m.timeouts} timeouts, {m.retries} retries, "
                f"{m.rdma_timeouts} rdma->am fallbacks, "
                f"{m.pin_degrades} handles degraded to AM")
            noisy = m.noisy_links(3)
            if noisy:
                links = ", ".join(
                    f"{r['src']}->{r['dst']} ({r['timeouts']} tmo/"
                    f"{r['retries']} rty)" for r in noisy)
                lines.append(f"  noisy links: {links}")
        if self.policy is not None:
            lines.append(
                f"  repair policy: {self.policy.policy} — "
                f"{len(self.policy.decisions)} decision(s), "
                f"digest {self.policy.decisions_digest():#x}")
        for node in self.cluster.nodes[:8]:
            assert node.progress is not None
            lines.append(
                f"  node {node.id}: nic util "
                f"{node.nic.utilization():.2f}, handlers serviced "
                f"{node.progress.serviced} "
                f"(waited {node.progress.wait_time:.1f}us), pinned "
                f"{node.pins.pinned_bytes} B")
        if self.cluster.nnodes > 8:
            lines.append(f"  ... and {self.cluster.nnodes - 8} more nodes")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Runtime {self.config.machine.name} "
                f"threads={self.nthreads} nodes={self.cluster.nnodes} "
                f"cache={'on' if self.config.cache_enabled else 'off'}>")
