"""Shared scalars (section 2.1: "shared scalars (including
structures/unions/enumerations)").

A shared scalar has affinity to exactly one UPC thread (thread 0 for
statically allocated ones, per the UPC spec); remote threads reach it
through the same GET/PUT machinery as arrays — it is simply a
one-element object whose base address can be cached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.runtime.handle import SVDHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class SharedScalar:
    """One shared scalar with affinity to ``owner_thread``.

    Implements the same addressing protocol the op engine uses for
    arrays (a scalar is a one-element object), so remote scalar
    accesses flow through the full GET/PUT machinery — including the
    address cache: a scalar's base address is cacheable exactly like
    an array arena's.
    """

    def __init__(self, runtime: "Runtime", handle: SVDHandle,
                 owner_thread: int, dtype: np.dtype) -> None:
        self.runtime = runtime
        self.handle = handle
        self.owner = owner_thread
        self.dtype = np.dtype(dtype)
        self.data = np.zeros(1, dtype=self.dtype)
        node = runtime.node_of_thread(owner_thread)
        self._owner_node = node
        self.vaddr = runtime.cluster.node(node).memory.allocate(
            self.dtype.itemsize, align=16)
        #: Op-engine protocol: per-node storage map.
        self.node_base = {node: self.vaddr}
        self.node_bytes = {node: self.dtype.itemsize}
        self.freed = False

    # -- compatibility aliases ------------------------------------------

    @property
    def owner_thread_id(self) -> int:
        return self.owner

    @property
    def home_node(self) -> int:
        return self._owner_node

    @property
    def elem_size(self) -> int:
        return self.dtype.itemsize

    # -- op-engine protocol (one-element object) --------------------------

    def owner_thread(self, index: int = 0) -> int:
        self._check(index)
        return self.owner

    def owner_node(self, index: int = 0) -> int:
        self._check(index)
        return self._owner_node

    def arena_offset(self, index: int = 0) -> int:
        self._check(index)
        return 0

    def addr_of(self, index: int = 0) -> Tuple[int, int]:
        self._check(index)
        return self._owner_node, self.vaddr

    def span_bytes(self, nelems: int) -> int:
        return nelems * self.dtype.itemsize

    def _check(self, index: int) -> None:
        if index != 0:
            raise ValueError(f"scalar has one element, index {index}")

    def addr(self) -> Tuple[int, int]:
        """(node id, virtual address) of the scalar."""
        return self._owner_node, self.vaddr

    def read(self, index: int = 0, nelems: int = 1) -> np.ndarray:
        self._check(index)
        return self.data[:nelems].copy()

    def write(self, index, values=None) -> None:
        # Accepts both write(value) and the array-protocol
        # write(index, values).
        if values is None:
            self.data[0] = index
        else:
            self._check(index)
            self.data[0:1] = np.asarray(values, dtype=self.dtype).ravel()

    def free_storage(self) -> None:
        self.runtime.cluster.node(self._owner_node).memory.free(self.vaddr)
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SharedScalar {self.handle} @thread{self.owner}>"
