"""Per-run metrics collected by the runtime.

The experiment harness consumes these to produce the paper's numbers:
execution-time improvements (Figures 6, 9), cache hit rates
(Figure 8), and the miss-overhead claim of section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.stats import CacheStats
from repro.sim.sync import ShardMetrics
from repro.util.quantiles import LatencyDigest
from repro.util.stats import RunningStats


@dataclass
class RuntimeMetrics:
    """Operation-level accounting for one runtime instance."""

    #: Latency (µs) of blocking GETs, by resolution class.
    get_local: RunningStats = field(default_factory=RunningStats)
    get_shm: RunningStats = field(default_factory=RunningStats)
    get_remote: RunningStats = field(default_factory=RunningStats)
    #: Initiator-visible latency of PUTs.
    put_local: RunningStats = field(default_factory=RunningStats)
    put_shm: RunningStats = field(default_factory=RunningStats)
    put_remote: RunningStats = field(default_factory=RunningStats)
    #: Streaming percentiles of remote GET latency (P² estimators) —
    #: the tail view that exposed Field's overhang waits (§4.6).
    get_remote_digest: LatencyDigest = field(default_factory=LatencyDigest)

    #: Remote ops by protocol actually used.
    rdma_gets: int = 0
    rdma_puts: int = 0
    am_gets: int = 0
    am_puts: int = 0

    barriers: int = 0
    allocations: int = 0
    frees: int = 0
    lock_acquires: int = 0

    #: Service-layer (:mod:`repro.service`) operation counts, split by
    #: the access path that served them.  ``kv_rpc_ops`` counts ops
    #: served by the AM/RPC path (handler at the home node);
    #: ``kv_onesided_ops`` counts ops served by one-sided transfers.
    kv_gets: int = 0
    kv_puts: int = 0
    kv_dels: int = 0
    kv_mgets: int = 0
    kv_rpc_ops: int = 0
    kv_onesided_ops: int = 0
    #: One-sided ops a ``path_failover`` repair policy flipped to the
    #: RPC path (subset of ``kv_rpc_ops``).
    kv_failover_ops: int = 0

    compute_time_us: float = 0.0

    #: Bulk-transfer engine accounting (memget/memput/gather through
    #: :class:`~repro.runtime.bulk.BulkEngine`).
    bulk_transfers: int = 0
    #: Affine segments the engine planned (wire + intra-node).
    bulk_segments: int = 0
    #: Remote wire messages actually issued.
    bulk_messages: int = 0
    #: Segments that merged into an already-open message.
    bulk_coalesced_segments: int = 0
    #: Modeled control-message bytes avoided by coalescing (one
    #: request/reply pair per merged segment).
    bulk_bytes_saved: int = 0
    #: In-flight remote messages sampled at each issue — the achieved
    #: pipeline depth (mean/max).
    bulk_depth: RunningStats = field(default_factory=RunningStats)

    #: Reliability-layer accounting (see :mod:`repro.faults`): AM
    #: attempts re-issued after a timeout, timeouts observed (AM and
    #: RDMA), RDMA completions that timed out and degraded to the AM
    #: path, handles permanently degraded after a pin failure, and raw
    #: fault-plane injections.  All zero on a healthy (fault-free) run.
    retries: int = 0
    timeouts: int = 0
    rdma_timeouts: int = 0
    pin_degrades: int = 0
    faults_injected: int = 0
    #: Repair-policy actions applied (link tuned / disabled / failed
    #: over and their reversals).
    policy_actions: int = 0

    #: Per-link reliability accounting: (src, dst) -> count.  Feeds
    #: the top-k noisy-links rollup in :meth:`summary` and the
    #: ``repro report`` shard rollups.
    link_timeouts: Dict = field(default_factory=dict)
    link_retries: Dict = field(default_factory=dict)

    #: Peak AM-handler backlog observed by any polling progress engine
    #: (handlers queued while no thread was polling, §4.6) — updated on
    #: every enqueue transition, not just at sampler ticks.
    max_backlog: int = 0

    #: Per-shard accounting when the run used the sharded PDES core
    #: (``Simulator(shards=N)``); empty for pooled/legacy runs.
    shards: List[ShardMetrics] = field(default_factory=list)

    def attach_shards(self, shard_metrics: List[ShardMetrics]) -> None:
        """Adopt the per-shard metrics of a sharded run."""
        self.shards = list(shard_metrics)

    def link_timeout(self, src: int, dst: int) -> None:
        key = (src, dst)
        self.link_timeouts[key] = self.link_timeouts.get(key, 0) + 1

    def link_retry(self, src: int, dst: int) -> None:
        key = (src, dst)
        self.link_retries[key] = self.link_retries.get(key, 0) + 1

    def noisy_links(self, k: int = 5) -> List[Dict]:
        """Top-``k`` links by (timeouts, retries) — the triage list a
        repair policy would act on, and what ``repro report`` renders
        in its shard rollups."""
        keys = set(self.link_timeouts) | set(self.link_retries)
        rows = [{"src": src, "dst": dst,
                 "timeouts": self.link_timeouts.get((src, dst), 0),
                 "retries": self.link_retries.get((src, dst), 0)}
                for src, dst in keys]
        rows.sort(key=lambda r: (-r["timeouts"], -r["retries"],
                                 r["src"], r["dst"]))
        return rows[:k]

    def record_get(self, kind: str, latency_us: float) -> None:
        if kind == "remote":
            self.get_remote.add(latency_us)
            self.get_remote_digest.add(latency_us)
        elif kind == "local":
            self.get_local.add(latency_us)
        else:
            self.get_shm.add(latency_us)

    def record_put(self, kind: str, latency_us: float) -> None:
        if kind == "remote":
            self.put_remote.add(latency_us)
        elif kind == "local":
            self.put_local.add(latency_us)
        else:
            self.put_shm.add(latency_us)

    @property
    def remote_ops(self) -> int:
        return self.rdma_gets + self.rdma_puts + self.am_gets + self.am_puts

    @property
    def rdma_fraction(self) -> float:
        """Share of remote operations that went over RDMA — a direct
        view of how effective the address cache was."""
        n = self.remote_ops
        return (self.rdma_gets + self.rdma_puts) / n if n else 0.0

    def shard_summary(self) -> Dict[str, float]:
        """Rollups across shards, folded with the same
        :class:`RunningStats` merge the latency paths use."""
        ev = RunningStats()
        ev.extend(s.events for s in self.shards)
        stalls = RunningStats()
        stalls.extend(s.stall_grains for s in self.shards)
        backlog = RunningStats()
        backlog.extend(s.max_backlog for s in self.shards)
        return {
            "shards": len(self.shards),
            "shard_events_total": int(ev.total),
            "shard_events_mean": ev.mean,
            "shard_events_max": int(ev.max) if ev.n else 0,
            "sync_rounds": max((s.grains for s in self.shards),
                               default=0),
            "sync_stall_grains": int(stalls.total),
            "sync_stall_mean": stalls.mean,
            "channel_bytes": sum(s.channel_bytes for s in self.shards),
            "channel_msgs": sum(s.msgs_sent for s in self.shards),
            "shard_max_backlog": int(backlog.max) if backlog.n else 0,
            "shard_final_clock_us": max(
                (s.final_clock_us for s in self.shards), default=0.0),
        }

    def summary(self) -> Dict[str, float]:
        """Flat dict for table rendering."""
        out = self._base_summary()
        if self.shards:
            out.update(self.shard_summary())
            out["max_backlog"] = max(
                int(out["max_backlog"]),
                max(s.max_backlog for s in self.shards))
        return out

    def _base_summary(self) -> Dict[str, float]:
        return {
            "remote_gets": self.get_remote.n,
            "remote_get_mean_us": self.get_remote.mean,
            "remote_get_p50_us": self.get_remote_digest.p50.value,
            "remote_get_p99_us": self.get_remote_digest.p99.value,
            "remote_puts": self.put_remote.n,
            "remote_put_mean_us": self.put_remote.mean,
            "shm_accesses": self.get_shm.n + self.put_shm.n,
            "local_accesses": self.get_local.n + self.put_local.n,
            "rdma_gets": self.rdma_gets,
            "rdma_puts": self.rdma_puts,
            "am_gets": self.am_gets,
            "am_puts": self.am_puts,
            "rdma_fraction": self.rdma_fraction,
            "barriers": self.barriers,
            "compute_time_us": self.compute_time_us,
            "bulk_messages": self.bulk_messages,
            "bulk_coalesced_segments": self.bulk_coalesced_segments,
            "bulk_bytes_saved": self.bulk_bytes_saved,
            "bulk_mean_depth": self.bulk_depth.mean,
            "max_backlog": self.max_backlog,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "rdma_fallbacks": self.rdma_timeouts,
            "degraded_handles": self.pin_degrades,
            "faults_injected": self.faults_injected,
            "policy_actions": self.policy_actions,
            "kv_failover_ops": self.kv_failover_ops,
            "noisy_links": self.noisy_links(),
        }


@dataclass
class RunResult:
    """What :meth:`repro.runtime.runtime.Runtime.run` returns."""

    elapsed_us: float
    metrics: RuntimeMetrics
    cache_stats: CacheStats
    #: Events the simulator processed (sim-performance visibility).
    sim_events: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RunResult {self.elapsed_us:.1f}us "
                f"remote_ops={self.metrics.remote_ops} "
                f"hit_rate={self.cache_stats.hit_rate:.2f}>")
