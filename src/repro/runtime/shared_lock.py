"""Shared locks (section 2.1: the runtime "implements ... shared
locks").

A UPC lock lives on a home node; acquiring it from a remote thread is
an AM round trip (the home node's CPU arbitrates), so locks feel the
same polling-progress effects as every other AM — but are *not*
accelerated by the address cache (they are control, not data).
Queueing is modelled by a FIFO :class:`~repro.sim.resource.Resource`
on the home node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.handle import SVDHandle
from repro.sim.resource import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class SharedLock:
    """One upc_lock_t, homed on ``owner_thread``'s node."""

    def __init__(self, runtime: "Runtime", handle: SVDHandle,
                 owner_thread: int) -> None:
        self.runtime = runtime
        self.handle = handle
        self.owner_thread = owner_thread
        self.owner_node = runtime.node_of_thread(owner_thread)
        self._res = Resource(runtime.sim, capacity=1,
                             name=f"lock{handle.index}")
        #: Current holder (thread id) — for debugging and tests.
        self.holder = None
        self.acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._res.in_use > 0

    def _grant(self, thread_id: int) -> None:
        self.holder = thread_id
        self.acquisitions += 1

    def _release(self, thread_id: int) -> None:
        if self.holder != thread_id:
            raise RuntimeError(
                f"thread {thread_id} unlocking lock held by {self.holder}")
        self.holder = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SharedLock {self.handle} holder={self.holder} "
                f"queue={self._res.queue_length}>")
