"""Block-cyclic data layouts (section 2.1).

    "Shared arrays are distributed in a block-cyclic fashion among the
    threads, so different pieces of the array have affinity to
    different threads."

The layout is pure arithmetic shared by every node: ownership and
local offsets are computable anywhere, which is precisely what lets a
cache hit compute ``base address + offset`` on the initiator node.

Local storage convention (mirrors XLUPC's per-node arenas): each
thread owns ``ceil(nblocks / nthreads)`` block slots of ``blocksize``
elements laid out contiguously; a node's arena concatenates the chunks
of its resident threads.  The *node base address* of that arena is the
thing the remote address cache stores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.errors import LayoutError


@dataclass(frozen=True)
class BlockCyclicLayout:
    """Distribution of ``nelems`` elements over ``nthreads`` threads."""

    nelems: int
    elem_size: int
    blocksize: int
    nthreads: int

    def __post_init__(self) -> None:
        if self.nelems <= 0:
            raise LayoutError(f"nelems must be > 0, got {self.nelems}")
        if self.elem_size <= 0:
            raise LayoutError(f"elem_size must be > 0, got {self.elem_size}")
        if self.blocksize <= 0:
            raise LayoutError(f"blocksize must be > 0, got {self.blocksize}")
        if self.nthreads <= 0:
            raise LayoutError(f"nthreads must be > 0, got {self.nthreads}")

    # -- block arithmetic ------------------------------------------------

    @property
    def nblocks(self) -> int:
        return -(-self.nelems // self.blocksize)

    @property
    def max_blocks_per_thread(self) -> int:
        """Block slots reserved per thread (uniform arena sizing)."""
        return -(-self.nblocks // self.nthreads)

    @property
    def thread_chunk_elems(self) -> int:
        """Capacity (in elements) of one thread's local chunk."""
        return self.max_blocks_per_thread * self.blocksize

    @property
    def thread_chunk_bytes(self) -> int:
        return self.thread_chunk_elems * self.elem_size

    def _check(self, index: int) -> None:
        if not 0 <= index < self.nelems:
            raise LayoutError(
                f"index {index} out of range [0, {self.nelems})")

    def thread_of(self, index: int) -> int:
        """Affinity: which UPC thread owns element ``index``."""
        self._check(index)
        return (index // self.blocksize) % self.nthreads

    def phase_of(self, index: int) -> int:
        """Position within the block (UPC ``upc_phaseof``)."""
        self._check(index)
        return index % self.blocksize

    def block_of(self, index: int) -> int:
        """Global block number of element ``index``."""
        self._check(index)
        return index // self.blocksize

    def local_index(self, index: int) -> int:
        """Element offset within the owner thread's local chunk."""
        self._check(index)
        course = self.block_of(index) // self.nthreads  # block row
        return course * self.blocksize + self.phase_of(index)

    def local_offset_bytes(self, index: int) -> int:
        return self.local_index(index) * self.elem_size

    def elems_of_thread(self, thread: int) -> int:
        """How many real elements thread ``thread`` owns."""
        if not 0 <= thread < self.nthreads:
            raise LayoutError(f"thread {thread} out of range")
        count = 0
        full_rounds, rem_blocks = divmod(self.nblocks, self.nthreads)
        count = full_rounds * self.blocksize
        if thread < rem_blocks:
            count += self.blocksize
        # The very last block may be partial.
        last_block = self.nblocks - 1
        if self.thread_of(last_block * self.blocksize) == thread:
            tail = self.nelems - last_block * self.blocksize
            count -= self.blocksize - tail
        return count

    def contiguous_span(self, index: int, nelems: int) -> bool:
        """True if ``[index, index+nelems)`` lives inside one block
        (hence is contiguous both globally and locally)."""
        self._check(index)
        if nelems <= 0:
            raise LayoutError(f"nelems must be > 0, got {nelems}")
        self._check(index + nelems - 1)
        return self.block_of(index) == self.block_of(index + nelems - 1)


def blocked_layout(nelems: int, elem_size: int,
                   nthreads: int) -> BlockCyclicLayout:
    """The pure-blocked distribution the Field stressmark uses: "the
    string array is blocked in memory (i.e. with a block size of
    ceil(N/THREADS))" (section 4.4)."""
    blocksize = -(-nelems // nthreads)
    return BlockCyclicLayout(nelems=nelems, elem_size=elem_size,
                             blocksize=blocksize, nthreads=nthreads)


def cyclic_layout(nelems: int, elem_size: int,
                  nthreads: int) -> BlockCyclicLayout:
    """Element-cyclic distribution (blocksize 1) — UPC's default for
    ``shared int a[N]``."""
    return BlockCyclicLayout(nelems=nelems, elem_size=elem_size,
                             blocksize=1, nthreads=nthreads)
