"""Pointers to shared objects and their arithmetic (section 2).

The runtime "performs pointer arithmetic on pointers to shared
objects".  A UPC pointer-to-shared is the triple

    (thread, phase, block row)

where ``phase`` is the position inside the current block and the
block row counts how many full distribution rounds precede it.
Incrementing walks the *global layout order*: through the block, then
to the same block row on the next thread, wrapping to the next row
after the last thread — exactly the traversal order of
``shared [B] T a[N]`` in UPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.errors import LayoutError
from repro.runtime.layout import BlockCyclicLayout


@dataclass(frozen=True)
class PointerToShared:
    """A pointer into a block-cyclic shared array."""

    layout: BlockCyclicLayout
    thread: int
    phase: int
    course: int  # block row (how many full rounds of blocks precede)

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_index(layout: BlockCyclicLayout, index: int) -> "PointerToShared":
        """Pointer to global element ``index``."""
        if not 0 <= index < layout.nelems:
            raise LayoutError(f"index {index} out of range")
        block = index // layout.blocksize
        return PointerToShared(
            layout=layout,
            thread=block % layout.nthreads,
            phase=index % layout.blocksize,
            course=block // layout.nthreads,
        )

    # -- accessors (the upc_* intrinsics) -----------------------------------

    def threadof(self) -> int:
        """``upc_threadof``: affinity of the pointed-to element."""
        return self.thread

    def phaseof(self) -> int:
        """``upc_phaseof``: position within the block."""
        return self.phase

    def to_index(self) -> int:
        """Global element index this pointer denotes."""
        block = self.course * self.layout.nthreads + self.thread
        index = block * self.layout.blocksize + self.phase
        if index >= self.layout.nelems:
            raise LayoutError(f"pointer {self} is past the end")
        return index

    def local_offset_bytes(self) -> int:
        """``upc_addrfield``-flavoured: byte offset inside the owner
        thread's chunk (what gets added to a cached base address)."""
        return ((self.course * self.layout.blocksize + self.phase)
                * self.layout.elem_size)

    # -- arithmetic ---------------------------------------------------------

    def add(self, k: int) -> "PointerToShared":
        """``p + k`` in UPC pointer-to-shared arithmetic."""
        return PointerToShared.from_index(
            self.layout, self.to_index() + k if k >= 0 else
            self.to_index() + k)

    def __add__(self, k: int) -> "PointerToShared":
        return self.add(k)

    def __sub__(self, other) -> int:
        """Pointer difference in elements (same array only)."""
        if isinstance(other, PointerToShared):
            if other.layout != self.layout:
                raise LayoutError("pointer difference across arrays")
            return self.to_index() - other.to_index()
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"pts(thread={self.thread}, phase={self.phase}, "
                f"course={self.course})")
