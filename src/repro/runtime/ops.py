"""Remote access operations: GET and PUT with the address-cache fast
path (section 3).

Decision tree for every shared access (issued by ``thread``):

1. affine to the issuing thread → **local**: handle deref + load/store;
2. affine to another thread on the same node → **shared memory**:
   Pthreads share the arena directly (no network, no cache — the
   hybrid-mode property discussed in section 4.6);
3. remote, address cache **hit** → RDMA GET/PUT: the initiator
   computes ``base + offset`` itself, zero target-CPU involvement
   (Figure 3b);
4. remote, **miss** → the default AM protocol (Figure 3a / Figure 5),
   asking the target's header handler to piggyback the arena's base
   address so the *next* access to that (handle, node) pair hits.

On the target side the header handler pays the SVD translation and,
on first touch, pins the object per the configured policy and records
it in the pinned address table — "before an address can be tagged in
another node's address cache it needs to be pinned locally" (3.1).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING, Tuple

import numpy as np

from repro.core.piggyback import PiggybackMode
from repro.core.policy import ranges_to_pin
from repro.network.node import Node
from repro.obs.events import (
    CACHE_LOOKUP,
    CACHE_SEED,
    COMP_PIGGYBACK,
    DEGRADE,
    OP_BEGIN,
    OP_END,
    PHASE,
)
from repro.runtime.shared_array import SharedArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime
    from repro.runtime.thread import UPCThread


class OpEngine:
    """Implements GET/PUT against a runtime's cluster + directory."""

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self.params = runtime.cluster.params
        # Cached for the per-op hot path (attribute chains add up at
        # 10^5 ops per sweep); both are fixed for the runtime's life.
        self.sim = runtime.sim
        self.events = runtime.events

    def _begin(self, thread: "UPCThread", name: str, **attrs) -> int:
        """Open a flight-recorder op span; returns op id (-1 if off)."""
        log = self.events
        if not log.enabled:
            return -1
        op_id = log.next_op_id()
        log.emit(self.sim.now, OP_BEGIN, op=op_id, thread=thread.id,
                 node=thread.node.id, name=name, **attrs)
        return op_id

    def _end(self, thread: "UPCThread", op_id: int, proto: str,
             **attrs) -> None:
        log = self.events
        if log.enabled and op_id >= 0:
            log.emit(self.sim.now, OP_END, op=op_id,
                     thread=thread.id, node=thread.node.id,
                     proto=proto, **attrs)

    # ------------------------------------------------------------------
    # GET
    # ------------------------------------------------------------------

    def get(self, thread: "UPCThread", array: SharedArray, index: int,
            nelems: int = 1):
        """Blocking read of ``array[index : index+nelems]``.

        Returns a NumPy array of ``nelems`` values (copy).
        """
        rt = self.rt
        sim = rt.sim
        t0 = sim.now
        p = self.params
        self._check_live(array)
        self._check_one_owner(array, index, nelems)
        op_id = self._begin(thread, "get", index=index, nelems=nelems)
        yield sim.sleep(p.o_sw_us)

        owner_thread = array.owner_thread(index)
        owner_node_id = array.owner_node(index)
        nbytes = array.span_bytes(nelems)

        if owner_thread == thread.id:
            yield sim.sleep(p.local_access_us)
            rt.metrics.record_get("local", sim.now - t0)
            self._trace(thread, "get:local", t0)
            self._end(thread, op_id, "local", nbytes=nbytes)
            return array.read(index, nelems)

        if owner_node_id == thread.node.id:
            yield sim.sleep(p.shm_access_us + p.copy_time(nbytes))
            rt.metrics.record_get("shm", sim.now - t0)
            self._trace(thread, "get:shm", t0)
            self._end(thread, op_id, "shm", nbytes=nbytes)
            return array.read(index, nelems)

        src = thread.node
        dst = rt.cluster.node(owner_node_id)
        # Only *network* operations enter the messaging library — and
        # with it the polling progress engine.  Local and intra-node
        # shared-memory accesses are plain loads/stores that never
        # drive the network (the root of the Field pathology, 4.6).
        src.progress.enter_runtime()
        try:
            proto = yield from self._remote_get(thread, src, dst, array,
                                                index, nbytes, op_id)
        finally:
            src.progress.leave_runtime()
        rt.metrics.record_get("remote", sim.now - t0)
        self._trace(thread, f"get:{proto}", t0)
        self._end(thread, op_id, proto, nbytes=nbytes)
        return array.read(index, nelems)

    def bulk_get(self, thread: "UPCThread", array: SharedArray,
                 node_id: int, segments, nbytes: int,
                 parent_op: int = -1):
        """One coalesced wire GET on behalf of the bulk engine.

        ``segments`` is a list of ``(start, count)`` affine segments
        that the engine has already verified to live back-to-back in
        ``node_id``'s arena, so the whole message is a single
        ``base + offset`` RDMA-able range.  Protocol choice (RDMA fast
        path vs. default AM) is decided here, per destination, exactly
        as for a scalar GET.  Returns one NumPy array per segment.
        """
        rt = self.rt
        sim = rt.sim
        t0 = sim.now
        self._check_live(array)
        op_id = self._begin(thread, "get", bulk=True, parent=parent_op,
                            segments=len(segments))
        yield sim.sleep(self.params.o_sw_us)
        src = thread.node
        dst = rt.cluster.node(node_id)
        src.progress.enter_runtime()
        try:
            proto = yield from self._remote_get(
                thread, src, dst, array, segments[0][0], nbytes, op_id)
        finally:
            src.progress.leave_runtime()
        rt.metrics.record_get("remote", sim.now - t0)
        self._trace(thread, f"get:{proto}", t0)
        self._end(thread, op_id, proto, nbytes=nbytes)
        return [array.read(start, count) for start, count in segments]

    def _remote_get(self, thread: "UPCThread", src: Node, dst: Node,
                    array: SharedArray, index: int, nbytes: int,
                    op_id: int = -1):
        rt = self.rt
        sim = rt.sim
        log = rt.events
        cache = rt.addr_cache(src.id)
        base, cost = cache.lookup(array.handle, dst.id)
        if log.enabled:
            log.emit(sim.now, CACHE_LOOKUP, op=op_id, thread=thread.id,
                     node=src.id, target=dst.id, hit=base is not None)
        if cost:
            yield sim.sleep(cost)

        if base is not None:
            # Fast path (Figure 3b): address known, fire RDMA.
            ok = yield from rt.cluster.transport.rdma_get(src, dst,
                                                          nbytes,
                                                          op_id=op_id)
            if ok:
                rt.metrics.rdma_gets += 1
                return "rdma"
            # Completion timeout: the cached address is suspect — drop
            # exactly that entry (O(1)) and degrade to the AM path,
            # whose piggybacked reply re-seeds the cache.
            self._rdma_fallback(cache, array, src, dst, op_id, "get")

        # Slow path (Figure 3a / Figure 5): default protocol, asking
        # the target to piggyback its arena base address.
        rt.metrics.am_gets += 1
        piggy = rt.config.piggyback
        if piggy.needs_dedicated_fetch:
            # Ablation strawman: a separate address-fetch round trip,
            # then RDMA for the data itself.
            reply = yield from rt.cluster.transport.default_get(
                src, dst, self.params.ctrl_bytes,
                self._make_addr_handler(array, dst, index), op_id=op_id)
            if reply.payload is not None:
                yield from self._seed_cache(cache, array, src, dst,
                                            reply.payload, op_id)
            ok = yield from rt.cluster.transport.rdma_get(src, dst,
                                                          nbytes,
                                                          op_id=op_id)
            if not ok:
                # The dedicated-fetch ablation has no piggybacked data
                # reply to fall back on; move the data over plain AM.
                self._rdma_fallback(cache, array, src, dst, op_id, "get")
                yield from rt.cluster.transport.default_get(
                    src, dst, nbytes, None, op_id=op_id)
            return "am"

        handler = self._make_get_handler(
            array, dst,
            want_addr=piggy.wants_address and cache.enabled,
            touch_offset=array.arena_offset(index), touch_bytes=nbytes)
        _, dst_vaddr = array.addr_of(index)
        reply = yield from rt.cluster.transport.default_get(
            src, dst, nbytes, handler,
            src_addr=src.memory.base, dst_addr=dst_vaddr, op_id=op_id)
        if reply.payload is not None:
            yield from self._seed_cache(cache, array, src, dst,
                                        reply.payload, op_id)
        return "am"

    def _rdma_fallback(self, cache, array: SharedArray, src: Node,
                       dst: Node, op_id: int, what: str) -> None:
        """Book-keeping for an RDMA completion timeout: count it,
        invalidate the suspect cache entry (O(1)), record the
        degradation."""
        rt = self.rt
        rt.metrics.rdma_timeouts += 1
        cache.invalidate_entry(array.handle, dst.id)
        log = rt.events
        if log.enabled:
            log.emit(rt.sim.now, DEGRADE, op=op_id, node=src.id,
                     mode="rdma_to_am", what=what, target=dst.id,
                     handle=str(array.handle))

    def _seed_cache(self, cache, array: SharedArray, src: Node,
                    dst: Node, base_addr: int, op_id: int):
        """Insert a piggybacked address; the insert cost is the
        piggyback's software share of the op's critical path."""
        rt = self.rt
        sim = rt.sim
        log = rt.events
        cost = cache.insert(array.handle, dst.id, base_addr)
        if log.enabled:
            log.emit(sim.now, CACHE_SEED, op=op_id, node=src.id,
                     target=dst.id, handle=str(array.handle))
        yield sim.sleep(cost)
        if log.enabled and op_id >= 0 and cost > 0:
            log.emit(sim.now, PHASE, op=op_id, node=src.id,
                     comp=COMP_PIGGYBACK, dur=cost)

    # ------------------------------------------------------------------
    # PUT
    # ------------------------------------------------------------------

    def put(self, thread: "UPCThread", array: SharedArray, index: int,
            values, nelems: Optional[int] = None):
        """Write ``values`` to ``array[index:...]``.

        Returns once the operation is *locally* complete (the UPC
        relaxed model); the write lands in the data plane when the
        target applies it.  Use fence/barrier to order.
        """
        rt = self.rt
        sim = rt.sim
        p = self.params
        t0 = sim.now
        values = np.asarray(values, dtype=array.dtype).ravel()
        if nelems is None:
            nelems = len(values)
        if len(values) != nelems:
            values = np.resize(values, nelems)
        self._check_live(array)
        self._check_one_owner(array, index, nelems)
        op_id = self._begin(thread, "put", index=index, nelems=nelems)
        yield sim.sleep(p.o_sw_us)

        owner_thread = array.owner_thread(index)
        owner_node_id = array.owner_node(index)
        nbytes = array.span_bytes(nelems)

        if owner_thread == thread.id:
            yield sim.sleep(p.local_access_us)
            array.write(index, values)
            rt.metrics.record_put("local", sim.now - t0)
            self._trace(thread, "put:local", t0)
            self._end(thread, op_id, "local", nbytes=nbytes)
            return

        if owner_node_id == thread.node.id:
            yield sim.sleep(p.shm_access_us + p.copy_time(nbytes))
            array.write(index, values)
            rt.metrics.record_put("shm", sim.now - t0)
            self._trace(thread, "put:shm", t0)
            self._end(thread, op_id, "shm", nbytes=nbytes)
            return

        src = thread.node
        dst = rt.cluster.node(owner_node_id)
        src.progress.enter_runtime()
        try:
            ticket, proto = yield from self._remote_put(
                thread, src, dst, array, [(index, values)], nbytes,
                op_id)
        finally:
            src.progress.leave_runtime()
        rt.metrics.record_put("remote", sim.now - t0)
        self._trace(thread, f"put:{proto}", t0)
        self._end(thread, op_id, proto, nbytes=nbytes)
        return ticket

    def bulk_put(self, thread: "UPCThread", array: SharedArray,
                 node_id: int, pairs, nbytes: int,
                 parent_op: int = -1):
        """One coalesced wire PUT on behalf of the bulk engine.

        ``pairs`` is a list of ``(start, values)`` affine segments,
        back-to-back in ``node_id``'s arena.  Locally complete on
        return (relaxed); remote application — of every constituent
        segment at once — is tracked for fence/barrier.
        """
        rt = self.rt
        sim = rt.sim
        t0 = sim.now
        self._check_live(array)
        op_id = self._begin(thread, "put", bulk=True, parent=parent_op,
                            segments=len(pairs))
        yield sim.sleep(self.params.o_sw_us)
        src = thread.node
        dst = rt.cluster.node(node_id)
        src.progress.enter_runtime()
        try:
            ticket, proto = yield from self._remote_put(
                thread, src, dst, array, pairs, nbytes, op_id)
        finally:
            src.progress.leave_runtime()
        rt.metrics.record_put("remote", sim.now - t0)
        self._trace(thread, f"put:{proto}", t0)
        self._end(thread, op_id, proto, nbytes=nbytes)
        return ticket

    def _remote_put(self, thread: "UPCThread", src: Node, dst: Node,
                    array: SharedArray, pairs, nbytes: int,
                    op_id: int = -1):
        """Issue one wire PUT covering ``pairs`` — a list of
        ``(index, values)`` segments contiguous in the target arena
        (a single-segment list for the scalar path)."""
        rt = self.rt
        sim = rt.sim
        log = rt.events
        cache = rt.addr_cache(src.id)
        index = pairs[0][0]
        snapshots = [(i, np.asarray(v).copy()) for i, v in pairs]

        if rt.use_rdma_put:
            base, cost = cache.lookup(array.handle, dst.id)
            if log.enabled:
                log.emit(sim.now, CACHE_LOOKUP, op=op_id,
                         thread=thread.id, node=src.id, target=dst.id,
                         hit=base is not None)
            if cost:
                yield sim.sleep(cost)
            if base is not None:
                ticket = yield from rt.cluster.transport.rdma_put(
                    src, dst, nbytes, op_id=op_id)
                if ticket is not None:
                    rt.metrics.rdma_puts += 1
                    self._apply_on(ticket.remote_applied, array,
                                   snapshots)
                    thread.track_put(ticket.remote_applied)
                    return ticket, "rdma"
                # Completion timeout: drop the suspect entry and fall
                # through to the AM path, which re-issues the store.
                self._rdma_fallback(cache, array, src, dst, op_id,
                                    "put")

        # Default protocol; the ACK piggybacks the address home
        # (asynchronously — off the initiator's critical path).
        rt.metrics.am_puts += 1
        piggy = rt.config.piggyback
        want_addr = piggy.wants_address and rt.use_rdma_put
        handler = self._make_get_handler(
            array, dst, want_addr=want_addr,
            touch_offset=array.arena_offset(index), touch_bytes=nbytes)
        _, dst_vaddr = array.addr_of(index)
        ticket = yield from rt.cluster.transport.default_put(
            src, dst, nbytes, handler,
            src_addr=src.memory.base, dst_addr=dst_vaddr, op_id=op_id)
        self._apply_on(ticket.remote_applied, array, snapshots)
        thread.track_put(ticket.remote_applied)
        if want_addr:
            self._insert_on_ack(ticket.remote_applied, src, dst, array,
                                op_id)
        return ticket, "am"

    def _apply_on(self, remote_applied, array: SharedArray,
                  snapshots) -> None:
        """Write the snapshots into the data plane when the target
        observes the put."""

        def _apply(ev):
            if not ev.ok:
                # The reliability layer gave up on the message; the
                # store was never observed — surface the failure at
                # the fence, don't apply phantom bytes.
                return
            for index, snapshot in snapshots:
                array.write(index, snapshot)

        remote_applied.add_callback(_apply)

    def _insert_on_ack(self, remote_applied, src: Node, dst: Node,
                       array: SharedArray, op_id: int = -1) -> None:
        """PiggybackMode.ON_ACK path: once the target applied the put,
        the ACK carries the base address back after one wire latency."""
        rt = self.rt

        def _tail():
            yield rt.sim.sleep(
                rt.cluster.topology.latency(dst.id, src.id))
            if array.freed:
                # The object was deallocated while the ack was in
                # flight; inserting now would resurrect a stale entry
                # the eager invalidation already removed.
                return
            if rt.pinned_table(dst.id).is_unpinnable(array.handle):
                # Registration failed on the target: the arena base is
                # known but RDMA to it would touch unpinned memory, so
                # no address goes home and the object stays on AM.
                return
            base = self._target_base_addr(array, dst)
            if base is not None:
                cache = rt.addr_cache(src.id)
                cache.insert(array.handle, dst.id, base)
                log = rt.events
                if log.enabled:
                    log.emit(rt.sim.now, CACHE_SEED, op=op_id,
                             node=src.id, target=dst.id,
                             handle=str(array.handle), on_ack=True)

        def _spawn(ev):
            if not ev.ok:
                return
            rt.sim.process(_tail(), name="put-ack-piggyback")

        remote_applied.add_callback(_spawn)

    def _check_one_owner(self, array: SharedArray, index: int,
                         nelems: int) -> None:
        """A single GET/PUT must target one affine region; larger
        spans go through memget/memput, which split per block."""
        if nelems <= 1 or array.owner is not None:
            return
        if not array.layout.contiguous_span(index, nelems):
            from repro.runtime.errors import AffinityError
            raise AffinityError(
                f"span [{index}, {index + nelems}) crosses a block "
                "boundary; use memget/memput for multi-block transfers")

    def _trace(self, thread: "UPCThread", state: str, t0: float) -> None:
        tracer = self.rt.config.tracer
        if tracer is not None:
            tracer.record(thread.id, state, t0, self.rt.sim.now)

    def _check_live(self, array: SharedArray) -> None:
        if array.freed:
            from repro.runtime.errors import SVDError
            raise SVDError(
                f"use-after-free: {array.handle} was deallocated")

    # ------------------------------------------------------------------
    # Target-side handlers
    # ------------------------------------------------------------------

    def _make_get_handler(self, array: SharedArray, dst: Node,
                          want_addr: bool, touch_offset: int = 0,
                          touch_bytes: int = 1):
        """Header handler run on the target (Figure 5, italic parts):
        SVD translation + (optionally) pin-and-report-base-address."""
        rt = self.rt
        p = self.params
        piggy = rt.config.piggyback

        def handler(node: Node) -> Tuple[float, Optional[int], int]:
            replica = rt.svd(node.id)
            replica.lookup_local(array.handle)  # the unavoidable deref
            cost = p.svd_lookup_us
            payload: Optional[int] = None
            extra = 0
            if want_addr:
                pin_cost, pinned = self._ensure_pinned(
                    array, node, touch_offset, touch_bytes)
                cost += pin_cost
                if pinned:
                    payload = self._target_base_addr(array, node)
                    extra = piggy.reply_extra_bytes()
                # else: degraded — no address goes home, the cache is
                # never seeded, and this object stays on the AM path.
            return cost, payload, extra

        return handler

    def _make_addr_handler(self, array: SharedArray, dst: Node,
                           index: int):
        """EXPLICIT mode: a handler that *only* translates + pins."""
        rt = self.rt
        p = self.params
        touch_offset = array.arena_offset(index)

        def handler(node: Node) -> Tuple[float, Optional[int], int]:
            replica = rt.svd(node.id)
            replica.lookup_local(array.handle)
            pin_cost, pinned = self._ensure_pinned(
                array, node, touch_offset, array.elem_size)
            cost = p.svd_lookup_us + pin_cost
            base = (self._target_base_addr(array, node) if pinned
                    else None)
            return cost, base, 0

        return handler

    def _ensure_pinned(self, array: SharedArray, node: Node,
                       touch_offset: int,
                       touch_bytes: int) -> Tuple[float, bool]:
        """First-touch pinning per the configured policy (section 3.1):
        PIN_EVERYTHING registers the whole arena; CHUNKED registers
        only the chunk(s) containing the touched range.

        Returns ``(cost_us, ok)``.  Registration can fail — the real
        registered-memory limit, or the fault plane's injected budget.
        When degradation is active (a fault plane is installed, or
        ``degrade_pin_failures`` is set) the handle is marked
        unpinnable and served over AM forever; otherwise the failure
        propagates as :class:`PinLimitError`, the strict pre-fault
        behavior.
        """
        rt = self.rt
        base = array.node_base.get(node.id)
        if base is None:
            return 0.0, True
        size = array.node_bytes[node.id]
        table = rt.pinned_table(node.id)
        if table.is_unpinnable(array.handle):
            # Already degraded: one failed pin, not one per access.
            return 0.0, False
        faults = rt.faults
        touch_bytes = min(touch_bytes, size - touch_offset)
        cost = 0.0
        for vaddr, span in ranges_to_pin(
                rt.config.pinning_policy, base, size,
                touch_offset=touch_offset, touch_size=max(1, touch_bytes),
                chunk_bytes=rt.config.pin_chunk_bytes):
            if (faults is not None
                    and not table.is_pinned(vaddr, span)
                    and not faults.pin_allowed(node.id, span)):
                ok = False
            else:
                c, ok = table.register(array.handle, vaddr, span)
                cost += c
            if not ok:
                if faults is None and not rt.config.degrade_pin_failures:
                    raise table.last_pin_error
                table.mark_unpinnable(array.handle)
                rt.metrics.pin_degrades += 1
                log = rt.events
                if log.enabled:
                    log.emit(rt.sim.now, DEGRADE, node=node.id,
                             mode="unpinnable",
                             handle=str(array.handle))
                return cost, False
        return cost, True

    def _target_base_addr(self, array: SharedArray,
                          node: Node) -> Optional[int]:
        """The address that goes into remote caches: the *physical*
        base of this node's arena (RDMA-format, per section 3).

        Under the CHUNKED policy the arena base itself may be unpinned
        (only touched chunks are registered); the virtual base is then
        handed out as the cacheable token — the pinned address table
        resolves chunk physical addresses at transfer time.
        """
        base = array.node_base.get(node.id)
        if base is None:
            return None
        phys = rt_phys(self.rt, node, base)
        return phys if phys is not None else base


def rt_phys(rt: "Runtime", node: Node, vaddr: int) -> Optional[int]:
    """Physical address of ``vaddr`` on ``node`` if pinned, else None."""
    return rt.pinned_table(node.id).lookup_phys(vaddr)
