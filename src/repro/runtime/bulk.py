"""The pipelined bulk-transfer engine.

The serial ``memget``/``memput`` loops pay ``segments x RTT``: one
blocking round trip per affine block.  The paper's whole argument is
that one-sided transfers should run as deep as the injection pipeline
allows (cf. Brock et al.'s aggregation pipelines and Storm's coalescing
of small remote ops), so this engine turns a bulk span into a *plan*
and drives it with two independent optimizations:

1. **Per-destination coalescing** — the span is split at affinity
   boundaries (the same ``_segments`` arithmetic the serial path uses)
   and segments bound for the same node whose target-arena byte ranges
   are back-to-back are merged into a single wire message, up to
   ``bulk_max_coalesce_bytes`` per message.  A block-cyclic array's
   blocks interleave *globally* but sit densely in each node's arena,
   so even an alternating layout coalesces per destination.  A single
   segment is never split, whatever its size, so a one-segment span
   costs exactly one message — identical to the serial path.

2. **Bounded in-flight windows** — the planned transfers are issued as
   nonblocking simulator processes under a sliding window of
   ``bulk_max_inflight`` messages with completion-driven refill: when
   any in-flight message completes, the next one launches.  This is a
   true pipeline, not lock-step batching; with window 1 (and coalescing
   off) the engine degenerates to exactly the serial behaviour.

The engine only *schedules*; protocol selection (RDMA fast path vs. the
default AM protocol, per destination) stays inside
:class:`~repro.runtime.ops.OpEngine`, and the data plane is applied by
the same op-engine callbacks the scalar path uses — results are
bit-identical with the engine on or off, and relaxed-put tracking for
fence/barrier is untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.obs.events import (
    BULK_DRAIN,
    BULK_ISSUE,
    BULK_PLAN,
    OP_BEGIN,
    OP_END,
)
from repro.faults.reliability import ReliabilityError
from repro.sim.event import AllOf, AnyOf
from repro.runtime.shared_array import SharedArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime
    from repro.runtime.thread import UPCThread

#: One affine segment: (span index, offset in span, start, count).
Segment = Tuple[int, int, int, int]


class _Message:
    """One planned wire message: arena-contiguous segments, one node."""

    __slots__ = ("node", "segments", "nbytes", "arena_end")

    def __init__(self, node: int, segment: Segment, nbytes: int,
                 arena_end: int) -> None:
        self.node = node
        self.segments: List[Segment] = [segment]
        self.nbytes = nbytes
        self.arena_end = arena_end


class _LocalItem:
    """An intra-node segment (local or shared-memory access): never on
    the wire, issued inline in plan order via the ordinary op engine."""

    __slots__ = ("segment",)

    def __init__(self, segment: Segment) -> None:
        self.segment = segment


class BulkEngine:
    """Plans and drives coalesced, windowed bulk transfers."""

    def __init__(self, runtime: "Runtime") -> None:
        self.rt = runtime
        self.max_inflight = runtime.config.bulk_max_inflight
        self.max_coalesce_bytes = runtime.config.bulk_max_coalesce_bytes
        #: Gauge: wire messages currently in flight across all bulk
        #: operations (sampled by :mod:`repro.obs.sampler`).
        self.live_messages = 0

    def _span_begin(self, thread: "UPCThread", name: str,
                    nspans: int) -> int:
        log = self.rt.events
        if not log.enabled:
            return -1
        op_id = log.next_op_id()
        log.emit(self.rt.sim.now, OP_BEGIN, op=op_id, thread=thread.id,
                 node=thread.node.id, name=name, spans=nspans)
        return op_id

    def _plan_event(self, thread: "UPCThread", op_id: int,
                    items: List[object]) -> None:
        log = self.rt.events
        if not log.enabled:
            return
        n_msgs = sum(1 for it in items if isinstance(it, _Message))
        n_segs = sum(len(it.segments) for it in items
                     if isinstance(it, _Message))
        log.emit(self.rt.sim.now, BULK_PLAN, op=op_id, thread=thread.id,
                 node=thread.node.id, messages=n_msgs,
                 wire_segments=n_segs,
                 coalesced=n_segs - n_msgs,
                 local=len(items) - n_msgs)

    def _span_end(self, thread: "UPCThread", op_id: int,
                  nbytes: int) -> None:
        log = self.rt.events
        if log.enabled and op_id >= 0:
            now = self.rt.sim.now
            log.emit(now, BULK_DRAIN, op=op_id, thread=thread.id,
                     node=thread.node.id)
            log.emit(now, OP_END, op=op_id, thread=thread.id,
                     node=thread.node.id, proto="bulk", nbytes=nbytes)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan(self, thread: "UPCThread", array: SharedArray,
              spans: Sequence[Tuple[int, int]]) -> List[object]:
        """Split spans at affinity boundaries, then coalesce.

        Returns the issue order: a list of :class:`_LocalItem` and
        :class:`_Message` entries.  A message sits at the position of
        its *first* segment.  Open messages are keyed by where their
        target arena range *ends*, so a later segment merges into
        whichever message it continues, whatever interleaved in
        between.  That matters for block-cyclic layouts: a node's arena
        packs each thread's blocks contiguously per thread slot, so a
        global-order scan revisits several growing arena ranges in
        round-robin — one open message per slot region, all coalescing
        concurrently.
        """
        from repro.runtime.thread import UPCThread

        m = self.rt.metrics
        ctrl = self.rt.cluster.params.ctrl_bytes
        elem = array.elem_size
        cap = self.max_coalesce_bytes
        home = thread.node.id
        items: List[object] = []
        #: (node, arena end byte) -> still-open message for that range.
        open_msgs: Dict[Tuple[int, int], _Message] = {}
        for span_idx, (index, nelems) in enumerate(spans):
            offset = 0
            for start, count in UPCThread._segments(array, index, nelems):
                seg: Segment = (span_idx, offset, start, count)
                offset += count
                m.bulk_segments += 1
                node = array.owner_node(start)
                if node == home:
                    items.append(_LocalItem(seg))
                    continue
                nbytes = count * elem
                arena_start = array.arena_offset(start)
                msg = open_msgs.pop((node, arena_start), None)
                if msg is not None and msg.nbytes + nbytes <= cap:
                    msg.segments.append(seg)
                    msg.nbytes += nbytes
                    msg.arena_end += nbytes
                    open_msgs[(node, msg.arena_end)] = msg
                    m.bulk_coalesced_segments += 1
                    # Each merged segment avoids one request/reply
                    # control-message pair on the wire.
                    m.bulk_bytes_saved += 2 * ctrl
                else:
                    if msg is not None:
                        # Full message: leave it closed at its range.
                        open_msgs[(node, msg.arena_end)] = msg
                    msg = _Message(node, seg, nbytes, arena_start + nbytes)
                    open_msgs[(node, msg.arena_end)] = msg
                    items.append(msg)
                    m.bulk_messages += 1
        return items

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _drive(self, thread: "UPCThread", items: List[object],
               local_gen, msg_gen, window: Optional[int],
               op_id: int = -1):
        """Issue plan ``items`` under a sliding in-flight window with
        completion-driven refill.

        *Every* item — wire message or intra-node access — waits for a
        free window slot before issuing, so a window of 1 reproduces
        today's strictly serial issue order exactly.  Intra-node items
        then run inline (plain memory operations, not wire traffic);
        messages run as detached simulator processes.  Returns the
        message processes for completion/failure collection.
        """
        sim = self.rt.sim
        m = self.rt.metrics
        log = self.rt.events
        depth = max(1, self.max_inflight if window is None else window)
        inflight: List = []
        procs: List = []
        for item in items:
            while len(inflight) >= depth:
                yield AnyOf(sim, inflight)
                inflight = [p for p in inflight if not p.triggered]
            if isinstance(item, _LocalItem):
                yield from local_gen(item.segment)
                continue
            proc = sim.process(
                msg_gen(item), name=f"bulk[t{thread.id}->n{item.node}]")
            self.live_messages += 1
            proc.add_callback(self._message_done)
            inflight.append(proc)
            procs.append(proc)
            m.bulk_depth.add(len(inflight))
            if log.enabled:
                log.emit(sim.now, BULK_ISSUE, op=op_id,
                         thread=thread.id, node=thread.node.id,
                         dst=item.node, nbytes=item.nbytes,
                         segments=len(item.segments),
                         inflight=len(inflight))
        pending = [p for p in inflight if not p.triggered]
        if pending:
            yield AllOf(sim, pending)
        return procs

    def _message_done(self, _ev) -> None:
        self.live_messages -= 1

    @staticmethod
    def _reap(procs: List, what: str) -> None:
        """Re-raise any transfer failure.  Retry exhaustion inside one
        pipelined message surfaces with the message's identity attached
        (which destination, out of how many messages) — without it a
        failed bulk op reads like a bare transport error."""
        for proc in procs:
            if proc.triggered and not proc.ok and isinstance(
                    proc.exception, ReliabilityError):
                raise ReliabilityError(
                    f"{what}: {proc.name} failed after retries "
                    f"({len(procs)} messages in flight plan): "
                    f"{proc.exception}") from proc.exception
            _ = proc.value  # re-raise any non-reliability failure

    # -- GET ------------------------------------------------------------

    def get_spans(self, thread: "UPCThread", array: SharedArray,
                  spans: Sequence[Tuple[int, int]],
                  window: Optional[int] = None):
        """Fetch every ``(index, nelems)`` span.  Returns one NumPy
        array per input span, in input order."""
        rt = self.rt
        rt.metrics.bulk_transfers += 1
        op_id = self._span_begin(thread, "bulk_get", len(spans))
        items = self._plan(thread, array, spans)
        self._plan_event(thread, op_id, items)
        out = [np.empty(nelems, dtype=array.dtype) for _, nelems in spans]

        def scatter(seg: Segment, values) -> None:
            span_idx, offset, _, count = seg
            out[span_idx][offset:offset + count] = values

        def local_gen(seg: Segment):
            _, _, start, count = seg
            piece = yield from rt.ops.get(thread, array, start, count)
            scatter(seg, piece)

        def msg_gen(msg: _Message):
            segs = [(start, count) for _, _, start, count in msg.segments]
            pieces = yield from rt.ops.bulk_get(
                thread, array, msg.node, segs, msg.nbytes,
                parent_op=op_id)
            for seg, piece in zip(msg.segments, pieces):
                scatter(seg, piece)

        procs = yield from self._drive(thread, items, local_gen, msg_gen,
                                       window, op_id)
        self._reap(procs, "bulk get")
        self._span_end(thread, op_id,
                       sum(nelems for _, nelems in spans)
                       * array.elem_size)
        return out

    # -- PUT ------------------------------------------------------------

    def put_spans(self, thread: "UPCThread", array: SharedArray,
                  puts: Sequence[Tuple[int, np.ndarray]],
                  window: Optional[int] = None):
        """Write every ``(index, values)`` span.  Returns at *local*
        completion of every planned message (the UPC relaxed model);
        remote application is tracked for fence/barrier exactly as the
        scalar PUT path tracks it."""
        rt = self.rt
        rt.metrics.bulk_transfers += 1
        op_id = self._span_begin(thread, "bulk_put", len(puts))
        values = [np.asarray(v, dtype=array.dtype).ravel()
                  for _, v in puts]
        spans = [(index, len(vals))
                 for (index, _), vals in zip(puts, values)]
        items = self._plan(thread, array, spans)
        self._plan_event(thread, op_id, items)

        def seg_values(seg: Segment) -> np.ndarray:
            span_idx, offset, _, count = seg
            return values[span_idx][offset:offset + count]

        def local_gen(seg: Segment):
            _, _, start, count = seg
            yield from rt.ops.put(thread, array, start, seg_values(seg),
                                  count)

        def msg_gen(msg: _Message):
            pairs = [(seg[2], seg_values(seg)) for seg in msg.segments]
            yield from rt.ops.bulk_put(thread, array, msg.node, pairs,
                                       msg.nbytes, parent_op=op_id)

        procs = yield from self._drive(thread, items, local_gen, msg_gen,
                                       window, op_id)
        self._reap(procs, "bulk put")
        self._span_end(thread, op_id,
                       sum(len(v) for v in values) * array.elem_size)
        return None
