"""Distributed shared arrays.

A :class:`SharedArray` is the workhorse shared object: block-cyclic
element distribution over UPC threads (section 2.1), per-node storage
arenas, and a real NumPy data plane so kernels compute real answers.

Storage model (see :mod:`repro.runtime.layout`): every node hosting
threads ``t0..tk`` reserves one contiguous arena of
``(k+1) * thread_chunk_bytes`` bytes in its own address space.  The
arena's base address is what remote nodes cache; the byte offset of
any element within the remote arena is pure layout arithmetic, so a
cache hit enables ``base + offset`` RDMA exactly as in section 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

import numpy as np

from repro.runtime.errors import LayoutError
from repro.runtime.handle import SVDHandle
from repro.runtime.layout import BlockCyclicLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class SharedArray:
    """One distributed shared array (created via runtime allocators)."""

    def __init__(self, runtime: "Runtime", handle: SVDHandle,
                 layout: BlockCyclicLayout, dtype: np.dtype,
                 owner: int | None = None) -> None:
        self.runtime = runtime
        self.handle = handle
        self.layout = layout
        #: When set, *every* element is affine to this thread
        #: (``upc_alloc``-style local allocation).
        self.owner = owner
        self.dtype = np.dtype(dtype)
        if self.dtype.itemsize != layout.elem_size:
            raise LayoutError(
                f"dtype {self.dtype} itemsize {self.dtype.itemsize} != "
                f"layout elem_size {layout.elem_size}")
        #: The logical global array (data plane).
        self.data = np.zeros(layout.nelems, dtype=self.dtype)
        #: node id -> arena base vaddr (only nodes hosting threads).
        self.node_base: Dict[int, int] = {}
        #: node id -> arena size in bytes.
        self.node_bytes: Dict[int, int] = {}
        self._allocate_arenas()
        self.freed = False

    # -- storage ------------------------------------------------------

    def _allocate_arenas(self) -> None:
        rt = self.runtime
        if self.owner is not None:
            node_id = rt.node_of_thread(self.owner)
            size = self.layout.nelems * self.layout.elem_size
            base = rt.cluster.node(node_id).memory.allocate(size, align=64)
            self.node_base[node_id] = base
            self.node_bytes[node_id] = size
            return
        chunk = self.layout.thread_chunk_bytes
        per_node: Dict[int, List[int]] = {}
        for t in range(self.layout.nthreads):
            per_node.setdefault(rt.node_of_thread(t), []).append(t)
        for node_id, threads in per_node.items():
            size = len(threads) * chunk
            base = rt.cluster.node(node_id).memory.allocate(size, align=64)
            self.node_base[node_id] = base
            self.node_bytes[node_id] = size

    def free_arenas(self) -> None:
        for node_id, base in self.node_base.items():
            self.runtime.cluster.node(node_id).memory.free(base)
        self.node_base.clear()
        self.node_bytes.clear()
        self.freed = True

    # -- addressing -----------------------------------------------------

    @property
    def nelems(self) -> int:
        return self.layout.nelems

    @property
    def elem_size(self) -> int:
        return self.layout.elem_size

    @property
    def total_bytes(self) -> int:
        return sum(self.node_bytes.values()) if self.node_bytes else 0

    def owner_thread(self, index: int) -> int:
        if self.owner is not None:
            self.layout._check(index)
            return self.owner
        return self.layout.thread_of(index)

    def owner_node(self, index: int) -> int:
        return self.runtime.node_of_thread(self.owner_thread(index))

    def arena_offset(self, index: int) -> int:
        """Byte offset of element ``index`` within its node's arena.

        Computable on *any* node from directory metadata alone — the
        initiator-side half of the RDMA address computation.
        """
        if self.owner is not None:
            self.layout._check(index)
            return index * self.layout.elem_size
        t = self.owner_thread(index)
        node = self.runtime.node_of_thread(t)
        slot = t - self.runtime.first_thread_of_node(node)
        return (slot * self.layout.thread_chunk_bytes
                + self.layout.local_offset_bytes(index))

    def addr_of(self, index: int) -> Tuple[int, int]:
        """(node id, virtual address) of element ``index``."""
        node = self.owner_node(index)
        return node, self.node_base[node] + self.arena_offset(index)

    def span_bytes(self, nelems: int) -> int:
        return nelems * self.elem_size

    # -- data plane -------------------------------------------------------

    def read(self, index: int, nelems: int = 1) -> np.ndarray:
        """Read a copy of ``[index, index+nelems)`` from the data plane."""
        self._check_span(index, nelems)
        return self.data[index:index + nelems].copy()

    def write(self, index: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype).ravel()
        self._check_span(index, len(values))
        self.data[index:index + len(values)] = values

    def _check_span(self, index: int, nelems: int) -> None:
        if nelems <= 0:
            raise LayoutError(f"nelems must be > 0, got {nelems}")
        if not (0 <= index and index + nelems <= self.nelems):
            raise LayoutError(
                f"span [{index}, {index + nelems}) out of range "
                f"[0, {self.nelems})")

    def __len__(self) -> int:
        return self.nelems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SharedArray {self.handle} n={self.nelems} "
                f"bs={self.layout.blocksize} dtype={self.dtype}>")
