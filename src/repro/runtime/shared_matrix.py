"""Multiblocked (2-D tiled) shared arrays.

Section 2.1 lists "shared arrays (including multi-blocked array [7])"
among the object kinds the XLUPC runtime manages; [7] is Barton et
al., *Multidimensional Blocking Factors in UPC* (LCPC 2007).  A
multiblocked array carves an R x C matrix into ``tile_r x tile_c``
tiles and deals the tiles round-robin (row-major tile order) over the
UPC threads — the layout dense-linear-algebra UPC codes use.

Implementation: the matrix is stored *tile-major* inside an ordinary
:class:`~repro.runtime.shared_array.SharedArray` whose block size is
exactly one tile, so every existing mechanism (SVD control block,
arena addressing, address cache, GET/PUT protocols) applies untouched;
this class adds the (row, col) <-> linear translation, validation, and
a dense view for verification.
"""

from __future__ import annotations

from typing import Tuple, TYPE_CHECKING

import numpy as np

from repro.runtime.errors import LayoutError
from repro.runtime.handle import SVDHandle
from repro.runtime.layout import BlockCyclicLayout
from repro.runtime.shared_array import SharedArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import Runtime


class SharedMatrix(SharedArray):
    """An R x C matrix tiled ``tile_r x tile_c`` over the threads."""

    def __init__(self, runtime: "Runtime", handle: SVDHandle,
                 rows: int, cols: int, tile_r: int, tile_c: int,
                 dtype: np.dtype) -> None:
        if rows <= 0 or cols <= 0:
            raise LayoutError(f"bad matrix shape {rows}x{cols}")
        if tile_r <= 0 or tile_c <= 0:
            raise LayoutError(f"bad tile shape {tile_r}x{tile_c}")
        if rows % tile_r or cols % tile_c:
            raise LayoutError(
                f"matrix {rows}x{cols} not divisible into "
                f"{tile_r}x{tile_c} tiles")
        self.rows = rows
        self.cols = cols
        self.tile_r = tile_r
        self.tile_c = tile_c
        self.tiles_r = rows // tile_r
        self.tiles_c = cols // tile_c
        dt = np.dtype(dtype)
        layout = BlockCyclicLayout(
            nelems=rows * cols, elem_size=dt.itemsize,
            blocksize=tile_r * tile_c, nthreads=runtime.nthreads)
        super().__init__(runtime, handle, layout, dt)

    # -- index translation -------------------------------------------------

    def linear(self, r: int, c: int) -> int:
        """(row, col) -> tile-major linear index in the backing array."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise LayoutError(
                f"({r}, {c}) outside {self.rows}x{self.cols} matrix")
        tile = (r // self.tile_r) * self.tiles_c + (c // self.tile_c)
        within = (r % self.tile_r) * self.tile_c + (c % self.tile_c)
        return tile * self.tile_r * self.tile_c + within

    def rc(self, linear: int) -> Tuple[int, int]:
        """Inverse of :meth:`linear`."""
        tile_elems = self.tile_r * self.tile_c
        tile, within = divmod(linear, tile_elems)
        ti, tj = divmod(tile, self.tiles_c)
        wr, wc = divmod(within, self.tile_c)
        return ti * self.tile_r + wr, tj * self.tile_c + wc

    # -- convenience --------------------------------------------------------

    def owner_of(self, r: int, c: int) -> int:
        """UPC thread owning element (r, c) — round-robin over tiles."""
        return self.owner_thread(self.linear(r, c))

    def tile_of(self, r: int, c: int) -> Tuple[int, int]:
        return r // self.tile_r, c // self.tile_c

    def row_segment(self, r: int, c0: int, n: int) -> Tuple[int, int]:
        """(linear start, count) for matrix row ``r`` columns
        ``[c0, c0+n)`` — valid only while inside one tile."""
        if c0 // self.tile_c != (c0 + n - 1) // self.tile_c:
            raise LayoutError(
                f"row segment [{c0}, {c0 + n}) crosses a tile column "
                "boundary; split at multiples of "
                f"tile_c={self.tile_c}")
        return self.linear(r, c0), n

    def to_dense(self) -> np.ndarray:
        """A dense (rows, cols) copy of the data plane."""
        out = np.empty((self.rows, self.cols), dtype=self.dtype)
        tile_elems = self.tile_r * self.tile_c
        for tile in range(self.tiles_r * self.tiles_c):
            ti, tj = divmod(tile, self.tiles_c)
            chunk = self.data[tile * tile_elems:(tile + 1) * tile_elems]
            out[ti * self.tile_r:(ti + 1) * self.tile_r,
                tj * self.tile_c:(tj + 1) * self.tile_c] = \
                chunk.reshape(self.tile_r, self.tile_c)
        return out

    def from_dense(self, dense: np.ndarray) -> None:
        """Load a dense (rows, cols) array into the data plane
        (untimed input generation)."""
        dense = np.asarray(dense, dtype=self.dtype)
        if dense.shape != (self.rows, self.cols):
            raise LayoutError(
                f"expected shape {(self.rows, self.cols)}, "
                f"got {dense.shape}")
        tile_elems = self.tile_r * self.tile_c
        for tile in range(self.tiles_r * self.tiles_c):
            ti, tj = divmod(tile, self.tiles_c)
            block = dense[ti * self.tile_r:(ti + 1) * self.tile_r,
                          tj * self.tile_c:(tj + 1) * self.tile_c]
            self.data[tile * tile_elems:(tile + 1) * tile_elems] = \
                block.ravel()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SharedMatrix {self.handle} {self.rows}x{self.cols} "
                f"tiles {self.tile_r}x{self.tile_c} dtype={self.dtype}>")
