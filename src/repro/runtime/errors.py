"""Exceptions raised by the XLUPC runtime model."""

from __future__ import annotations


class UPCRuntimeError(RuntimeError):
    """Base class for runtime misuse."""


class SVDError(UPCRuntimeError):
    """Unknown handle, partition misuse, or single-writer violation."""


class LayoutError(UPCRuntimeError):
    """Bad block-cyclic layout parameters or out-of-range index."""


class AffinityError(UPCRuntimeError):
    """An operation was issued against the wrong thread/node."""
