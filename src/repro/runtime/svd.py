"""The Shared Variable Directory (section 2.1).

    "Shared objects are organized into a distributed symbol table
    called the Shared Variable Directory (SVD). ... On a system with n
    UPC threads the SVD consists of n + 1 partitions.  Partition k,
    0 <= k < n holds a list of those variables affine to thread k.
    The last partition (called the ALL partition) is reserved for
    shared variables allocated statically or through collective
    operations."

Each node runs an :class:`SVDReplica`.  Metadata (kind, layout) is
replicated everywhere; **local addresses exist only where the data
does** — "Addresses are only held for the local or ALL partitions"
(Figure 2).  That asymmetry is the whole reason remote accesses need
either a target-side handler (Figure 3a) or the address cache.

Consistency rules implemented as in section 2.1:

1. threads allocate/deallocate independently, updating their own
   partition and *notifying* the others (no locks);
2. each partition has a single writer; the ALL partition is written
   only by collective, already-synchronized operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.runtime.errors import SVDError
from repro.runtime.handle import ALL_PARTITION, SVDHandle

#: Shared-object kinds the XLUPC runtime recognizes (section 2.1).
KIND_ARRAY = "array"
KIND_SCALAR = "scalar"
KIND_LOCK = "lock"
KINDS = (KIND_ARRAY, KIND_SCALAR, KIND_LOCK)


@dataclass(frozen=True)
class ControlBlock:
    """Universal metadata of one shared object (same on every node)."""

    handle: SVDHandle
    kind: str
    #: Total object size in bytes (sum over all nodes).
    total_bytes: int
    #: For arrays: elements / element size / blocksize (layout is
    #: reconstructed by the owner SharedArray; kept here so any node
    #: can do pointer arithmetic from the directory alone).
    nelems: int = 0
    elem_size: int = 0
    blocksize: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SVDError(f"unknown shared-object kind {self.kind!r}")
        if self.total_bytes < 0:
            raise SVDError(f"negative size for {self.handle}")


@dataclass
class SVDEntry:
    """A control block as seen by one replica: universal metadata plus
    this node's local base address (None when nothing is local)."""

    cb: ControlBlock
    local_base: Optional[int] = None
    local_bytes: int = 0
    #: Set False by deallocation; stale lookups then fail loudly.
    live: bool = True


class SVDReplica:
    """One node's copy of the directory."""

    __slots__ = ("node_id", "nthreads", "_entries", "lookups",
                 "notifications_received")

    def __init__(self, node_id: int, nthreads: int) -> None:
        self.node_id = node_id
        self.nthreads = nthreads
        self._entries: Dict[SVDHandle, SVDEntry] = {}
        #: Number of handle->address translations served (the cost the
        #: address cache exists to avoid, section 2.2).
        self.lookups = 0
        self.notifications_received = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, handle: SVDHandle) -> bool:
        e = self._entries.get(handle)
        return e is not None and e.live

    # -- updates ------------------------------------------------------

    def add(self, cb: ControlBlock, local_base: Optional[int] = None,
            local_bytes: int = 0, *, notified: bool = False) -> SVDEntry:
        """Install a control block in this replica.

        ``notified=True`` marks installs driven by another thread's
        allocation notification (rule 1 above) — tracked separately so
        tests can assert the notification traffic happened.
        """
        handle = cb.handle
        if handle.partition >= self.nthreads:
            raise SVDError(
                f"partition {handle.partition} out of range for "
                f"{self.nthreads} threads")
        existing = self._entries.get(handle)
        if existing is not None and existing.live:
            raise SVDError(f"{handle} already present in replica "
                           f"{self.node_id}")
        entry = SVDEntry(cb=cb, local_base=local_base,
                         local_bytes=local_bytes)
        self._entries[handle] = entry
        if notified:
            self.notifications_received += 1
        return entry

    def set_local(self, handle: SVDHandle, local_base: int,
                  local_bytes: int) -> None:
        entry = self._require(handle)
        entry.local_base = local_base
        entry.local_bytes = local_bytes

    def remove(self, handle: SVDHandle) -> SVDEntry:
        """Deallocate: the entry dies but stays for error reporting."""
        entry = self._require(handle)
        entry.live = False
        return entry

    # -- lookups ---------------------------------------------------------

    def _require(self, handle: SVDHandle) -> SVDEntry:
        entry = self._entries.get(handle)
        if entry is None:
            raise SVDError(
                f"replica {self.node_id}: unknown handle {handle}")
        if not entry.live:
            raise SVDError(
                f"replica {self.node_id}: use-after-free of {handle}")
        return entry

    def control_block(self, handle: SVDHandle) -> ControlBlock:
        return self._require(handle).cb

    def lookup_local(self, handle: SVDHandle) -> int:
        """Handle -> local base address *on this node* (the home-node
        translation of section 2.2).  Counts as a directory lookup."""
        entry = self._require(handle)
        self.lookups += 1
        if entry.local_base is None:
            raise SVDError(
                f"replica {self.node_id}: {handle} has no local storage "
                "here — translation only works on the home node")
        return entry.local_base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for e in self._entries.values() if e.live)
        return f"<SVDReplica node={self.node_id} live={live}>"


class HandleAllocator:
    """Issues fresh (partition, index) pairs.

    Thread partitions have a single writer each; the ALL partition is
    advanced only inside collectives.  Keeping the counters in one
    place mirrors the determinism the paper gets from synchronized
    collective allocation.
    """

    __slots__ = ("nthreads", "_next")

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        self._next: Dict[int, int] = {}

    def fresh(self, partition: int) -> SVDHandle:
        if partition != ALL_PARTITION and not 0 <= partition < self.nthreads:
            raise SVDError(f"bad partition {partition} for "
                           f"{self.nthreads} threads")
        idx = self._next.get(partition, 0)
        self._next[partition] = idx + 1
        return SVDHandle(partition=partition, index=idx)
