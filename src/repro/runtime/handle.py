"""SVD handles (section 2.1).

    "Shared objects are referred to by their SVD handles, opaque
    objects that internally index the SVD.  An SVD handle contains the
    partition number in the directory, and the index of the object in
    the partition."

Handles are *universal*: the same handle names the same shared object
on every node, which is what makes them usable as address-cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Partition number of the ALL partition ("reserved for shared
#: variables allocated statically or through collective operations").
#: The paper numbers it n (after the n thread partitions); a sentinel
#: keeps handles independent of the thread count.
ALL_PARTITION = -1


@dataclass(frozen=True, order=True)
class SVDHandle:
    """(partition, index) — the universal name of a shared object."""

    partition: int
    index: int

    def __post_init__(self) -> None:
        if self.partition < ALL_PARTITION:
            raise ValueError(f"bad partition {self.partition}")
        if self.index < 0:
            raise ValueError(f"bad index {self.index}")

    @property
    def is_all(self) -> bool:
        """True for objects in the collectively-managed ALL partition."""
        return self.partition == ALL_PARTITION

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        part = "ALL" if self.is_all else str(self.partition)
        return f"svd[{part}:{self.index}]"
