"""Cluster assembly: nodes + topology + transport, from machine params.

This is the "hardware" a :class:`repro.runtime.runtime.Runtime` runs
on.  Build one with :func:`make_cluster`::

    from repro.network import make_cluster
    from repro.network.params import GM_MARENOSTRUM

    cluster = make_cluster(sim, GM_MARENOSTRUM, nnodes=32)
"""

from __future__ import annotations

from typing import List

from repro.network.node import Node
from repro.network.params import MachineParams, TransportParams
from repro.network.topology import Topology, make_topology
from repro.network.transport import GMTransport, LAPITransport, Transport
from repro.sim.simulator import Simulator


class Cluster:
    """The simulated machine: nodes, a fabric, and its transport."""

    def __init__(self, sim: Simulator, machine: MachineParams,
                 nnodes: int, transport_cls=None) -> None:
        if nnodes < 1:
            raise ValueError(f"cluster needs >= 1 node, got {nnodes}")
        self.sim = sim
        self.machine = machine
        self.params: TransportParams = machine.transport
        self.nodes: List[Node] = [
            Node(sim, i, machine.transport) for i in range(nnodes)
        ]
        self.topology: Topology = make_topology(machine, nnodes)
        cls = transport_cls or _transport_class_for(machine.transport)
        self.transport: Transport = cls(
            sim, machine.transport, self.topology, self.nodes
        )

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def set_link_state(self, src: int, dst: int, up: bool) -> None:
        """Administratively take a directed link out of service (or
        restore it).  Down links route via the transport's detour
        next-hop — the manual version of what the
        ``disable_and_repair`` repair policy does automatically."""
        if not (0 <= src < self.nnodes and 0 <= dst < self.nnodes):
            raise ValueError(f"no such link ({src}, {dst})")
        if up:
            self.transport.links_down.discard((src, dst))
        else:
            self.transport.links_down.add((src, dst))

    def link_up(self, src: int, dst: int) -> bool:
        return (src, dst) not in self.transport.links_down

    def effective_loss(self, src: int, dst: int, t: float) -> float:
        """Per-link effective loss probability at instant ``t``: the
        installed trace's drop probability, 0.0 on a healthy fabric,
        and 0.0 for a detoured (disabled/down) link — its traffic no
        longer crosses the sick segment."""
        faults = self.transport.faults
        if faults is None or faults.trace is None:
            return 0.0
        policy = self.transport.policy
        if policy is not None:
            mode = policy.mode_of(src, dst, t)
            if mode.mode == "disabled" and mode.via is not None:
                return 0.0
        if not self.link_up(src, dst):
            return 0.0
        return faults.trace.drop_prob(src, dst, t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Cluster {self.machine.name} nodes={self.nnodes} "
                f"transport={self.params.name}>")


def _transport_class_for(params: TransportParams):
    return {"gm": GMTransport, "lapi": LAPITransport}.get(
        params.name, Transport
    )


def make_cluster(sim: Simulator, machine: MachineParams,
                 nnodes: int) -> Cluster:
    """Convenience constructor mirroring the docs examples."""
    return Cluster(sim, machine, nnodes)
