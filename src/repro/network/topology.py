"""Interconnect topologies.

Two fabrics from the paper:

* **Myrinet 3-level crossbar** (MareNostrum, section 4.1): "resulting
  in 3 different route lengths (1 hop, when two nodes are connected to
  the same crossbar aka. linecard, and 3 hops or 5 hops depending on
  the number of intervening linecards)".
* **IBM High-Performance Switch** (Power5 cluster, section 4.2):
  modelled as a flat low-latency fabric.

A topology maps a node pair to a one-way latency; serialization and
NIC effects live elsewhere (:mod:`repro.network.transport`).
"""

from __future__ import annotations

from repro.network.params import MachineParams


class Topology:
    """Base: fixed one-way latency between distinct nodes."""

    def __init__(self, nnodes: int, base_us: float, per_hop_us: float) -> None:
        if nnodes < 1:
            raise ValueError(f"need at least one node, got {nnodes}")
        self.nnodes = nnodes
        self.base_us = base_us
        self.per_hop_us = per_hop_us

    def hops(self, src: int, dst: int) -> int:
        """Number of switch hops between two nodes."""
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1

    def latency(self, src: int, dst: int) -> float:
        """One-way wire latency in µs."""
        if src == dst:
            return 0.0
        return self.base_us + self.hops(src, dst) * self.per_hop_us

    def _check(self, node: int) -> None:
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} out of range [0, {self.nnodes})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} nnodes={self.nnodes}>"


class MyrinetClos(Topology):
    """MareNostrum's 3-level crossbar: 1 / 3 / 5 hop routes.

    Nodes are packed ``nodes_per_linecard`` to a linecard and
    ``linecards_per_group`` linecards to a mid-stage group:

    * same linecard  → 1 hop;
    * same group     → 3 hops (up to the group crossbar and back);
    * across groups  → 5 hops (through the top stage).
    """

    def __init__(self, nnodes: int, base_us: float, per_hop_us: float,
                 nodes_per_linecard: int = 16,
                 linecards_per_group: int = 8) -> None:
        super().__init__(nnodes, base_us, per_hop_us)
        if nodes_per_linecard < 1 or linecards_per_group < 1:
            raise ValueError("linecard/group sizes must be >= 1")
        self.nodes_per_linecard = nodes_per_linecard
        self.linecards_per_group = linecards_per_group

    def linecard(self, node: int) -> int:
        return node // self.nodes_per_linecard

    def group(self, node: int) -> int:
        return self.linecard(node) // self.linecards_per_group

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        if self.linecard(src) == self.linecard(dst):
            return 1
        if self.group(src) == self.group(dst):
            return 3
        return 5


class HPSSwitch(Topology):
    """IBM High-Performance Switch: uniform 2-hop fabric."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 2


class FlatEthernet(Topology):
    """Commodity switched Ethernet: uniform single-switch fabric (the
    TCP/IP sockets transport's usual home)."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1


class Torus3D(Topology):
    """BlueGene/L-style 3-D torus.

    Nodes are folded into the most cube-ish ``X x Y x Z`` box holding
    ``nnodes``; hop count is the wraparound Manhattan distance — the
    metric BG/L's adaptive-routed torus approximates (Almási et al.,
    "Design and implementation of message-passing services for the
    BlueGene/L supercomputer", cited as [1]).
    """

    def __init__(self, nnodes: int, base_us: float, per_hop_us: float) -> None:
        super().__init__(nnodes, base_us, per_hop_us)
        self.dims = self._fold(nnodes)

    @staticmethod
    def _fold(n: int) -> tuple:
        """Most-cubic X >= Y >= Z with X*Y*Z >= n."""
        best = (n, 1, 1)
        x = 1
        while x * x * x <= n:
            if n % x == 0:
                rest = n // x
                y = x
                while y * y <= rest:
                    if rest % y == 0:
                        cand = tuple(sorted((x, y, rest // y),
                                            reverse=True))
                        if max(cand) < max(best):
                            best = cand
                    y += 1
            x += 1
        return best

    def coords(self, node: int) -> tuple:
        x_dim, y_dim, z_dim = self.dims
        z, rem = divmod(node, x_dim * y_dim)
        y, x = divmod(rem, x_dim)
        return x, y, z

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        total = 0
        for (a, b, dim) in zip(self.coords(src), self.coords(dst),
                               self.dims):
            d = abs(a - b)
            total += min(d, dim - d)    # wraparound link
        return max(1, total)


def make_topology(machine: MachineParams, nnodes: int) -> Topology:
    """Build the topology named by ``machine.topology_kind``."""
    kind = machine.topology_kind
    if kind == "myrinet-clos":
        return MyrinetClos(
            nnodes, machine.wire_base_us, machine.wire_per_hop_us,
            nodes_per_linecard=machine.nodes_per_linecard,
            linecards_per_group=machine.linecards_per_group,
        )
    if kind == "hps":
        return HPSSwitch(nnodes, machine.wire_base_us, machine.wire_per_hop_us)
    if kind == "flat":
        return FlatEthernet(nnodes, machine.wire_base_us,
                            machine.wire_per_hop_us)
    if kind == "torus3d":
        return Torus3D(nnodes, machine.wire_base_us,
                       machine.wire_per_hop_us)
    raise ValueError(f"unknown topology kind {kind!r}")
