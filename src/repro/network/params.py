"""Cost-model parameter tables for the two evaluation platforms.

Every field is a knob of a LogGP-flavoured model (Culler et al.) with
protocol extensions: per-message CPU overheads (``o``), NIC injection
gap (``g``), per-byte gap (``G`` = 1/bandwidth), plus the costs the
paper's protocols introduce (SVD lookup, AM handler dispatch, copies,
registration, RDMA setup).

The two concrete instances are calibrated against the paper's
published observations rather than vendor datasheets:

* network round trips "in the 4–8 microsecond range" (section 4.3);
* full XLUPC GET round trips of ~10–20 µs for tiny messages (Fig 7);
* HPS rated bandwidth "8x that of Myrinet" (section 4.3);
* GM small-GET gain ≈ 30 %, LAPI ≈ 16 % (Fig 6 left);
* LAPI PUT regression "up to 200%" caused by "the IBM switching
  hardware, which offers excellent throughput in RDMA mode, at the
  cost of higher latency" (section 4.3);
* LAPI registered-handle cap 32 MB (3.2), GM DMAable cap 1 GB (3.3).

All times are microseconds; sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.memory.pinning import PinCostModel
from repro.util.units import GB, KB, MB, bytes_per_usec

#: Progress-engine flavours (section 4.6 vs 4.7): GM makes progress
#: only when some thread on the node is inside the runtime (polling);
#: LAPI runs header handlers promptly (interrupt/comm-thread driven).
POLLING = "polling"
INTERRUPT = "interrupt"


@dataclass(frozen=True)
class TransportParams:
    """Knobs of one transport's cost model."""

    name: str

    # --- CPU overheads -------------------------------------------------
    #: CPU cost to hand a message to the messaging library (LogP ``o``).
    o_send_us: float
    #: CPU cost to take delivery of a message.
    o_recv_us: float
    #: XLUPC runtime software overhead per remote op (handle checks,
    #: pointer-to-shared arithmetic) — paid on *both* paths.
    o_sw_us: float
    #: Base cost of running an AM header handler (dispatch, not SVD).
    handler_cpu_us: float
    #: SVD handle -> local address translation on the home node
    #: (section 2.2: "translating SVD handles to memory addresses only
    #: at the target node" is the price of the design).
    svd_lookup_us: float

    # --- NIC / wire -----------------------------------------------------
    #: Per-message NIC injection gap (LogGP ``g``).
    nic_gap_us: float
    #: Per-byte serialization time (LogGP ``G`` = 1/bandwidth).
    byte_time_us: float
    #: Per-byte memcpy cost for eager bounce-buffer copies.
    memcpy_byte_us: float
    #: Size of a control message (RTS, CTS, ACK headers).
    ctrl_bytes: int
    #: Eager messages are cut into wire fragments of this size, each
    #: paying the NIC gap again (RDMA segments in hardware instead).
    frag_bytes: int

    # --- protocol thresholds ---------------------------------------------
    #: Largest message sent through the copying eager protocol; above
    #: this the rendezvous (registration-embedded) protocol runs
    #: (section 3.3: "multiple transfer protocols depending on size").
    eager_max_bytes: int
    #: Extra CPU cost of orchestrating a rendezvous handshake.
    rendezvous_cpu_us: float

    # --- RDMA ------------------------------------------------------------
    #: Initiator CPU cost to build + post an RDMA descriptor.
    rdma_init_us: float
    #: Extra one-way latency of RDMA-mode GET on this fabric.
    rdma_get_premium_us: float
    #: Extra one-way latency of RDMA-mode PUT on this fabric.
    rdma_put_premium_us: float
    #: CPU cost to reap an RDMA completion.
    rdma_completion_us: float
    #: True when a PUT only completes locally after the fabric-level
    #: ack returns (HPS behaviour — the root of Fig 6's -200 %);
    #: False when local completion happens at injection (GM).
    rdma_put_waits_remote: bool

    # --- node-local accesses ------------------------------------------------
    #: Cost of a shared access that turns out to be affine to the
    #: calling thread (handle deref + load/store).
    local_access_us: float = 0.08
    #: Cost of a shared access to another UPC thread on the *same*
    #: node — Pthreads share memory directly, no network (section 5).
    shm_access_us: float = 0.35

    #: Whether the fabric exposes one-sided RDMA at all.  TCP/IP
    #: sockets (one of XLUPC's transports, section 2) do not: there
    #: the address cache has nothing to accelerate and the runtime
    #: never takes the fast path.
    supports_rdma: bool = True
    #: Receive-buffer credits per destination node for *eager payload*
    #: messages (GM posts a bounded number of receive buffers; a
    #: sender without credit stalls until an earlier message is
    #: consumed).  RDMA never consumes credits — one more way the
    #: fast path sidesteps the target.
    eager_credits: int = 64

    # --- progress --------------------------------------------------------
    progress: str = POLLING
    #: Handler dispatch cost when a poller is already inside the runtime.
    dispatch_us: float = 0.5
    #: Interrupt pipeline latency (interrupt-mode transports).
    interrupt_us: float = 0.7
    #: How many AM handlers may execute concurrently on one node.
    #: GM serializes everything behind a single port lock (1 — the
    #: "four threads competing for the same network device" effect);
    #: LAPI runs handlers on several of the Power5's cores.
    handler_concurrency: int = 1

    # --- registration ------------------------------------------------------
    pin_cost: PinCostModel = field(default_factory=PinCostModel)
    #: Per-handle registration cap (LAPI: 32 MB); None = unlimited.
    max_pin_region_bytes: Optional[int] = None
    #: Total DMAable memory cap (GM: 1 GB); None = unlimited.
    max_pin_total_bytes: Optional[int] = None
    #: Pin-down cache capacity for rendezvous registrations.
    reg_cache_bytes: int = 256 * MB

    # --- address cache client costs (charged by repro.core) ----------------
    #: Hash lookup in the remote address cache.
    cache_lookup_us: float = 0.10
    #: Insert/update of a piggybacked address.
    cache_insert_us: float = 0.20
    #: Extra bytes carried on a reply when the address is piggybacked.
    piggyback_bytes: int = 16

    def __post_init__(self) -> None:
        for field_name in ("o_send_us", "o_recv_us", "o_sw_us",
                           "handler_cpu_us", "svd_lookup_us",
                           "nic_gap_us", "memcpy_byte_us",
                           "rendezvous_cpu_us", "rdma_init_us",
                           "rdma_get_premium_us", "rdma_put_premium_us",
                           "rdma_completion_us", "dispatch_us",
                           "interrupt_us", "cache_lookup_us",
                           "cache_insert_us"):
            if getattr(self, field_name) < 0:
                raise ValueError(
                    f"{self.name}: {field_name} must be >= 0")
        if self.byte_time_us <= 0:
            raise ValueError(f"{self.name}: byte_time_us must be > 0")
        if self.ctrl_bytes < 1 or self.frag_bytes < 1:
            raise ValueError(f"{self.name}: message sizing must be >= 1")
        if self.eager_max_bytes < 0:
            raise ValueError(f"{self.name}: eager_max_bytes must be >= 0")
        if self.eager_credits < 1:
            raise ValueError(f"{self.name}: eager_credits must be >= 1")
        if self.handler_concurrency < 1:
            raise ValueError(
                f"{self.name}: handler_concurrency must be >= 1")
        if self.progress not in (POLLING, INTERRUPT):
            raise ValueError(
                f"{self.name}: unknown progress kind {self.progress!r}")

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on this fabric."""
        return nbytes * self.byte_time_us

    def copy_time(self, nbytes: int) -> float:
        """One memcpy of ``nbytes``."""
        return nbytes * self.memcpy_byte_us

    def fragments(self, nbytes: int) -> int:
        """Number of wire fragments for an eager transfer."""
        return max(1, -(-nbytes // self.frag_bytes))

    def with_overrides(self, **kw) -> "TransportParams":
        """A copy with some fields replaced (for ablations)."""
        return replace(self, **kw)


@dataclass(frozen=True)
class MachineParams:
    """A platform = transport params + topology shape + node shape."""

    name: str
    transport: TransportParams
    #: UPC threads co-located per node in hybrid mode (paper: 4 per
    #: MareNostrum blade; up to 16 per Power5 node).
    default_threads_per_node: int
    #: Topology kind consumed by :mod:`repro.network.topology`.
    topology_kind: str
    #: Fixed per-traversal wire latency (NIC + first switch stage).
    wire_base_us: float
    #: Additional latency per switch hop.
    wire_per_hop_us: float
    #: Myrinet crossbar shape (ignored by flat topologies).
    nodes_per_linecard: int = 16
    linecards_per_group: int = 8
    #: Platform default for using RDMA on cache-hit PUTs.  The paper
    #: *disabled* it on LAPI after measuring the Figure 6 regression:
    #: "Following these results, we disabled the address cache for the
    #: PUT operations in LAPI" (section 4.3).
    use_rdma_put_default: bool = True
    #: BlueGene/L has a dedicated combine/broadcast tree network; a
    #: full-machine barrier costs ~1.5 us regardless of node count
    #: (Almási et al. [1]).  0.0 = no such network (use the
    #: dissemination barrier over the data fabric).
    collective_network_barrier_us: float = 0.0


# ---------------------------------------------------------------------------
# MareNostrum: JS21 blades, Myrinet/GM, polling progress (sections 3.3, 4.1).
# ---------------------------------------------------------------------------

GM_TRANSPORT = TransportParams(
    name="gm",
    o_send_us=2.6,
    o_recv_us=2.2,
    o_sw_us=2.4,
    handler_cpu_us=1.0,
    svd_lookup_us=2.0,
    nic_gap_us=0.3,
    byte_time_us=1.0 / bytes_per_usec(250.0),    # ~250 MB/s Myrinet
    memcpy_byte_us=1.0 / bytes_per_usec(1000.0), # ~1 GB/s PPC970 memcpy
    ctrl_bytes=64,
    frag_bytes=4096,
    eager_max_bytes=16 * KB,
    rendezvous_cpu_us=1.5,
    rdma_init_us=1.2,
    rdma_get_premium_us=3.5,   # gm_get on GM is noticeably slower than
    rdma_put_premium_us=0.3,   # gm_directed_send (one-sided read RTT)
    rdma_completion_us=1.2,
    rdma_put_waits_remote=False,
    progress=POLLING,
    dispatch_us=1.0,
    max_pin_region_bytes=None,
    max_pin_total_bytes=1 * GB,          # GM DMAable limit, section 3.3
    reg_cache_bytes=256 * MB,
)

GM_MARENOSTRUM = MachineParams(
    name="marenostrum-gm",
    transport=GM_TRANSPORT,
    default_threads_per_node=4,          # two dual-core PPC 970MP
    topology_kind="myrinet-clos",
    wire_base_us=1.6,                    # NIC traversal each way
    wire_per_hop_us=0.4,                 # 1/3/5-hop crossbar routes
    nodes_per_linecard=16,
    linecards_per_group=8,
)

# ---------------------------------------------------------------------------
# Power5 cluster: HPS switch, LAPI, interrupt progress (sections 3.2, 4.2).
# ---------------------------------------------------------------------------

LAPI_TRANSPORT = TransportParams(
    name="lapi",
    o_send_us=1.4,
    o_recv_us=1.2,
    o_sw_us=1.0,
    handler_cpu_us=0.9,
    svd_lookup_us=1.3,
    nic_gap_us=0.2,
    byte_time_us=1.0 / bytes_per_usec(2000.0),   # HPS ~8x Myrinet
    memcpy_byte_us=1.0 / bytes_per_usec(6000.0), # Power5 memcpy
    ctrl_bytes=64,
    frag_bytes=16 * KB,
    eager_max_bytes=1 * MB,
    rendezvous_cpu_us=1.2,
    rdma_init_us=1.0,
    rdma_get_premium_us=3.4,   # "excellent throughput ... at the cost of
    rdma_put_premium_us=2.8,   #  higher latency" (section 4.3)
    rdma_completion_us=0.5,
    rdma_put_waits_remote=True,
    progress=INTERRUPT,
    interrupt_us=0.7,
    handler_concurrency=4,
    max_pin_region_bytes=32 * MB,        # LAPI handle cap, section 3.2
    max_pin_total_bytes=None,
    reg_cache_bytes=512 * MB,
)

LAPI_POWER5 = MachineParams(
    name="power5-lapi",
    transport=LAPI_TRANSPORT,
    default_threads_per_node=16,         # 8 two-way SMT Power5 cores
    topology_kind="hps",
    wire_base_us=1.5,
    wire_per_hop_us=0.1,
    use_rdma_put_default=False,          # section 4.3's final config
)

# ---------------------------------------------------------------------------
# TCP/IP sockets transport (section 2: one of XLUPC's implemented
# messaging methods).  A two-sided commodity path with kernel-crossing
# overheads and NO one-sided operations — the negative control: the
# address cache cannot help here because there is no RDMA to unlock.
# ---------------------------------------------------------------------------

TCP_TRANSPORT = TransportParams(
    name="tcp",
    o_send_us=6.0,            # syscall + TCP/IP stack per send
    o_recv_us=6.0,
    o_sw_us=2.4,
    handler_cpu_us=1.5,
    svd_lookup_us=2.0,
    nic_gap_us=0.5,
    byte_time_us=1.0 / bytes_per_usec(110.0),    # ~gigabit ethernet
    memcpy_byte_us=1.0 / bytes_per_usec(1000.0),
    ctrl_bytes=64,
    frag_bytes=1448,          # MSS-sized segments
    eager_max_bytes=64 * KB,
    rendezvous_cpu_us=3.0,
    rdma_init_us=0.0,
    rdma_get_premium_us=0.0,
    rdma_put_premium_us=0.0,
    rdma_completion_us=0.0,
    rdma_put_waits_remote=False,
    supports_rdma=False,
    progress=INTERRUPT,       # the kernel delivers regardless of polls
    interrupt_us=4.0,         # softirq + wakeup
    reg_cache_bytes=256 * MB,
)

TCP_CLUSTER = MachineParams(
    name="tcp-cluster",
    transport=TCP_TRANSPORT,
    default_threads_per_node=4,
    topology_kind="flat",
    wire_base_us=18.0,        # switched-ethernet one-way latency
    wire_per_hop_us=2.0,
    use_rdma_put_default=False,
)

# ---------------------------------------------------------------------------
# BlueGene/L messaging framework (section 2, citing [1]): the machine
# on which the SVD design "has been demonstrated to scale to hundreds
# of thousands of threads" [8].  3-D torus, very low per-hop latency,
# lean cores, remote-DMA-capable torus packets.
# ---------------------------------------------------------------------------

BGL_TRANSPORT = TransportParams(
    name="bgl",
    o_send_us=1.0,            # lean 700 MHz cores, simple kernel
    o_recv_us=1.0,
    o_sw_us=1.6,
    handler_cpu_us=0.9,
    svd_lookup_us=1.8,
    nic_gap_us=0.1,
    byte_time_us=1.0 / bytes_per_usec(150.0),    # per-link payload b/w
    memcpy_byte_us=1.0 / bytes_per_usec(700.0),
    ctrl_bytes=32,
    frag_bytes=240,           # torus packets are 256 B with headers
    eager_max_bytes=8 * KB,
    rendezvous_cpu_us=1.0,
    rdma_init_us=0.8,
    rdma_get_premium_us=0.6,
    rdma_put_premium_us=0.4,
    rdma_completion_us=0.4,
    rdma_put_waits_remote=False,
    progress=POLLING,         # CNK polls the torus FIFOs
    dispatch_us=0.4,
    handler_concurrency=1,
    reg_cache_bytes=128 * MB,
)

BGL_TORUS = MachineParams(
    name="bluegene-l",
    transport=BGL_TRANSPORT,
    default_threads_per_node=2,   # coprocessor/virtual-node modes
    topology_kind="torus3d",
    wire_base_us=0.6,
    wire_per_hop_us=0.1,          # ~100 ns per torus hop
    collective_network_barrier_us=1.5,  # the dedicated tree network
)

#: Registry used by CLIs/benchmarks to select a platform by name.
MACHINES = {
    GM_MARENOSTRUM.name: GM_MARENOSTRUM,
    LAPI_POWER5.name: LAPI_POWER5,
    TCP_CLUSTER.name: TCP_CLUSTER,
    BGL_TORUS.name: BGL_TORUS,
    "gm": GM_MARENOSTRUM,
    "lapi": LAPI_POWER5,
    "tcp": TCP_CLUSTER,
    "bgl": BGL_TORUS,
}
