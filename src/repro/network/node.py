"""A cluster node: NIC, memory, registration state, progress engine.

The node owns the *hardware-ish* per-host state.  The PGAS runtime
attaches its own per-node structures (SVD replica, remote address
cache, pinned address table) on top — see
:class:`repro.runtime.runtime.Runtime`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.memory.address_space import AddressSpace
from repro.memory.pinning import PinManager
from repro.memory.registration_cache import RegistrationCache
from repro.network.params import TransportParams
from repro.sim.resource import Resource
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.progress import ProgressEngine


class Node:
    """One host of the simulated cluster."""

    def __init__(self, sim: Simulator, node_id: int,
                 params: TransportParams) -> None:
        self.sim = sim
        self.id = node_id
        self.params = params
        #: The shared network device.  Capacity 1: "four threads
        #: competing for the same network device" (section 4.6) is the
        #: amplification mechanism of the hybrid results.
        self.nic = Resource(sim, capacity=1, name=f"nic[{node_id}]")
        #: Serializes AM header handlers on the host CPU(s).  GM's
        #: single port lock gives capacity 1; LAPI services several
        #: handlers concurrently (params.handler_concurrency).
        self.handler_cpu = Resource(sim, capacity=params.handler_concurrency,
                                    name=f"handler_cpu[{node_id}]")
        self.memory = AddressSpace(node_id)
        self.pins = PinManager(
            node_id,
            cost_model=params.pin_cost,
            max_region_bytes=params.max_pin_region_bytes,
            max_total_bytes=params.max_pin_total_bytes,
        )
        self.reg_cache = RegistrationCache(self.pins, params.reg_cache_bytes)
        #: Installed by the transport at construction time.
        self.progress: Optional["ProgressEngine"] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.id}>"
