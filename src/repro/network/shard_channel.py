"""Inter-shard channel transport.

Shard workers and the coordinator exchange :class:`ShardReport` /
:class:`GrainPlan` objects over *channels*.  Two implementations with
one interface:

* :class:`PipeChannel` — a ``multiprocessing.Pipe`` connection for the
  process-per-shard backend.  We pickle explicitly and move raw bytes
  (``send_bytes``/``recv_bytes``) instead of using ``Connection.send``
  so the transport can account exactly what crossed the process
  boundary;
* :class:`LoopbackChannel` — an in-memory queue pair for the
  in-process backend, which runs shards round-robin in one interpreter
  (the configuration the determinism tests diff against the mp
  backend).  It pays the same pickle round-trip so that (a) byte
  accounting matches the pipe transport and (b) anything that would
  fail to cross a real process boundary fails loudly in-process too.

Virtual-time results never depend on which channel carried a message:
delivery *order* is fixed by :attr:`ShardMessage.order_key` sorting in
the coordinator, and delivery *time* is the message's arrival stamp.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import Any, Tuple

_PROTO = pickle.HIGHEST_PROTOCOL


class ChannelClosed(EOFError):
    """The peer went away mid-conversation."""


class _ChannelStats:
    __slots__ = ("tx_msgs", "tx_bytes", "rx_msgs", "rx_bytes")

    def __init__(self) -> None:
        self.tx_msgs = 0
        self.tx_bytes = 0
        self.rx_msgs = 0
        self.rx_bytes = 0


class PipeChannel:
    """One end of a ``multiprocessing.Pipe`` with byte accounting."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self.stats = _ChannelStats()

    def send(self, obj: Any) -> None:
        blob = pickle.dumps(obj, protocol=_PROTO)
        self._conn.send_bytes(blob)
        self.stats.tx_msgs += 1
        self.stats.tx_bytes += len(blob)

    def recv(self) -> Any:
        try:
            blob = self._conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ChannelClosed(str(exc)) from exc
        self.stats.rx_msgs += 1
        self.stats.rx_bytes += len(blob)
        return pickle.loads(blob)

    def poll(self, timeout: float = 0.0) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()


class LoopbackChannel:
    """In-memory channel end; see :func:`loopback_pair`."""

    def __init__(self, inbox: deque, outbox: deque) -> None:
        self._inbox = inbox
        self._outbox = outbox
        self.stats = _ChannelStats()

    def send(self, obj: Any) -> None:
        blob = pickle.dumps(obj, protocol=_PROTO)
        self._outbox.append(blob)
        self.stats.tx_msgs += 1
        self.stats.tx_bytes += len(blob)

    def recv(self) -> Any:
        if not self._inbox:
            raise ChannelClosed("loopback inbox empty")
        blob = self._inbox.popleft()
        self.stats.rx_msgs += 1
        self.stats.rx_bytes += len(blob)
        return pickle.loads(blob)

    def poll(self, timeout: float = 0.0) -> bool:
        return bool(self._inbox)

    def close(self) -> None:
        self._inbox.clear()
        self._outbox.clear()


def pipe_pair() -> Tuple[PipeChannel, PipeChannel]:
    """A connected (parent end, child end) pipe channel pair."""
    import multiprocessing as mp
    a, b = mp.Pipe(duplex=True)
    return PipeChannel(a), PipeChannel(b)


def loopback_pair() -> Tuple[LoopbackChannel, LoopbackChannel]:
    """A connected in-memory channel pair with pipe-identical
    semantics (including the pickle round-trip)."""
    q_ab: deque = deque()
    q_ba: deque = deque()
    return (LoopbackChannel(inbox=q_ba, outbox=q_ab),
            LoopbackChannel(inbox=q_ab, outbox=q_ba))
