"""Wire-message taxonomy and the optional transport message log.

Every protocol step the transport executes corresponds to a concrete
message on the real wire (Figures 3 and 5): the request-to-send, the
data reply, rendezvous control traffic, RDMA descriptors and DMA
responses, and one-way notifications.  When
``transport.log_messages`` is enabled, each of them is recorded as a
:class:`WireMessage` — a tcpdump for the simulated fabric, used by
tests to assert protocol shapes and by humans to debug them.

Logging is off by default: at 10^5-message scales the log would cost
more than the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

#: Message kinds, following the protocol diagrams.
AM_REQUEST = "am-request"        # Figure 3a RTS / Figure 5 Amsend
AM_REPLY = "am-reply"            # data + piggybacked address
RTS = "rendezvous-rts"
CTS = "rendezvous-cts"
RDV_DATA = "rendezvous-data"
PUT_DATA = "put-data"
RDMA_READ = "rdma-read"          # descriptor to the target NIC
RDMA_READ_RESP = "rdma-read-resp"
RDMA_WRITE = "rdma-write"
ONEWAY = "oneway"                # SVD notifications etc.

KINDS = (AM_REQUEST, AM_REPLY, RTS, CTS, RDV_DATA, PUT_DATA,
         RDMA_READ, RDMA_READ_RESP, RDMA_WRITE, ONEWAY)


@dataclass(frozen=True)
class WireMessage:
    """One message observed on the fabric."""

    kind: str
    src: int
    dst: int
    nbytes: int
    #: Virtual time the message was handed to the source NIC.
    t_inject: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown message kind {self.kind!r}")
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")


class MessageLog:
    """Bounded in-memory capture of wire messages."""

    __slots__ = ("records", "max_records", "dropped")

    def __init__(self, max_records: Optional[int] = 100_000) -> None:
        self.records: List[WireMessage] = []
        self.max_records = max_records
        self.dropped = 0

    def add(self, msg: WireMessage) -> None:
        if (self.max_records is not None
                and len(self.records) >= self.max_records):
            self.dropped += 1
            return
        self.records.append(msg)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WireMessage]:
        return iter(self.records)

    def by_kind(self, kind: str) -> List[WireMessage]:
        return [m for m in self.records if m.kind == kind]

    def between(self, src: int, dst: int) -> List[WireMessage]:
        return [m for m in self.records
                if m.src == src and m.dst == dst]

    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.records)

    def summary(self) -> str:
        """Counts and bytes per kind (for debugging output)."""
        counts = {}
        sizes = {}
        for m in self.records:
            counts[m.kind] = counts.get(m.kind, 0) + 1
            sizes[m.kind] = sizes.get(m.kind, 0) + m.nbytes
        lines = [f"{'kind':>18} {'count':>8} {'bytes':>12}"]
        for kind in sorted(counts):
            lines.append(f"{kind:>18} {counts[kind]:>8} {sizes[kind]:>12}")
        if self.dropped:
            lines.append(f"(+{self.dropped} dropped)")
        return "\n".join(lines)
