"""Topology -> shard partitioning and lookahead derivation.

The sharded PDES core (:mod:`repro.sim.shard`) needs two things from
the network layer:

* a **partition**: which nodes each shard owns.  We cut the node range
  into contiguous blocks because every fabric we model packs nearby
  node indices close in the topology (same Myrinet linecard, adjacent
  torus coordinates), so contiguous blocks maximize *intra*-shard
  traffic and push the minimum *cross*-shard latency — the lookahead —
  as high as the topology allows;
* a **lookahead matrix** ``L[a][b]``: a certified lower bound on the
  one-way wire latency of any message a node in shard ``a`` can send a
  node in shard ``b``.  Conservative sync is only correct if every
  cross-shard message honours ``latency >= L``, so we compute it as the
  exact minimum of :meth:`Topology.latency` over cross-shard node
  pairs, not a heuristic.

On MareNostrum's 3-level crossbar (16 nodes/linecard), splitting 256
nodes 4 ways yields 64-node shards spanning 4 linecards each, so the
cheapest cross-shard route is 3 hops: ``L = 1.6 + 3*0.4 = 2.8 µs`` —
comfortably above the sub-µs event spacing inside a shard, which is
what makes the window advance profitable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.network.params import MachineParams
from repro.network.topology import (FlatEthernet, HPSSwitch, MyrinetClos,
                                    Topology, make_topology)


@dataclass(frozen=True)
class NodePartition:
    """Contiguous block partition of ``nnodes`` into ``nshards``.

    Shard ``i`` owns ``[bounds[i], bounds[i+1])``.  The split is the
    balanced one (sizes differ by at most 1, larger blocks first) so a
    given ``(nnodes, nshards)`` always produces the same layout — part
    of the determinism contract.
    """

    nnodes: int
    nshards: int
    bounds: Tuple[int, ...]

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(self.bounds[i + 1] - self.bounds[i]
                     for i in range(self.nshards))

    def shard_of(self, node: int) -> int:
        """Owning shard of ``node`` (O(1) — no bisect needed for the
        balanced split)."""
        if not 0 <= node < self.nnodes:
            raise ValueError(
                f"node {node} out of range [0, {self.nnodes})")
        big = self.nnodes % self.nshards          # shards with size+1
        size = self.nnodes // self.nshards
        cut = big * (size + 1)
        if node < cut:
            return node // (size + 1)
        return big + (node - cut) // size

    def range_of(self, shard: int) -> Tuple[int, int]:
        """``[lo, hi)`` node range owned by ``shard``."""
        if not 0 <= shard < self.nshards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.nshards})")
        return self.bounds[shard], self.bounds[shard + 1]

    def nodes_of(self, shard: int) -> range:
        lo, hi = self.range_of(shard)
        return range(lo, hi)


def partition_nodes(nnodes: int, nshards: int) -> NodePartition:
    """Balanced contiguous partition of ``nnodes`` into ``nshards``."""
    if nnodes < 1:
        raise ValueError(f"need at least one node, got {nnodes}")
    if not 1 <= nshards <= nnodes:
        raise ValueError(
            f"nshards must be in [1, {nnodes}], got {nshards}")
    size, big = divmod(nnodes, nshards)
    bounds = [0]
    for i in range(nshards):
        bounds.append(bounds[-1] + size + (1 if i < big else 0))
    return NodePartition(nnodes=nnodes, nshards=nshards,
                         bounds=tuple(bounds))


def _intervals_touch(lo_a: int, hi_a: int, lo_b: int, hi_b: int) -> bool:
    return hi_a >= lo_b and hi_b >= lo_a


def _min_cross_latency(topo: Topology, a: range, b: range) -> float:
    """Exact ``min latency(src in a, dst in b)`` for disjoint blocks.

    The structured fabrics admit closed forms (a pairwise scan at 4096
    nodes would cost millions of ``latency`` calls per shard pair):

    * uniform fabrics (HPS, flat Ethernet, base) — any cross pair;
    * Myrinet Clos — hop count depends only on whether the blocks'
      linecard / group index intervals intersect, and contiguous node
      blocks map to contiguous linecard and group intervals.

    Anything else (the torus's wraparound breaks contiguity) falls back
    to the exact scan with a 1-hop-floor early exit.
    """
    if isinstance(topo, MyrinetClos):
        lc = (topo.linecard(a[0]), topo.linecard(a[-1]),
              topo.linecard(b[0]), topo.linecard(b[-1]))
        if _intervals_touch(*lc):
            hops = 1
        else:
            gr = (topo.group(a[0]), topo.group(a[-1]),
                  topo.group(b[0]), topo.group(b[-1]))
            hops = 3 if _intervals_touch(*gr) else 5
        return topo.base_us + hops * topo.per_hop_us
    if type(topo) in (Topology, HPSSwitch, FlatEthernet):
        return topo.latency(a[0], b[0])
    floor = topo.base_us + topo.per_hop_us
    best = float("inf")
    for src in a:
        for dst in b:
            lat = topo.latency(src, dst)
            if lat < best:
                best = lat
                if lat <= floor:
                    return lat
    return best


def lookahead_matrix(machine: MachineParams, nnodes: int,
                     partition: NodePartition) -> List[List[float]]:
    """Per-shard-pair lookahead from the machine's wire latencies.

    ``L[a][b]`` = minimum one-way latency over cross-shard node pairs.
    Diagonal entries are 0 (unused: a shard never syncs with itself).
    The matrix is what :class:`repro.sim.sync.SyncCoordinator` consumes
    and what :meth:`repro.sim.shard.ShardContext.send` validates
    against.
    """
    if partition.nnodes != nnodes:
        raise ValueError(
            f"partition covers {partition.nnodes} nodes, not {nnodes}")
    topo = make_topology(machine, nnodes)
    S = partition.nshards
    la = [[0.0] * S for _ in range(S)]
    for a in range(S):
        for b in range(S):
            if a == b:
                continue
            la[a][b] = _min_cross_latency(
                topo, partition.nodes_of(a), partition.nodes_of(b))
    return la


def min_lookahead(machine: MachineParams, nnodes: int,
                  nshards: int) -> float:
    """Smallest off-diagonal lookahead for a balanced split — the
    number docs/PERFORMANCE.md quotes when sizing the sync window."""
    part = partition_nodes(nnodes, nshards)
    if nshards == 1:
        return float("inf")
    la = lookahead_matrix(machine, nnodes, part)
    return min(la[a][b] for a in range(nshards)
               for b in range(nshards) if a != b)
