"""Transport protocols: active messages and one-sided RDMA.

The methods here are *generators* meant to be driven inside the
calling process (``yield from transport.default_get(...)``); they
charge every cost of the protocol on the virtual clock, in order, and
return timing-free metadata (handler replies).  Actual data movement
is performed by the runtime once the protocol generator returns, so a
transport never sees user bytes.

Two protocol families, mirroring Figures 3 and 5:

* the **default (AM) path** — Figure 3a / Figure 5: a request message
  triggers a *header handler* on the target CPU (via the node's
  progress engine) which performs SVD translation, optionally pins the
  object and piggybacks its base address on the reply;
* the **RDMA path** — Figure 3b: the initiator already knows the
  remote address; the transfer is executed by the NICs alone, with no
  target-CPU involvement.

Eager transfers (≤ ``eager_max_bytes``) pay bounce-buffer copies at
both ends; larger ones use a rendezvous handshake with registration
embedded in the protocol phases and a pin-down cache softening the
cost (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.injector import NO_FAULT, Fate
from repro.faults.reliability import (
    DedupLedger,
    ReliabilityConfig,
    ReliabilityError,
)
from repro.network import message as wire
from repro.network.message import MessageLog, WireMessage
from repro.network.node import Node
from repro.network.params import TransportParams
from repro.network.progress import make_progress
from repro.network.topology import Topology
from repro.obs.events import (
    AM_RECV,
    AM_REPLY_RECV,
    AM_REPLY_SEND,
    AM_SEND,
    COMP_HANDLER,
    COMP_PIGGYBACK,
    COMP_QUEUE,
    COMP_WIRE,
    HANDLER_BEGIN,
    HANDLER_END,
    PHASE,
    RDMA_COMPLETE,
    RDMA_ISSUE,
    RETRY,
    TIMEOUT,
)
from repro.sim.event import Event
from repro.sim.resource import Resource
from repro.sim.simulator import Simulator

#: A target-side AM header handler.  Runs at handler-service time on
#: the target node; must be fast and synchronous.  Returns
#: ``(cpu_cost_us, reply_payload, extra_reply_bytes)``.
Handler = Callable[[Node], Tuple[float, Any, int]]


@dataclass
class AMReply:
    """What the initiator gets back from an AM round trip."""

    payload: Any
    #: Virtual time at which the reply landed.
    completed_at: float


@dataclass
class PutTicket:
    """Result of a PUT: local completion has happened (the issuing
    process may continue); ``remote_applied`` fires when the bytes are
    visible at the target (fences/barriers wait on these)."""

    remote_applied: Event
    nbytes: int


@dataclass
class TransportCounters:
    """Aggregate traffic statistics, per transport instance."""

    am_requests: int = 0
    am_replies: int = 0
    rdma_gets: int = 0
    rdma_puts: int = 0
    eager_transfers: int = 0
    rendezvous_transfers: int = 0
    bytes_am: int = 0
    bytes_rdma: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def bump(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class Transport:
    """One messaging fabric shared by all nodes of a cluster."""

    def __init__(self, sim: Simulator, params: TransportParams,
                 topology: Topology, nodes: List[Node]) -> None:
        self.sim = sim
        self.params = params
        self.topology = topology
        self.nodes = nodes
        self.counters = TransportCounters()
        #: Optional wire capture (tests/debugging); None = disabled.
        self.log: Optional[MessageLog] = None
        #: Flight recorder (injected by the Runtime); None on bare
        #: clusters.  Every emit site guards on ``enabled``.
        self.events = None
        #: Fault injector (installed by the Runtime when a non-empty
        #: FaultPlan is configured).  None == lossless fabric: every
        #: protocol takes the exact pre-fault code path.
        self.faults = None
        #: Reliability knobs; replaced wholesale by the Runtime when
        #: configured.  Only consulted on fault paths.
        self.reliability = ReliabilityConfig()
        #: Target-side dedup ledger for replayed AM requests.
        self.ledger = DedupLedger(self.reliability.ledger_capacity)
        #: Runtime metrics block (injected); None on bare clusters.
        self.metrics = None
        #: Per-link health tracker (injected with a repair policy);
        #: None == no health accounting on the hot path.
        self.health = None
        #: Repair-policy engine (injected); None == static fabric.
        #: Consulted for per-link retransmit knobs and detours.
        self.policy = None
        #: Links administratively taken down (``Cluster.
        #: set_link_state``); their traffic detours like a policy
        #: disable.  Empty set == zero-cost.
        self.links_down = set()
        self._next_seq = 0
        #: Per-destination receive-buffer credit pools, lazily built.
        self._credits: Dict[int, Resource] = {}
        for node in nodes:
            node.progress = make_progress(sim, node, params)

    def _seq(self, src: Node) -> Tuple[int, int]:
        """Allocate the dedup key for one logical AM request: the
        ``(initiator node, sequence number)`` pair every attempt of
        the request carries."""
        self._next_seq += 1
        return (src.id, self._next_seq)

    # -- observability / flow control ------------------------------------

    def enable_log(self, max_records: Optional[int] = 100_000) -> MessageLog:
        """Start capturing wire messages; returns the log."""
        self.log = MessageLog(max_records=max_records)
        return self.log

    def _record(self, kind: str, src: Node, dst: Node,
                nbytes: int) -> None:
        if self.log is not None:
            self.log.add(WireMessage(kind=kind, src=src.id, dst=dst.id,
                                     nbytes=nbytes,
                                     t_inject=self.sim.now))

    def _recording(self) -> bool:
        log = self.events
        return log is not None and log.enabled

    def _phase(self, op_id: int, comp: str, t0: float,
               dur: Optional[float] = None) -> None:
        """Attribute ``now - t0`` (or an explicit ``dur``) of op
        ``op_id``'s critical path to latency component ``comp``."""
        log = self.events
        if log is None or not log.enabled or op_id < 0:
            return
        if dur is None:
            dur = self.sim.now - t0
        if dur > 0.0:
            log.emit(self.sim.now, PHASE, op=op_id, comp=comp, dur=dur)

    def _credit_pool(self, dst: Node) -> Resource:
        """Receive-buffer credits guarding eager payloads into ``dst``."""
        pool = self._credits.get(dst.id)
        if pool is None:
            pool = Resource(self.sim, capacity=self.params.eager_credits,
                            name=f"credits[{dst.id}]")
            self._credits[dst.id] = pool
        return pool

    # -- reliability building blocks --------------------------------------

    def _await_timeout(self, t0: float, timeout_us: float, op_id: int,
                       src: Node, dst: Node, proto: str,
                       attempt: int = 0):
        """The initiator's retransmit (or RDMA completion) timer: wait
        out the remainder of the window opened at ``t0``, then record
        the expiry against the ``(src, dst)`` link."""
        if self.policy is not None:
            timeout_us *= self.policy.mode_of(src.id, dst.id,
                                              self.sim.now).timeout_scale
        rest = timeout_us - (self.sim.now - t0)
        if rest > 0:
            yield self.sim.sleep(rest)
        self.counters.bump(f"{proto}-timeout")
        if self.metrics is not None:
            self.metrics.timeouts += 1
            self.metrics.link_timeout(src.id, dst.id)
        ev = self.events
        if ev is not None and ev.enabled:
            ev.emit(self.sim.now, TIMEOUT, op=op_id, node=src.id,
                    dst=dst.id, proto=proto, timeout_us=timeout_us,
                    attempt=attempt)

    def _backoff(self, attempt: int, op_id: int, src: Node, dst: Node,
                 what: str):
        """Capped exponential backoff before retransmission number
        ``attempt`` (1-based); raises :class:`ReliabilityError` once
        the retry budget is spent."""
        r = self.reliability
        if attempt > r.max_retries:
            raise ReliabilityError(
                f"{what} {src.id}->{dst.id} gave up after "
                f"{r.max_retries} retries (op {op_id})",
                src=src.id, dst=dst.id, attempts=attempt, op_id=op_id)
        delay = r.backoff_us(attempt - 1)
        if self.policy is not None:
            delay *= self.policy.mode_of(src.id, dst.id,
                                         self.sim.now).backoff_scale
        if delay > 0:
            yield self.sim.sleep(delay)
        self.counters.bump("am-retry")
        if self.metrics is not None:
            self.metrics.retries += 1
            self.metrics.link_retry(src.id, dst.id)
        if self.health is not None:
            self.health.record(self.sim.now, src.id, dst.id, retries=1)
        ev = self.events
        if ev is not None and ev.enabled:
            ev.emit(self.sim.now, RETRY, op=op_id, node=src.id,
                    dst=dst.id, attempt=attempt, backoff_us=delay,
                    what=what)

    def _spawn_duplicate(self, src: Node, dst: Node, copy_bytes: int,
                         op_id: int, key: Optional[Tuple[int, int]]):
        """An injected duplicate of an already-delivered request: it
        crosses the wire again and the dedup ledger absorbs it on the
        target (handler-CPU replay cost, no side effects, no reply)."""
        self.counters.bump("am-duplicate-delivery")

        def _again():
            yield from self._wire(src, dst)
            yield from self._run_handler(dst, None,
                                         handler_copy_bytes=copy_bytes,
                                         op_id=op_id, key=key)

        self.sim.process(_again(), name="dup-delivery")

    # -- building blocks -------------------------------------------------

    def _inject(self, node: Node, nbytes: int, fragmented: bool):
        """Occupy ``node``'s NIC while serializing ``nbytes``."""
        p = self.params
        frags = p.fragments(nbytes) if fragmented else 1
        yield node.nic.acquire()
        try:
            if self.faults is not None:
                stall = self.faults.nic_stall(node.id)
                if stall > 0.0:
                    yield self.sim.sleep(stall)
            yield self.sim.sleep(frags * p.nic_gap_us + p.wire_time(nbytes))
        finally:
            node.nic.release()

    def _wire(self, src: Node, dst: Node, extra: float = 0.0):
        """Pure latency of the fabric between two nodes.

        A link taken out of service (repair policy or administrative
        ``links_down``) routes via the detour next-hop instead — two
        healthy hops replace the one sick one."""
        via = None
        if self.policy is not None:
            mode = self.policy.mode_of(src.id, dst.id, self.sim.now)
            if mode.mode == "disabled":
                via = mode.via
        if via is None and self.links_down \
                and (src.id, dst.id) in self.links_down:
            via = self._detour_hop(src.id, dst.id)
        if via is not None:
            lat = (self.topology.latency(src.id, via)
                   + self.topology.latency(via, dst.id) + extra)
        else:
            lat = self.topology.latency(src.id, dst.id) + extra
        if lat > 0:
            yield self.sim.sleep(lat)

    def _detour_hop(self, src: int, dst: int):
        """Deterministic alternate next-hop for a downed link: the
        smallest node that is neither endpoint (None on a 2-node
        fabric — the traffic then just rides the sick link)."""
        for via in range(len(self.nodes)):
            if via != src and via != dst:
                return via
        return None

    def _run_handler(self, dst: Node, handler: Optional[Handler],
                     handler_copy_bytes: int = 0,
                     reply_bytes: int = 0, reply_fragmented: bool = True,
                     reply_to: Optional[Node] = None, op_id: int = -1,
                     key: Optional[Tuple[int, int]] = None):
        """Wait for service, then execute the header handler on the
        target CPU.

        Figure 5: the header handler performs the SVD translation,
        registration, copies *and sends the reply* — all of it target
        CPU work.  ``reply_bytes`` > 0 injects the reply while the CPU
        is held, which is what makes a busy target a bottleneck for
        everyone ("four threads competing for the same network
        device", section 4.6).

        Returns the handler's reply payload and the extra bytes it
        appended to the reply.

        ``key`` is the request's dedup identity (reliability layer):
        the first delivery records the handler's reply in the ledger;
        a replayed delivery — retransmission after a lost reply, or an
        injected duplicate — answers from the ledger without re-running
        the handler, so pins, SVD charges and piggybacks never
        double-apply.
        """
        p = self.params
        assert dst.progress is not None
        rec = self._recording()
        yield from dst.progress.service(op_id)
        t_acq = self.sim.now
        if reply_bytes and reply_to is not None:
            # Eager payload toward the initiator: reserve one of its
            # receive-buffer credits *before* taking the handler CPU.
            # Credits are released by main threads (the initiator's
            # receive path), so the handler CPU never blocks on a
            # resource whose release needs another handler CPU — the
            # ordering that would otherwise deadlock two busy nodes
            # exchanging eager traffic.
            yield self._credit_pool(reply_to).acquire()
        yield dst.handler_cpu.acquire()
        if rec:
            # Credit + handler-CPU contention is queueing, same bucket
            # as waiting for the progress engine.
            self._phase(op_id, COMP_QUEUE, t_acq)
            self.events.emit(self.sim.now, AM_RECV, op=op_id,
                             node=dst.id)
        try:
            cost = p.handler_cpu_us
            payload: Any = None
            extra_bytes = 0
            led = self.ledger.get(key) if key is not None else None
            if led is not None:
                # Replay of a request served once already: answer from
                # the ledger (copy cost to rematerialize the reply, no
                # handler re-run, no double pin).
                payload, extra_bytes = led
                self.counters.bump("am-replay")
            elif handler is not None:
                h_cost, payload, extra_bytes = handler(dst)
                cost += h_cost
            if handler_copy_bytes:
                cost += p.copy_time(handler_copy_bytes)
            if led is None and key is not None and handler is not None:
                self.ledger.record(key, payload, extra_bytes)
            t_h = self.sim.now
            if rec:
                self.events.emit(t_h, HANDLER_BEGIN, op=op_id,
                                 node=dst.id)
            yield self.sim.sleep(cost)
            if rec:
                self.events.emit(self.sim.now, HANDLER_END, op=op_id,
                                 node=dst.id, cost=cost)
                self._phase(op_id, COMP_HANDLER, t_h)
            if reply_bytes:
                t_r = self.sim.now
                yield self.sim.sleep(p.o_send_us)
                yield from self._inject(dst, reply_bytes + extra_bytes,
                                        fragmented=reply_fragmented)
                if rec:
                    # The reply injection carried data plus (maybe) the
                    # piggybacked base address; attribute the extra
                    # bytes' share of the send to the piggyback
                    # component, the rest to the wire.
                    dur = self.sim.now - t_r
                    total = reply_bytes + extra_bytes
                    piggy = (dur * extra_bytes / total
                             if extra_bytes and total else 0.0)
                    self._phase(op_id, COMP_PIGGYBACK, t_r, dur=piggy)
                    self._phase(op_id, COMP_WIRE, t_r, dur=dur - piggy)
                    self.events.emit(
                        self.sim.now, AM_REPLY_SEND, op=op_id,
                        node=dst.id, nbytes=total,
                        piggyback=bool(extra_bytes))
        except BaseException:
            if reply_bytes and reply_to is not None:
                # The reply will never be sent; return the credit.
                self._credit_pool(reply_to).release()
            raise
        finally:
            dst.handler_cpu.release()
        return payload, extra_bytes

    # -- default (AM) protocols -------------------------------------------

    def default_get(self, src: Node, dst: Node, nbytes: int,
                    handler: Optional[Handler] = None,
                    src_addr: Optional[int] = None,
                    dst_addr: Optional[int] = None, op_id: int = -1):
        """Figure 3a: Request-To-Send, handler on target, data reply.

        ``src_addr``/``dst_addr`` identify the user buffers for
        rendezvous registration accounting (default: node heap base).
        ``op_id`` threads the flight-recorder causal id through the
        protocol.  Returns :class:`AMReply` whose payload is the
        handler's reply (the runtime piggybacks the remote base
        address here).
        """
        p = self.params
        self.counters.am_requests += 1
        self.counters.bytes_am += nbytes + 2 * p.ctrl_bytes
        src_addr = src_addr if src_addr is not None else src.memory.base
        dst_addr = dst_addr if dst_addr is not None else dst.memory.base
        if self.faults is None:
            if nbytes <= p.eager_max_bytes:
                _, payload = yield from self._eager_get(src, dst, nbytes,
                                                        handler, op_id)
            else:
                _, payload = yield from self._rendezvous_get(
                    src, dst, nbytes, handler, src_addr, dst_addr, op_id)
        else:
            payload = yield from self._reliable_get(
                src, dst, nbytes, handler, src_addr, dst_addr, op_id)
        self.counters.am_replies += 1
        return AMReply(payload=payload, completed_at=self.sim.now)

    def _reliable_get(self, src: Node, dst: Node, nbytes: int,
                      handler: Optional[Handler], src_addr: int,
                      dst_addr: int, op_id: int):
        """Sequence-numbered GET with retransmission: draw a fate per
        attempt; a lost leg burns the retransmit window, then the
        request is retried after capped exponential backoff.  The
        dedup key makes retried target handlers idempotent."""
        p = self.params
        r = self.reliability
        key = self._seq(src)
        attempt = 0
        while True:
            t0 = self.sim.now
            fate = self.faults.am_fate(src.id, dst.id, op_id=op_id)
            if nbytes <= p.eager_max_bytes:
                ok, payload = yield from self._eager_get(
                    src, dst, nbytes, handler, op_id, fate=fate, key=key)
            else:
                ok, payload = yield from self._rendezvous_get(
                    src, dst, nbytes, handler, src_addr, dst_addr,
                    op_id, fate=fate, key=key)
            if ok:
                return payload
            yield from self._await_timeout(t0, r.am_timeout_us, op_id,
                                           src, dst, "am",
                                           attempt=attempt + 1)
            attempt += 1
            yield from self._backoff(attempt, op_id, src, dst, "am get")

    def _eager_get(self, src: Node, dst: Node, nbytes: int,
                   handler: Optional[Handler], op_id: int = -1,
                   fate: Fate = NO_FAULT,
                   key: Optional[Tuple[int, int]] = None):
        """One eager-GET attempt.  Returns ``(ok, payload)``; ``ok`` is
        False when ``fate`` lost a leg (the caller owns the retransmit
        timer)."""
        p = self.params
        rec = self._recording()
        self.counters.eager_transfers += 1
        # Request.
        yield self.sim.sleep(p.o_send_us)
        self._record(wire.AM_REQUEST, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                             dst=dst.id, nbytes=p.ctrl_bytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        if fate.drop_request:
            # Lost in the fabric after leaving the NIC; the target
            # never sees it.
            return False, None
        yield from self._wire(src, dst, extra=fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target: handler + bounce copy + reply injection, all on the
        # target CPU (Figure 5).
        payload, extra = yield from self._run_handler(
            dst, handler, handler_copy_bytes=nbytes,
            reply_bytes=nbytes + p.ctrl_bytes, reply_fragmented=True,
            reply_to=src, op_id=op_id, key=key)
        if fate.duplicate:
            self._spawn_duplicate(src, dst, nbytes, op_id, key)
        # Logged post-injection so timestamp and piggyback bytes are
        # the ones actually on the wire.
        self._record(wire.AM_REPLY, dst, src, nbytes + p.ctrl_bytes + extra)
        if fate.drop_reply:
            # The reply vanished; the initiator's receive path never
            # runs, so return its receive-buffer credit here.
            self._credit_pool(src).release()
            return False, None
        t1 = self.sim.now
        yield from self._wire(dst, src, extra=fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t1)
            self.events.emit(self.sim.now, AM_REPLY_RECV, op=op_id,
                             node=src.id, piggyback=extra > 0)
        # Initiator: receive + copy out of the bounce buffer, then
        # return the receive-buffer credit to the pool.
        yield self.sim.sleep(p.o_recv_us + p.copy_time(nbytes))
        self._credit_pool(src).release()
        return True, payload

    def _rendezvous_get(self, src: Node, dst: Node, nbytes: int,
                        handler: Optional[Handler],
                        src_addr: int, dst_addr: int, op_id: int = -1,
                        fate: Fate = NO_FAULT,
                        key: Optional[Tuple[int, int]] = None):
        """One rendezvous-GET attempt; ``(ok, payload)`` like
        :meth:`_eager_get`.  On retries the source-side registration
        re-check hits the pin-down cache (cost 0) and the target block
        replays from the dedup ledger."""
        p = self.params
        rec = self._recording()
        self.counters.rendezvous_transfers += 1
        # RTS.
        yield self.sim.sleep(p.o_send_us + p.rendezvous_cpu_us)
        reg_cost = src.reg_cache.register(src_addr, nbytes)
        if reg_cost:
            yield self.sim.sleep(reg_cost)
        self._record(wire.RTS, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                             dst=dst.id, nbytes=p.ctrl_bytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        if fate.drop_request:
            return False, None
        yield from self._wire(src, dst, extra=fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target: handler, registration of the served region and the
        # zero-copy send — all target-CPU work (Figure 5b).
        assert dst.progress is not None
        yield from dst.progress.service(op_id)
        t_acq = self.sim.now
        yield dst.handler_cpu.acquire()
        if rec:
            self._phase(op_id, COMP_QUEUE, t_acq)
            self.events.emit(self.sim.now, AM_RECV, op=op_id,
                             node=dst.id)
        try:
            payload: Any = None
            extra = 0
            led = self.ledger.get(key) if key is not None else None
            if led is not None:
                # Replay: the translation/registration happened on the
                # first delivery; only re-dispatch and re-send.
                payload, extra = led
                cost = p.handler_cpu_us
                self.counters.bump("am-replay")
            else:
                cost = p.handler_cpu_us + p.rendezvous_cpu_us
                if handler is not None:
                    h_cost, payload, extra = handler(dst)
                    cost += h_cost
                cost += dst.reg_cache.register(dst_addr, nbytes)
                if key is not None and handler is not None:
                    self.ledger.record(key, payload, extra)
            t_r = self.sim.now
            if rec:
                # The handler-CPU slice is the known `cost` share of
                # the combined timeout below; HANDLER_END is stamped
                # analytically at t_r + cost to avoid splitting the
                # timeout (which would perturb event interleaving).
                self.events.emit(t_r, HANDLER_BEGIN, op=op_id,
                                 node=dst.id)
                self.events.emit(t_r + cost, HANDLER_END, op=op_id,
                                 node=dst.id, cost=cost)
                self._phase(op_id, COMP_HANDLER, t_r, dur=cost)
            yield self.sim.sleep(cost + p.o_send_us)
            self._record(wire.RDV_DATA, dst, src,
                         nbytes + p.ctrl_bytes + extra)
            yield from self._inject(dst, nbytes + p.ctrl_bytes + extra,
                                    fragmented=False)
            if rec:
                dur = self.sim.now - t_r - cost
                total = nbytes + p.ctrl_bytes + extra
                piggy = dur * extra / total if extra and total else 0.0
                self._phase(op_id, COMP_PIGGYBACK, t_r, dur=piggy)
                self._phase(op_id, COMP_WIRE, t_r, dur=dur - piggy)
                self.events.emit(self.sim.now, AM_REPLY_SEND, op=op_id,
                                 node=dst.id, nbytes=total,
                                 piggyback=bool(extra))
        finally:
            dst.handler_cpu.release()
        if fate.duplicate:
            self._spawn_duplicate(src, dst, 0, op_id, key)
        if fate.drop_reply:
            # The data message vanished (the target paid for sending
            # it); the initiator's retransmit timer will fire.
            return False, None
        t1 = self.sim.now
        yield from self._wire(dst, src, extra=fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t1)
            self.events.emit(self.sim.now, AM_REPLY_RECV, op=op_id,
                             node=src.id, piggyback=extra > 0)
        # Initiator completion (no copies: the NIC delivered in place).
        yield self.sim.sleep(p.o_recv_us)
        return True, payload

    def default_put(self, src: Node, dst: Node, nbytes: int,
                    handler: Optional[Handler] = None,
                    src_addr: Optional[int] = None,
                    dst_addr: Optional[int] = None, op_id: int = -1):
        """Figure 3a mirrored: the initiator is done at local hand-off;
        target-side processing overlaps with whatever the initiator
        does next.  Returns a :class:`PutTicket`."""
        p = self.params
        rec = self._recording()
        self.counters.am_requests += 1
        # Eager: data+header message.  Rendezvous: RTS + CTS + data.
        self.counters.bytes_am += nbytes + (
            p.ctrl_bytes if nbytes <= p.eager_max_bytes
            else 2 * p.ctrl_bytes)
        remote_applied = Event(self.sim, name="put-applied")
        if src_addr is None:
            src_addr = src.memory.base
        if dst_addr is None:
            dst_addr = dst.memory.base
        key = self._seq(src) if self.faults is not None else None
        if nbytes <= p.eager_max_bytes:
            self.counters.eager_transfers += 1
            # Local side: software overhead, bounce copy, a receive
            # credit at the destination, injection.
            yield self.sim.sleep(p.o_send_us + p.copy_time(nbytes))
            yield self._credit_pool(dst).acquire()
            self._record(wire.PUT_DATA, src, dst, nbytes + p.ctrl_bytes)
            t0 = self.sim.now
            if rec:
                self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                                 dst=dst.id,
                                 nbytes=nbytes + p.ctrl_bytes)
            yield from self._inject(src, nbytes + p.ctrl_bytes,
                                    fragmented=True)
            if rec:
                self._phase(op_id, COMP_WIRE, t0)
            # Remote side continues without the initiator.
            self.sim.process(
                self._put_tail(src, dst, nbytes, handler, remote_applied,
                               copy_at_target=True, credit=True,
                               op_id=op_id, key=key),
                name="put-tail",
            )
        else:
            self.counters.rendezvous_transfers += 1
            # RTS/CTS handshake happens synchronously (rendezvous).
            yield self.sim.sleep(p.o_send_us + p.rendezvous_cpu_us)
            reg_cost = src.reg_cache.register(src_addr, nbytes)
            if reg_cost:
                yield self.sim.sleep(reg_cost)
            if self.faults is None:
                yield from self._rdv_put_handshake(src, dst, nbytes,
                                                   handler, dst_addr,
                                                   op_id)
            else:
                r = self.reliability
                attempt = 0
                while True:
                    t0 = self.sim.now
                    fate = self.faults.am_fate(src.id, dst.id,
                                               op_id=op_id)
                    ok = yield from self._rdv_put_handshake(
                        src, dst, nbytes, handler, dst_addr, op_id,
                        fate=fate, key=key)
                    if ok:
                        break
                    yield from self._await_timeout(t0, r.am_timeout_us,
                                                   op_id, src, dst, "am",
                                                   attempt=attempt + 1)
                    attempt += 1
                    yield from self._backoff(attempt, op_id, src, dst,
                                             "rendezvous put")
            # Zero-copy data injection; local completion at hand-off.
            self._record(wire.RDV_DATA, src, dst, nbytes)
            t2 = self.sim.now
            yield from self._inject(src, nbytes, fragmented=False)
            if rec:
                self._phase(op_id, COMP_WIRE, t2)
            data_key = self._seq(src) if self.faults is not None else None
            self.sim.process(
                self._put_tail(src, dst, nbytes, None, remote_applied,
                               copy_at_target=False, op_id=op_id,
                               key=data_key),
                name="put-tail",
            )
        return PutTicket(remote_applied=remote_applied, nbytes=nbytes)

    def _rdv_put_handshake(self, src: Node, dst: Node, nbytes: int,
                           handler: Optional[Handler], dst_addr: int,
                           op_id: int = -1, fate: Fate = NO_FAULT,
                           key: Optional[Tuple[int, int]] = None):
        """One RTS→CTS attempt of a rendezvous PUT.  Returns True when
        the CTS landed; False when ``fate`` lost a leg (the caller owns
        the retransmit timer)."""
        p = self.params
        rec = self._recording()
        self._record(wire.RTS, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                             dst=dst.id, nbytes=p.ctrl_bytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        if fate.drop_request:
            return False
        yield from self._wire(src, dst, extra=fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target-side work (handler + registration + CTS send) is
        # all CPU work there — serialized on the handler CPU,
        # symmetric with the rendezvous GET path.
        assert dst.progress is not None
        yield from dst.progress.service(op_id)
        t_acq = self.sim.now
        yield dst.handler_cpu.acquire()
        if rec:
            self._phase(op_id, COMP_QUEUE, t_acq)
            self.events.emit(self.sim.now, AM_RECV, op=op_id,
                             node=dst.id)
        try:
            led = self.ledger.get(key) if key is not None else None
            if led is not None:
                # Replay: translation/registration already happened.
                cost = p.handler_cpu_us
                self.counters.bump("am-replay")
            else:
                cost = p.handler_cpu_us
                if handler is not None:
                    h_cost, _, _ = handler(dst)
                    cost += h_cost
                cost += dst.reg_cache.register(dst_addr, nbytes)
                if key is not None and handler is not None:
                    self.ledger.record(key, None, 0)
            t_r = self.sim.now
            if rec:
                self.events.emit(t_r, HANDLER_BEGIN, op=op_id,
                                 node=dst.id)
                self.events.emit(t_r + cost, HANDLER_END, op=op_id,
                                 node=dst.id, cost=cost)
                self._phase(op_id, COMP_HANDLER, t_r, dur=cost)
            yield self.sim.sleep(cost + p.o_send_us)
            self._record(wire.CTS, dst, src, p.ctrl_bytes)
            yield from self._inject(dst, p.ctrl_bytes, fragmented=False)
            if rec:
                self._phase(op_id, COMP_WIRE, t_r,
                            dur=self.sim.now - t_r - cost)
        finally:
            dst.handler_cpu.release()
        if fate.duplicate:
            self._spawn_duplicate(src, dst, 0, op_id, key)
        if fate.drop_reply:
            return False
        t1 = self.sim.now
        yield from self._wire(dst, src, extra=fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t1)
        yield self.sim.sleep(p.o_recv_us)
        return True

    def _put_tail(self, src: Node, dst: Node, nbytes: int,
                  handler: Optional[Handler], remote_applied: Event,
                  copy_at_target: bool, credit: bool = False,
                  op_id: int = -1,
                  key: Optional[Tuple[int, int]] = None):
        """Target-side continuation of a PUT (runs as its own process).

        Credit return and completion signalling are exception-safe: a
        crashing handler must not leak the receive buffer nor leave
        the initiator's fence waiting forever.  Under faults the tail
        also models the initiator's retransmit timer for the data
        message; if the retry budget runs out, ``remote_applied`` is
        *failed* so the loss surfaces at the next fence instead of
        silently dropping the store.
        """
        failure: Optional[BaseException] = None
        try:
            if self.faults is None:
                yield from self._wire(src, dst)
                if handler is not None or copy_at_target:
                    yield from self._run_handler(
                        dst, handler,
                        handler_copy_bytes=nbytes if copy_at_target else 0,
                        op_id=op_id)
            else:
                yield from self._reliable_put_tail(
                    src, dst, nbytes, handler, copy_at_target, op_id, key)
        except ReliabilityError as exc:
            self.counters.bump("put-tail-error")
            failure = exc
            raise
        except BaseException:
            # Detached process: make the failure visible in counters
            # before it lands in the (unobserved) process event.
            self.counters.bump("put-tail-error")
            raise
        finally:
            if credit:
                # The target consumed the eager buffer either way.
                self._credit_pool(dst).release()
            if failure is not None:
                remote_applied.fail(failure)
            else:
                remote_applied.succeed(self.sim.now)

    def _reliable_put_tail(self, src: Node, dst: Node, nbytes: int,
                           handler: Optional[Handler],
                           copy_at_target: bool, op_id: int,
                           key: Optional[Tuple[int, int]]):
        """Retransmission loop for the detached data leg of a PUT: the
        tail process models both the delivery and the initiator's
        retransmit timer, so a dropped data message is retried until
        it lands (the dedup ledger absorbs duplicates on the target)
        and a fence can never wait on a message nobody will resend."""
        r = self.reliability
        p = self.params
        attempt = 0
        while True:
            t0 = self.sim.now
            fate = self.faults.am_fate(src.id, dst.id, op_id=op_id)
            if not (fate.drop_request or fate.drop_reply):
                yield from self._wire(src, dst, extra=fate.delay_us)
                if handler is not None or copy_at_target:
                    yield from self._run_handler(
                        dst, handler,
                        handler_copy_bytes=nbytes if copy_at_target else 0,
                        op_id=op_id, key=key)
                if fate.duplicate:
                    self._spawn_duplicate(
                        src, dst, nbytes if copy_at_target else 0,
                        op_id, key)
                return
            # The data message was lost (a one-way message: either
            # drop leg kills it); wait out the retransmit window, back
            # off, and serialize it through the initiator's NIC again.
            yield from self._await_timeout(t0, r.am_timeout_us, op_id,
                                           src, dst, "am",
                                           attempt=attempt + 1)
            attempt += 1
            yield from self._backoff(attempt, op_id, src, dst,
                                     "put data")
            yield from self._inject(src, nbytes + p.ctrl_bytes,
                                    fragmented=True)

    def am_oneway(self, src: Node, dst: Node, nbytes: int,
                  handler: Optional[Handler] = None) -> Event:
        """Fire-and-forget control message (SVD update notifications).

        Charged asynchronously: the *caller* pays nothing on its own
        clock; returns an event firing when the target processed it.
        """
        self.counters.am_requests += 1
        self.counters.bytes_am += nbytes
        done = Event(self.sim, name="oneway-done")

        def _fly():
            yield self.sim.sleep(self.params.o_send_us)
            yield self._credit_pool(dst).acquire()
            try:
                if self.faults is None:
                    self._record(wire.ONEWAY, src, dst, nbytes)
                    yield from self._inject(src, nbytes, fragmented=True)
                    yield from self._wire(src, dst)
                    yield from self._run_handler(dst, handler)
                else:
                    yield from self._reliable_oneway(src, dst, nbytes,
                                                     handler)
            finally:
                self._credit_pool(dst).release()
                done.succeed(self.sim.now)

        self.sim.process(_fly(), name="am-oneway")
        return done

    def _reliable_oneway(self, src: Node, dst: Node, nbytes: int,
                         handler: Optional[Handler]):
        """Retransmission loop for fire-and-forget control messages —
        an SVD update notification must eventually land or the run
        must fail loudly."""
        r = self.reliability
        key = self._seq(src)
        attempt = 0
        while True:
            t0 = self.sim.now
            fate = self.faults.am_fate(src.id, dst.id)
            self._record(wire.ONEWAY, src, dst, nbytes)
            yield from self._inject(src, nbytes, fragmented=True)
            if not (fate.drop_request or fate.drop_reply):
                yield from self._wire(src, dst, extra=fate.delay_us)
                yield from self._run_handler(dst, handler, key=key)
                if fate.duplicate:
                    self._spawn_duplicate(src, dst, 0, -1, key)
                return
            yield from self._await_timeout(t0, r.am_timeout_us, -1,
                                           src, dst, "am",
                                           attempt=attempt + 1)
            attempt += 1
            yield from self._backoff(attempt, -1, src, dst, "am oneway")

    # -- RDMA protocols ----------------------------------------------------

    def rdma_get(self, src: Node, dst: Node, nbytes: int,
                 op_id: int = -1):
        """Figure 3b: one-sided read.  No target CPU involvement — the
        response is served by the target NIC's DMA engine.

        Returns True on completion; False when the fault plane lost
        the op and the completion timer expired (the caller — the op
        engine — invalidates the cached address and degrades to the
        AM path)."""
        p = self.params
        rec = self._recording()
        self.counters.rdma_gets += 1
        self.counters.bytes_rdma += nbytes
        fate = (self.faults.rdma_fate(src.id, dst.id, op_id=op_id)
                if self.faults is not None else NO_FAULT)
        t_start = self.sim.now
        yield self.sim.sleep(p.rdma_init_us)
        self._record(wire.RDMA_READ, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, RDMA_ISSUE, op=op_id, node=src.id,
                             dst=dst.id, nbytes=nbytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        if fate.drop_request:
            # The read (or its response) vanished; no completion will
            # ever arrive — burn the completion window and report.
            yield from self._await_timeout(
                t_start, self.reliability.rdma_timeout_us, op_id,
                src, dst, "rdma", attempt=1)
            return False
        yield from self._wire(src, dst,
                              extra=p.rdma_get_premium_us + fate.delay_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target NIC serializes the response (DMA, no CPU, no credits
        # — the data lands directly in registered user memory).
        self._record(wire.RDMA_READ_RESP, dst, src, nbytes)
        t1 = self.sim.now
        yield dst.nic.acquire()
        if rec:
            # Contention for the target NIC's DMA engine.
            self._phase(op_id, COMP_QUEUE, t1)
        t2 = self.sim.now
        try:
            yield self.sim.sleep(p.nic_gap_us + p.wire_time(nbytes))
        finally:
            dst.nic.release()
        yield from self._wire(dst, src)
        if rec:
            self._phase(op_id, COMP_WIRE, t2)
        yield self.sim.sleep(p.rdma_completion_us)
        if rec:
            self.events.emit(self.sim.now, RDMA_COMPLETE, op=op_id,
                             node=src.id, nbytes=nbytes)
        return True

    def rdma_put(self, src: Node, dst: Node, nbytes: int,
                 op_id: int = -1):
        """Figure 3b mirrored.  On GM local completion happens at
        injection; on HPS/LAPI the initiator waits for the fabric-level
        acknowledgement (``rdma_put_waits_remote``) — the mechanism
        behind Figure 6's PUT regression.

        Returns the :class:`PutTicket`, or None when the fault plane
        lost the write and the completion timer expired (the caller
        invalidates the cached address and degrades to the AM path,
        which re-issues the store)."""
        p = self.params
        rec = self._recording()
        self.counters.rdma_puts += 1
        self.counters.bytes_rdma += nbytes
        fate = (self.faults.rdma_fate(src.id, dst.id, op_id=op_id)
                if self.faults is not None else NO_FAULT)
        t_start = self.sim.now
        remote_applied = Event(self.sim, name="rdma-put-applied")
        yield self.sim.sleep(p.rdma_init_us)
        self._record(wire.RDMA_WRITE, src, dst, nbytes + p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, RDMA_ISSUE, op=op_id, node=src.id,
                             dst=dst.id, nbytes=nbytes)
        yield from self._inject(src, nbytes + p.ctrl_bytes, fragmented=False)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        if fate.drop_request:
            yield from self._await_timeout(
                t_start, self.reliability.rdma_timeout_us, op_id,
                src, dst, "rdma", attempt=1)
            return None
        if p.rdma_put_waits_remote:
            t1 = self.sim.now
            yield from self._wire(src, dst,
                                  extra=p.rdma_put_premium_us
                                  + fate.delay_us)
            remote_applied.succeed(self.sim.now)
            yield from self._wire(dst, src)  # hardware ack
            if rec:
                self._phase(op_id, COMP_WIRE, t1)
            yield self.sim.sleep(p.rdma_completion_us)
        else:
            yield self.sim.sleep(p.rdma_completion_us)

            def _tail():
                yield from self._wire(src, dst,
                                      extra=p.rdma_put_premium_us
                                      + fate.delay_us)
                remote_applied.succeed(self.sim.now)

            self.sim.process(_tail(), name="rdma-put-tail")
        if rec:
            self.events.emit(self.sim.now, RDMA_COMPLETE, op=op_id,
                             node=src.id, nbytes=nbytes)
        return PutTicket(remote_applied=remote_applied, nbytes=nbytes)


class GMTransport(Transport):
    """Myrinet/GM flavour (section 3.3).

    Behaviour is fully captured by :data:`repro.network.params.GM_TRANSPORT`:
    polling progress, 16 KB eager cut-over, registration embedded in
    rendezvous with a pin-down cache, cheap RDMA with local PUT
    completion, 1 GB DMAable-memory cap.
    """


class LAPITransport(Transport):
    """LAPI/HPS flavour (section 3.2).

    Captured by :data:`repro.network.params.LAPI_TRANSPORT`: interrupt
    progress (communication/computation overlap), 8x Myrinet bandwidth,
    RDMA latency premium with remote-ack PUT completion, 32 MB
    registered-handle cap.
    """
