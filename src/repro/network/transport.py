"""Transport protocols: active messages and one-sided RDMA.

The methods here are *generators* meant to be driven inside the
calling process (``yield from transport.default_get(...)``); they
charge every cost of the protocol on the virtual clock, in order, and
return timing-free metadata (handler replies).  Actual data movement
is performed by the runtime once the protocol generator returns, so a
transport never sees user bytes.

Two protocol families, mirroring Figures 3 and 5:

* the **default (AM) path** — Figure 3a / Figure 5: a request message
  triggers a *header handler* on the target CPU (via the node's
  progress engine) which performs SVD translation, optionally pins the
  object and piggybacks its base address on the reply;
* the **RDMA path** — Figure 3b: the initiator already knows the
  remote address; the transfer is executed by the NICs alone, with no
  target-CPU involvement.

Eager transfers (≤ ``eager_max_bytes``) pay bounce-buffer copies at
both ends; larger ones use a rendezvous handshake with registration
embedded in the protocol phases and a pin-down cache softening the
cost (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network import message as wire
from repro.network.message import MessageLog, WireMessage
from repro.network.node import Node
from repro.network.params import TransportParams
from repro.network.progress import make_progress
from repro.network.topology import Topology
from repro.obs.events import (
    AM_RECV,
    AM_REPLY_RECV,
    AM_REPLY_SEND,
    AM_SEND,
    COMP_HANDLER,
    COMP_PIGGYBACK,
    COMP_QUEUE,
    COMP_WIRE,
    HANDLER_BEGIN,
    HANDLER_END,
    PHASE,
    RDMA_COMPLETE,
    RDMA_ISSUE,
)
from repro.sim.event import Event
from repro.sim.resource import Resource
from repro.sim.simulator import Simulator

#: A target-side AM header handler.  Runs at handler-service time on
#: the target node; must be fast and synchronous.  Returns
#: ``(cpu_cost_us, reply_payload, extra_reply_bytes)``.
Handler = Callable[[Node], Tuple[float, Any, int]]


@dataclass
class AMReply:
    """What the initiator gets back from an AM round trip."""

    payload: Any
    #: Virtual time at which the reply landed.
    completed_at: float


@dataclass
class PutTicket:
    """Result of a PUT: local completion has happened (the issuing
    process may continue); ``remote_applied`` fires when the bytes are
    visible at the target (fences/barriers wait on these)."""

    remote_applied: Event
    nbytes: int


@dataclass
class TransportCounters:
    """Aggregate traffic statistics, per transport instance."""

    am_requests: int = 0
    am_replies: int = 0
    rdma_gets: int = 0
    rdma_puts: int = 0
    eager_transfers: int = 0
    rendezvous_transfers: int = 0
    bytes_am: int = 0
    bytes_rdma: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def bump(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class Transport:
    """One messaging fabric shared by all nodes of a cluster."""

    def __init__(self, sim: Simulator, params: TransportParams,
                 topology: Topology, nodes: List[Node]) -> None:
        self.sim = sim
        self.params = params
        self.topology = topology
        self.nodes = nodes
        self.counters = TransportCounters()
        #: Optional wire capture (tests/debugging); None = disabled.
        self.log: Optional[MessageLog] = None
        #: Flight recorder (injected by the Runtime); None on bare
        #: clusters.  Every emit site guards on ``enabled``.
        self.events = None
        #: Per-destination receive-buffer credit pools, lazily built.
        self._credits: Dict[int, Resource] = {}
        for node in nodes:
            node.progress = make_progress(sim, node, params)

    # -- observability / flow control ------------------------------------

    def enable_log(self, max_records: Optional[int] = 100_000) -> MessageLog:
        """Start capturing wire messages; returns the log."""
        self.log = MessageLog(max_records=max_records)
        return self.log

    def _record(self, kind: str, src: Node, dst: Node,
                nbytes: int) -> None:
        if self.log is not None:
            self.log.add(WireMessage(kind=kind, src=src.id, dst=dst.id,
                                     nbytes=nbytes,
                                     t_inject=self.sim.now))

    def _recording(self) -> bool:
        log = self.events
        return log is not None and log.enabled

    def _phase(self, op_id: int, comp: str, t0: float,
               dur: Optional[float] = None) -> None:
        """Attribute ``now - t0`` (or an explicit ``dur``) of op
        ``op_id``'s critical path to latency component ``comp``."""
        log = self.events
        if log is None or not log.enabled or op_id < 0:
            return
        if dur is None:
            dur = self.sim.now - t0
        if dur > 0.0:
            log.emit(self.sim.now, PHASE, op=op_id, comp=comp, dur=dur)

    def _credit_pool(self, dst: Node) -> Resource:
        """Receive-buffer credits guarding eager payloads into ``dst``."""
        pool = self._credits.get(dst.id)
        if pool is None:
            pool = Resource(self.sim, capacity=self.params.eager_credits,
                            name=f"credits[{dst.id}]")
            self._credits[dst.id] = pool
        return pool

    # -- building blocks -------------------------------------------------

    def _inject(self, node: Node, nbytes: int, fragmented: bool):
        """Occupy ``node``'s NIC while serializing ``nbytes``."""
        p = self.params
        frags = p.fragments(nbytes) if fragmented else 1
        yield node.nic.acquire()
        try:
            yield self.sim.timeout(frags * p.nic_gap_us + p.wire_time(nbytes))
        finally:
            node.nic.release()

    def _wire(self, src: Node, dst: Node, extra: float = 0.0):
        """Pure latency of the fabric between two nodes."""
        lat = self.topology.latency(src.id, dst.id) + extra
        if lat > 0:
            yield self.sim.timeout(lat)

    def _run_handler(self, dst: Node, handler: Optional[Handler],
                     handler_copy_bytes: int = 0,
                     reply_bytes: int = 0, reply_fragmented: bool = True,
                     reply_to: Optional[Node] = None, op_id: int = -1):
        """Wait for service, then execute the header handler on the
        target CPU.

        Figure 5: the header handler performs the SVD translation,
        registration, copies *and sends the reply* — all of it target
        CPU work.  ``reply_bytes`` > 0 injects the reply while the CPU
        is held, which is what makes a busy target a bottleneck for
        everyone ("four threads competing for the same network
        device", section 4.6).

        Returns the handler's reply payload and the extra bytes it
        appended to the reply.
        """
        p = self.params
        assert dst.progress is not None
        rec = self._recording()
        yield from dst.progress.service(op_id)
        t_acq = self.sim.now
        if reply_bytes and reply_to is not None:
            # Eager payload toward the initiator: reserve one of its
            # receive-buffer credits *before* taking the handler CPU.
            # Credits are released by main threads (the initiator's
            # receive path), so the handler CPU never blocks on a
            # resource whose release needs another handler CPU — the
            # ordering that would otherwise deadlock two busy nodes
            # exchanging eager traffic.
            yield self._credit_pool(reply_to).acquire()
        yield dst.handler_cpu.acquire()
        if rec:
            # Credit + handler-CPU contention is queueing, same bucket
            # as waiting for the progress engine.
            self._phase(op_id, COMP_QUEUE, t_acq)
            self.events.emit(self.sim.now, AM_RECV, op=op_id,
                             node=dst.id)
        try:
            cost = p.handler_cpu_us
            payload: Any = None
            extra_bytes = 0
            if handler is not None:
                h_cost, payload, extra_bytes = handler(dst)
                cost += h_cost
            if handler_copy_bytes:
                cost += p.copy_time(handler_copy_bytes)
            t_h = self.sim.now
            if rec:
                self.events.emit(t_h, HANDLER_BEGIN, op=op_id,
                                 node=dst.id)
            yield self.sim.timeout(cost)
            if rec:
                self.events.emit(self.sim.now, HANDLER_END, op=op_id,
                                 node=dst.id, cost=cost)
                self._phase(op_id, COMP_HANDLER, t_h)
            if reply_bytes:
                t_r = self.sim.now
                yield self.sim.timeout(p.o_send_us)
                yield from self._inject(dst, reply_bytes + extra_bytes,
                                        fragmented=reply_fragmented)
                if rec:
                    # The reply injection carried data plus (maybe) the
                    # piggybacked base address; attribute the extra
                    # bytes' share of the send to the piggyback
                    # component, the rest to the wire.
                    dur = self.sim.now - t_r
                    total = reply_bytes + extra_bytes
                    piggy = (dur * extra_bytes / total
                             if extra_bytes and total else 0.0)
                    self._phase(op_id, COMP_PIGGYBACK, t_r, dur=piggy)
                    self._phase(op_id, COMP_WIRE, t_r, dur=dur - piggy)
                    self.events.emit(
                        self.sim.now, AM_REPLY_SEND, op=op_id,
                        node=dst.id, nbytes=total,
                        piggyback=bool(extra_bytes))
        except BaseException:
            if reply_bytes and reply_to is not None:
                # The reply will never be sent; return the credit.
                self._credit_pool(reply_to).release()
            raise
        finally:
            dst.handler_cpu.release()
        return payload, extra_bytes

    # -- default (AM) protocols -------------------------------------------

    def default_get(self, src: Node, dst: Node, nbytes: int,
                    handler: Optional[Handler] = None,
                    src_addr: Optional[int] = None,
                    dst_addr: Optional[int] = None, op_id: int = -1):
        """Figure 3a: Request-To-Send, handler on target, data reply.

        ``src_addr``/``dst_addr`` identify the user buffers for
        rendezvous registration accounting (default: node heap base).
        ``op_id`` threads the flight-recorder causal id through the
        protocol.  Returns :class:`AMReply` whose payload is the
        handler's reply (the runtime piggybacks the remote base
        address here).
        """
        p = self.params
        self.counters.am_requests += 1
        self.counters.bytes_am += nbytes + 2 * p.ctrl_bytes
        if nbytes <= p.eager_max_bytes:
            payload = yield from self._eager_get(src, dst, nbytes,
                                                 handler, op_id)
        else:
            payload = yield from self._rendezvous_get(
                src, dst, nbytes, handler,
                src_addr if src_addr is not None else src.memory.base,
                dst_addr if dst_addr is not None else dst.memory.base,
                op_id)
        self.counters.am_replies += 1
        return AMReply(payload=payload, completed_at=self.sim.now)

    def _eager_get(self, src: Node, dst: Node, nbytes: int,
                   handler: Optional[Handler], op_id: int = -1):
        p = self.params
        rec = self._recording()
        self.counters.eager_transfers += 1
        # Request.
        yield self.sim.timeout(p.o_send_us)
        self._record(wire.AM_REQUEST, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                             dst=dst.id, nbytes=p.ctrl_bytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        yield from self._wire(src, dst)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target: handler + bounce copy + reply injection, all on the
        # target CPU (Figure 5).
        payload, extra = yield from self._run_handler(
            dst, handler, handler_copy_bytes=nbytes,
            reply_bytes=nbytes + p.ctrl_bytes, reply_fragmented=True,
            reply_to=src, op_id=op_id)
        # Logged post-injection so timestamp and piggyback bytes are
        # the ones actually on the wire.
        self._record(wire.AM_REPLY, dst, src, nbytes + p.ctrl_bytes + extra)
        t1 = self.sim.now
        yield from self._wire(dst, src)
        if rec:
            self._phase(op_id, COMP_WIRE, t1)
            self.events.emit(self.sim.now, AM_REPLY_RECV, op=op_id,
                             node=src.id, piggyback=extra > 0)
        # Initiator: receive + copy out of the bounce buffer, then
        # return the receive-buffer credit to the pool.
        yield self.sim.timeout(p.o_recv_us + p.copy_time(nbytes))
        self._credit_pool(src).release()
        return payload

    def _rendezvous_get(self, src: Node, dst: Node, nbytes: int,
                        handler: Optional[Handler],
                        src_addr: int, dst_addr: int, op_id: int = -1):
        p = self.params
        rec = self._recording()
        self.counters.rendezvous_transfers += 1
        # RTS.
        yield self.sim.timeout(p.o_send_us + p.rendezvous_cpu_us)
        reg_cost = src.reg_cache.register(src_addr, nbytes)
        if reg_cost:
            yield self.sim.timeout(reg_cost)
        self._record(wire.RTS, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                             dst=dst.id, nbytes=p.ctrl_bytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        yield from self._wire(src, dst)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target: handler, registration of the served region and the
        # zero-copy send — all target-CPU work (Figure 5b).
        assert dst.progress is not None
        yield from dst.progress.service(op_id)
        t_acq = self.sim.now
        yield dst.handler_cpu.acquire()
        if rec:
            self._phase(op_id, COMP_QUEUE, t_acq)
            self.events.emit(self.sim.now, AM_RECV, op=op_id,
                             node=dst.id)
        try:
            cost = p.handler_cpu_us + p.rendezvous_cpu_us
            payload: Any = None
            extra = 0
            if handler is not None:
                h_cost, payload, extra = handler(dst)
                cost += h_cost
            cost += dst.reg_cache.register(dst_addr, nbytes)
            t_r = self.sim.now
            if rec:
                # The handler-CPU slice is the known `cost` share of
                # the combined timeout below; HANDLER_END is stamped
                # analytically at t_r + cost to avoid splitting the
                # timeout (which would perturb event interleaving).
                self.events.emit(t_r, HANDLER_BEGIN, op=op_id,
                                 node=dst.id)
                self.events.emit(t_r + cost, HANDLER_END, op=op_id,
                                 node=dst.id, cost=cost)
                self._phase(op_id, COMP_HANDLER, t_r, dur=cost)
            yield self.sim.timeout(cost + p.o_send_us)
            self._record(wire.RDV_DATA, dst, src,
                         nbytes + p.ctrl_bytes + extra)
            yield from self._inject(dst, nbytes + p.ctrl_bytes + extra,
                                    fragmented=False)
            if rec:
                dur = self.sim.now - t_r - cost
                total = nbytes + p.ctrl_bytes + extra
                piggy = dur * extra / total if extra and total else 0.0
                self._phase(op_id, COMP_PIGGYBACK, t_r, dur=piggy)
                self._phase(op_id, COMP_WIRE, t_r, dur=dur - piggy)
                self.events.emit(self.sim.now, AM_REPLY_SEND, op=op_id,
                                 node=dst.id, nbytes=total,
                                 piggyback=bool(extra))
        finally:
            dst.handler_cpu.release()
        t1 = self.sim.now
        yield from self._wire(dst, src)
        if rec:
            self._phase(op_id, COMP_WIRE, t1)
            self.events.emit(self.sim.now, AM_REPLY_RECV, op=op_id,
                             node=src.id, piggyback=extra > 0)
        # Initiator completion (no copies: the NIC delivered in place).
        yield self.sim.timeout(p.o_recv_us)
        return payload

    def default_put(self, src: Node, dst: Node, nbytes: int,
                    handler: Optional[Handler] = None,
                    src_addr: Optional[int] = None,
                    dst_addr: Optional[int] = None, op_id: int = -1):
        """Figure 3a mirrored: the initiator is done at local hand-off;
        target-side processing overlaps with whatever the initiator
        does next.  Returns a :class:`PutTicket`."""
        p = self.params
        rec = self._recording()
        self.counters.am_requests += 1
        # Eager: data+header message.  Rendezvous: RTS + CTS + data.
        self.counters.bytes_am += nbytes + (
            p.ctrl_bytes if nbytes <= p.eager_max_bytes
            else 2 * p.ctrl_bytes)
        remote_applied = Event(self.sim, name="put-applied")
        if src_addr is None:
            src_addr = src.memory.base
        if dst_addr is None:
            dst_addr = dst.memory.base
        if nbytes <= p.eager_max_bytes:
            self.counters.eager_transfers += 1
            # Local side: software overhead, bounce copy, a receive
            # credit at the destination, injection.
            yield self.sim.timeout(p.o_send_us + p.copy_time(nbytes))
            yield self._credit_pool(dst).acquire()
            self._record(wire.PUT_DATA, src, dst, nbytes + p.ctrl_bytes)
            t0 = self.sim.now
            if rec:
                self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                                 dst=dst.id,
                                 nbytes=nbytes + p.ctrl_bytes)
            yield from self._inject(src, nbytes + p.ctrl_bytes,
                                    fragmented=True)
            if rec:
                self._phase(op_id, COMP_WIRE, t0)
            # Remote side continues without the initiator.
            self.sim.process(
                self._put_tail(src, dst, nbytes, handler, remote_applied,
                               copy_at_target=True, credit=True,
                               op_id=op_id),
                name="put-tail",
            )
        else:
            self.counters.rendezvous_transfers += 1
            # RTS/CTS handshake happens synchronously (rendezvous).
            yield self.sim.timeout(p.o_send_us + p.rendezvous_cpu_us)
            reg_cost = src.reg_cache.register(src_addr, nbytes)
            if reg_cost:
                yield self.sim.timeout(reg_cost)
            self._record(wire.RTS, src, dst, p.ctrl_bytes)
            t0 = self.sim.now
            if rec:
                self.events.emit(t0, AM_SEND, op=op_id, node=src.id,
                                 dst=dst.id, nbytes=p.ctrl_bytes)
            yield from self._inject(src, p.ctrl_bytes, fragmented=False)
            yield from self._wire(src, dst)
            if rec:
                self._phase(op_id, COMP_WIRE, t0)
            # Target-side work (handler + registration + CTS send) is
            # all CPU work there — serialized on the handler CPU,
            # symmetric with the rendezvous GET path.
            assert dst.progress is not None
            yield from dst.progress.service(op_id)
            t_acq = self.sim.now
            yield dst.handler_cpu.acquire()
            if rec:
                self._phase(op_id, COMP_QUEUE, t_acq)
                self.events.emit(self.sim.now, AM_RECV, op=op_id,
                                 node=dst.id)
            try:
                cost = p.handler_cpu_us
                if handler is not None:
                    h_cost, _, _ = handler(dst)
                    cost += h_cost
                cost += dst.reg_cache.register(dst_addr, nbytes)
                t_r = self.sim.now
                if rec:
                    self.events.emit(t_r, HANDLER_BEGIN, op=op_id,
                                     node=dst.id)
                    self.events.emit(t_r + cost, HANDLER_END, op=op_id,
                                     node=dst.id, cost=cost)
                    self._phase(op_id, COMP_HANDLER, t_r, dur=cost)
                yield self.sim.timeout(cost + p.o_send_us)
                self._record(wire.CTS, dst, src, p.ctrl_bytes)
                yield from self._inject(dst, p.ctrl_bytes, fragmented=False)
                if rec:
                    self._phase(op_id, COMP_WIRE, t_r,
                                dur=self.sim.now - t_r - cost)
            finally:
                dst.handler_cpu.release()
            t1 = self.sim.now
            yield from self._wire(dst, src)
            if rec:
                self._phase(op_id, COMP_WIRE, t1)
            yield self.sim.timeout(p.o_recv_us)
            # Zero-copy data injection; local completion at hand-off.
            self._record(wire.RDV_DATA, src, dst, nbytes)
            t2 = self.sim.now
            yield from self._inject(src, nbytes, fragmented=False)
            if rec:
                self._phase(op_id, COMP_WIRE, t2)
            self.sim.process(
                self._put_tail(src, dst, nbytes, None, remote_applied,
                               copy_at_target=False, op_id=op_id),
                name="put-tail",
            )
        return PutTicket(remote_applied=remote_applied, nbytes=nbytes)

    def _put_tail(self, src: Node, dst: Node, nbytes: int,
                  handler: Optional[Handler], remote_applied: Event,
                  copy_at_target: bool, credit: bool = False,
                  op_id: int = -1):
        """Target-side continuation of a PUT (runs as its own process).

        Credit return and completion signalling are exception-safe: a
        crashing handler must not leak the receive buffer nor leave
        the initiator's fence waiting forever.
        """
        try:
            yield from self._wire(src, dst)
            if handler is not None or copy_at_target:
                yield from self._run_handler(
                    dst, handler,
                    handler_copy_bytes=nbytes if copy_at_target else 0,
                    op_id=op_id)
        except BaseException:
            # Detached process: make the failure visible in counters
            # before it lands in the (unobserved) process event.
            self.counters.bump("put-tail-error")
            raise
        finally:
            if credit:
                # The target consumed the eager buffer either way.
                self._credit_pool(dst).release()
            remote_applied.succeed(self.sim.now)

    def am_oneway(self, src: Node, dst: Node, nbytes: int,
                  handler: Optional[Handler] = None) -> Event:
        """Fire-and-forget control message (SVD update notifications).

        Charged asynchronously: the *caller* pays nothing on its own
        clock; returns an event firing when the target processed it.
        """
        self.counters.am_requests += 1
        self.counters.bytes_am += nbytes
        done = Event(self.sim, name="oneway-done")

        def _fly():
            yield self.sim.timeout(self.params.o_send_us)
            yield self._credit_pool(dst).acquire()
            try:
                self._record(wire.ONEWAY, src, dst, nbytes)
                yield from self._inject(src, nbytes, fragmented=True)
                yield from self._wire(src, dst)
                yield from self._run_handler(dst, handler)
            finally:
                self._credit_pool(dst).release()
                done.succeed(self.sim.now)

        self.sim.process(_fly(), name="am-oneway")
        return done

    # -- RDMA protocols ----------------------------------------------------

    def rdma_get(self, src: Node, dst: Node, nbytes: int,
                 op_id: int = -1):
        """Figure 3b: one-sided read.  No target CPU involvement — the
        response is served by the target NIC's DMA engine."""
        p = self.params
        rec = self._recording()
        self.counters.rdma_gets += 1
        self.counters.bytes_rdma += nbytes
        yield self.sim.timeout(p.rdma_init_us)
        self._record(wire.RDMA_READ, src, dst, p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, RDMA_ISSUE, op=op_id, node=src.id,
                             dst=dst.id, nbytes=nbytes)
        yield from self._inject(src, p.ctrl_bytes, fragmented=False)
        yield from self._wire(src, dst, extra=p.rdma_get_premium_us)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        # Target NIC serializes the response (DMA, no CPU, no credits
        # — the data lands directly in registered user memory).
        self._record(wire.RDMA_READ_RESP, dst, src, nbytes)
        t1 = self.sim.now
        yield dst.nic.acquire()
        if rec:
            # Contention for the target NIC's DMA engine.
            self._phase(op_id, COMP_QUEUE, t1)
        t2 = self.sim.now
        try:
            yield self.sim.timeout(p.nic_gap_us + p.wire_time(nbytes))
        finally:
            dst.nic.release()
        yield from self._wire(dst, src)
        if rec:
            self._phase(op_id, COMP_WIRE, t2)
        yield self.sim.timeout(p.rdma_completion_us)
        if rec:
            self.events.emit(self.sim.now, RDMA_COMPLETE, op=op_id,
                             node=src.id, nbytes=nbytes)

    def rdma_put(self, src: Node, dst: Node, nbytes: int,
                 op_id: int = -1):
        """Figure 3b mirrored.  On GM local completion happens at
        injection; on HPS/LAPI the initiator waits for the fabric-level
        acknowledgement (``rdma_put_waits_remote``) — the mechanism
        behind Figure 6's PUT regression."""
        p = self.params
        rec = self._recording()
        self.counters.rdma_puts += 1
        self.counters.bytes_rdma += nbytes
        remote_applied = Event(self.sim, name="rdma-put-applied")
        yield self.sim.timeout(p.rdma_init_us)
        self._record(wire.RDMA_WRITE, src, dst, nbytes + p.ctrl_bytes)
        t0 = self.sim.now
        if rec:
            self.events.emit(t0, RDMA_ISSUE, op=op_id, node=src.id,
                             dst=dst.id, nbytes=nbytes)
        yield from self._inject(src, nbytes + p.ctrl_bytes, fragmented=False)
        if rec:
            self._phase(op_id, COMP_WIRE, t0)
        if p.rdma_put_waits_remote:
            t1 = self.sim.now
            yield from self._wire(src, dst, extra=p.rdma_put_premium_us)
            remote_applied.succeed(self.sim.now)
            yield from self._wire(dst, src)  # hardware ack
            if rec:
                self._phase(op_id, COMP_WIRE, t1)
            yield self.sim.timeout(p.rdma_completion_us)
        else:
            yield self.sim.timeout(p.rdma_completion_us)

            def _tail():
                yield from self._wire(src, dst, extra=p.rdma_put_premium_us)
                remote_applied.succeed(self.sim.now)

            self.sim.process(_tail(), name="rdma-put-tail")
        if rec:
            self.events.emit(self.sim.now, RDMA_COMPLETE, op=op_id,
                             node=src.id, nbytes=nbytes)
        return PutTicket(remote_applied=remote_applied, nbytes=nbytes)


class GMTransport(Transport):
    """Myrinet/GM flavour (section 3.3).

    Behaviour is fully captured by :data:`repro.network.params.GM_TRANSPORT`:
    polling progress, 16 KB eager cut-over, registration embedded in
    rendezvous with a pin-down cache, cheap RDMA with local PUT
    completion, 1 GB DMAable-memory cap.
    """


class LAPITransport(Transport):
    """LAPI/HPS flavour (section 3.2).

    Captured by :data:`repro.network.params.LAPI_TRANSPORT`: interrupt
    progress (communication/computation overlap), 8x Myrinet bandwidth,
    RDMA latency premium with remote-ack PUT completion, 32 MB
    registered-handle cap.
    """
