"""Network substrate: topologies, NICs, and the GM / LAPI transports.

This package replaces the paper's physical fabrics (Myrinet + GM on
MareNostrum, HPS + LAPI on the Power5 cluster) with discrete-event
cost models.  See DESIGN.md section 2 for the substitution argument
and :mod:`repro.network.params` for the calibrated constants.
"""

from repro.network.cluster import Cluster, make_cluster
from repro.network.node import Node
from repro.network.params import (
    BGL_TORUS,
    BGL_TRANSPORT,
    GM_MARENOSTRUM,
    GM_TRANSPORT,
    INTERRUPT,
    LAPI_POWER5,
    LAPI_TRANSPORT,
    MACHINES,
    POLLING,
    TCP_CLUSTER,
    TCP_TRANSPORT,
    MachineParams,
    TransportParams,
)
from repro.network.partition import (
    NodePartition,
    lookahead_matrix,
    min_lookahead,
    partition_nodes,
)
from repro.network.progress import (
    InterruptProgress,
    PollingProgress,
    ProgressEngine,
)
from repro.network.topology import (
    FlatEthernet,
    HPSSwitch,
    MyrinetClos,
    Topology,
    Torus3D,
    make_topology,
)
from repro.network.transport import (
    AMReply,
    GMTransport,
    LAPITransport,
    PutTicket,
    Transport,
    TransportCounters,
)

__all__ = [
    "Cluster",
    "make_cluster",
    "Node",
    "MachineParams",
    "TransportParams",
    "GM_MARENOSTRUM",
    "LAPI_POWER5",
    "TCP_CLUSTER",
    "BGL_TORUS",
    "GM_TRANSPORT",
    "LAPI_TRANSPORT",
    "TCP_TRANSPORT",
    "BGL_TRANSPORT",
    "MACHINES",
    "POLLING",
    "INTERRUPT",
    "Topology",
    "MyrinetClos",
    "HPSSwitch",
    "FlatEthernet",
    "Torus3D",
    "make_topology",
    "Transport",
    "GMTransport",
    "LAPITransport",
    "AMReply",
    "PutTicket",
    "TransportCounters",
    "ProgressEngine",
    "PollingProgress",
    "InterruptProgress",
    "NodePartition",
    "partition_nodes",
    "lookahead_matrix",
    "min_lookahead",
]
