"""Progress engines: *when* does the target CPU service an AM handler?

This is the paper's central GM-vs-LAPI behavioural asymmetry:

* **GM / polling** (section 4.6): "the Myrinet/GM transport does not
  overlap communication and computation.  While a CPU is busy with the
  local portion of its array the network does not make progress, and
  other CPUs requesting data are forced into long waits."  A handler
  runs only once some thread on the node re-enters the runtime.

* **LAPI / interrupt** (section 4.7): "LAPI allows overlap of
  computation and communication, therefore wait times ... are not
  excessive even without address cache operation."  Handlers run after
  a short interrupt latency regardless of what the compute threads do.

RDMA operations never touch a progress engine — that is precisely why
the remote address cache helps.
"""

from __future__ import annotations

from typing import List

from repro.network.node import Node
from repro.network.params import INTERRUPT, POLLING, TransportParams
from repro.sim.event import Event
from repro.sim.simulator import Simulator


class ProgressEngine:
    """Base: grants service opportunities to incoming AM handlers."""

    def __init__(self, sim: Simulator, node: Node,
                 params: TransportParams) -> None:
        self.sim = sim
        self.node = node
        self.params = params
        #: Handlers serviced so far (for experiment reporting).
        self.serviced = 0
        #: Accumulated time handlers spent waiting for service.
        self.wait_time = 0.0
        #: Peak number of handlers queued waiting for a poller (always
        #: 0 for interrupt-driven engines, which never queue).
        self.max_backlog = 0
        #: Flight recorder (injected by the Runtime; may stay None for
        #: bare-cluster uses).
        self.events = None
        #: Fault injector (installed by the Runtime alongside the
        #: transport's); models slow/wedged targets as extra dispatch
        #: latency.  None == healthy node, zero extra yields.
        self.faults = None
        #: Run metrics (injected by the Runtime); receives the global
        #: ``max_backlog`` peak across nodes.
        self.metrics = None
        #: Counter sampler (installed by ``CounterSampler.start``);
        #: notified on every backlog transition so queue depth is not
        #: under-reported between poll ticks.
        self.sampler = None

    def _stall(self, op_id: int):
        """Injected target-handler slowdown, charged before dispatch."""
        extra = self.faults.handler_stall(self.node.id, op_id=op_id)
        if extra > 0.0:
            yield self.sim.sleep(extra)

    # -- thread-side hooks (only meaningful for polling) ----------------

    def enter_runtime(self) -> None:
        """A local UPC thread entered the runtime (it now polls)."""

    def leave_runtime(self) -> None:
        """A local UPC thread left the runtime (stops polling)."""

    def poll(self) -> None:
        """An explicit progress tick from a local thread."""

    # -- handler-side ----------------------------------------------------

    def service(self, op_id: int = -1):
        """Generator: wait until a handler may start executing.

        ``op_id`` ties the wait to the remote operation being serviced
        in the flight recorder (queue_enter/queue_leave plus a
        ``queue`` latency-breakdown phase when the wait was non-zero).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def _record_queue(self, t0: float, op_id: int) -> None:
        """Emit queue events for one service() wait, if recording."""
        ev = self.events
        if ev is None or not ev.enabled:
            return
        from repro.obs.events import COMP_QUEUE, PHASE, QUEUE_LEAVE
        wait = self.sim.now - t0
        ev.emit(self.sim.now, QUEUE_LEAVE, op=op_id, node=self.node.id,
                wait=wait)
        if wait > 0.0 and op_id >= 0:
            ev.emit(self.sim.now, PHASE, op=op_id, node=self.node.id,
                    comp=COMP_QUEUE, dur=wait)


class PollingProgress(ProgressEngine):
    """GM-style: handlers run only while some thread polls the NIC.

    ``enter_runtime``/``leave_runtime`` bracket every blocking runtime
    call; while the count is positive, arriving handlers are dispatched
    after ``dispatch_us``.  Otherwise they queue until the next
    ``enter_runtime``/``poll`` tick — which in the Field stressmark can
    be a whole compute slice away.
    """

    def __init__(self, sim: Simulator, node: Node,
                 params: TransportParams) -> None:
        super().__init__(sim, node, params)
        self._pollers = 0
        self._waiters: List[Event] = []
        self._await_name = f"await-poll[{node.id}]"

    @property
    def pollers(self) -> int:
        return self._pollers

    def enter_runtime(self) -> None:
        self._pollers += 1
        self._wake_all()

    def leave_runtime(self) -> None:
        if self._pollers <= 0:
            raise RuntimeError(
                f"leave_runtime() without enter on node {self.node.id}"
            )
        self._pollers -= 1

    def poll(self) -> None:
        """A momentary progress tick (e.g. between compute slices)."""
        self._wake_all()

    def _backlog_changed(self, depth: int) -> None:
        """One enqueue/dequeue transition: track the peak and give the
        counter sampler its between-ticks data point (§4.6 backlog
        under-reporting fix)."""
        if depth > self.max_backlog:
            self.max_backlog = depth
            metrics = self.metrics
            if metrics is not None and depth > metrics.max_backlog:
                metrics.max_backlog = depth
        sampler = self.sampler
        if sampler is not None:
            sampler.backlog_transition(self.node.id, depth)

    def _wake_all(self) -> None:
        waiters = self._waiters
        if waiters:
            # succeed() only schedules — callbacks run from the
            # dispatch loop, so nothing can append to the list while we
            # iterate, and clearing in place avoids a list allocation.
            for ev in waiters:
                ev.succeed()
            waiters.clear()
            self._backlog_changed(0)

    def service(self, op_id: int = -1):
        t0 = self.sim.now
        log = self.events
        if log is not None and log.enabled:
            from repro.obs.events import QUEUE_ENTER
            log.emit(t0, QUEUE_ENTER, op=op_id, node=self.node.id,
                     pollers=self._pollers)
        if self._pollers == 0:
            sim = self.sim
            if sim.pooled:
                ev = sim.oneshot(self._await_name)
            else:
                ev = Event(sim, name=f"await-poll[{self.node.id}]")
            self._waiters.append(ev)
            self._backlog_changed(len(self._waiters))
            yield ev
        if self.faults is not None:
            yield from self._stall(op_id)
        yield self.sim.sleep(self.params.dispatch_us)
        self.serviced += 1
        self.wait_time += self.sim.now - t0
        self._record_queue(t0, op_id)


class InterruptProgress(ProgressEngine):
    """LAPI-style: handlers run after an interrupt latency, always."""

    def service(self, op_id: int = -1):
        t0 = self.sim.now
        log = self.events
        if log is not None and log.enabled:
            from repro.obs.events import QUEUE_ENTER
            log.emit(t0, QUEUE_ENTER, op=op_id, node=self.node.id)
        if self.faults is not None:
            yield from self._stall(op_id)
        yield self.sim.sleep(self.params.interrupt_us)
        self.serviced += 1
        self.wait_time += self.sim.now - t0
        self._record_queue(t0, op_id)


def make_progress(sim: Simulator, node: Node,
                  params: TransportParams) -> ProgressEngine:
    """Build the progress engine named by ``params.progress``."""
    if params.progress == POLLING:
        return PollingProgress(sim, node, params)
    if params.progress == INTERRUPT:
        return InterruptProgress(sim, node, params)
    raise ValueError(f"unknown progress kind {params.progress!r}")
