#!/usr/bin/env python
"""2-D heat diffusion: the class of application Neighborhood stands for.

A Jacobi iteration over a ``ROWS x COLS`` grid distributed row-cyclic
over UPC threads.  Each sweep, every thread updates its rows using the
row above and below — the vertical neighbours live on other threads
(and usually other nodes), so each sweep does two remote row reads per
owned row: exactly the "pairs of pixels with specific spatial
relationships" access pattern of the DIS Neighborhood stressmark.

The example checks that the simulated-UPC result matches a serial
NumPy reference bit-for-bit and reports the address-cache effect —
small and steady hit set (2 partner nodes), like Figure 8b.

Run:  python examples/heat_stencil.py
"""

import numpy as np

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig

ROWS, COLS = 32, 48
SWEEPS = 4
NTHREADS = 8


def serial_reference(grid0: np.ndarray) -> np.ndarray:
    """Plain NumPy Jacobi with insulated (copied) boundary rows."""
    g = grid0.astype(np.float64).reshape(ROWS, COLS)
    for _ in range(SWEEPS):
        new = g.copy()
        new[1:-1, :] = (g[:-2, :] + g[2:, :]) / 2.0
        g = new
    return g


def kernel(th, grids):
    """One UPC thread's share of the Jacobi sweeps.

    ``grids`` is a pair of shared arrays (double buffering); values
    are stored as float64 bit patterns in a u8 array.
    """
    src, dst = grids
    my_rows = list(range(th.id, ROWS, th.nthreads))
    for sweep in range(SWEEPS):
        a, b = (src, dst) if sweep % 2 == 0 else (dst, src)
        for r in my_rows:
            if r == 0 or r == ROWS - 1:
                row = yield from th.memget(a, r * COLS, COLS)
            else:
                up = yield from th.memget(a, (r - 1) * COLS, COLS)
                down = yield from th.memget(a, (r + 1) * COLS, COLS)
                row = ((up.view(np.float64) + down.view(np.float64))
                       / 2.0).view(np.uint64)
            yield from th.compute(COLS * 0.02)
            yield from th.memput(b, r * COLS, row)
        yield from th.barrier()
    return None


def run(cache_enabled: bool, grid0: np.ndarray):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=NTHREADS,
                        threads_per_node=4, cache_enabled=cache_enabled,
                        seed=7)
    rt = Runtime(cfg)
    holder = {}

    def setup_and_run(th):
        src = yield from th.all_alloc(ROWS * COLS, blocksize=COLS,
                                      dtype="u8")
        dst = yield from th.all_alloc(ROWS * COLS, blocksize=COLS,
                                      dtype="u8")
        if th.id == 0:
            src.data[:] = grid0.view(np.uint64)
            dst.data[:] = grid0.view(np.uint64)
            holder["final"] = (src, dst)
        yield from th.barrier()
        yield from kernel(th, (src, dst))

    rt.spawn(setup_and_run)
    result = rt.run()
    src, dst = holder["final"]
    final = (dst if SWEEPS % 2 else src).data.view(np.float64)
    return result, final.reshape(ROWS, COLS).copy()


def main():
    rng = np.random.default_rng(123)
    grid0 = rng.random(ROWS * COLS)

    ref = serial_reference(grid0)
    off, final_off = run(False, grid0)
    on, final_on = run(True, grid0)

    assert np.array_equal(final_on, final_off)
    assert np.allclose(final_on, ref), "UPC result must match serial NumPy"

    imp = 100 * (off.elapsed_us - on.elapsed_us) / off.elapsed_us
    print(f"heat_stencil: {ROWS}x{COLS} grid, {SWEEPS} Jacobi sweeps, "
          f"{NTHREADS} threads")
    print(f"  without cache: {off.elapsed_us:9.1f} us")
    print(f"  with cache   : {on.elapsed_us:9.1f} us   "
          f"(improvement {imp:.1f}%)")
    print(f"  hit rate     : {on.cache_stats.hit_rate:.3f}  "
          f"(entries learned: {on.cache_stats.insertions} — the stable, "
          "tiny working set of Figure 8b)")
    print("  result verified against the serial NumPy reference ✓")


if __name__ == "__main__":
    main()
