#!/usr/bin/env python
"""Quickstart: a UPC-style program on the simulated XLUPC runtime.

Builds an 8-thread hybrid cluster (4 threads per MareNostrum-style
blade), allocates a shared array, and runs the same kernel with the
remote address cache off and on — printing the latency split and the
improvement, i.e. a miniature version of the paper's experiment.

Run:  python examples/quickstart.py
"""

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def kernel(th):
    """Each thread reads 32 pseudo-random remote elements and writes
    one element back, then synchronizes."""
    arr = yield from th.all_alloc(4096, blocksize=64, dtype="u8")
    if th.id == 0:
        arr.data[:] = range(4096)      # untimed input generation
    yield from th.barrier()

    total = 0
    for k in range(32):
        index = (th.id * 509 + k * 131) % 4096
        value = yield from th.get(arr, index)
        total += int(value)
        yield from th.compute(0.5)      # some local work per element
    yield from th.put(arr, th.id, total % 2 ** 32)
    yield from th.barrier()
    return total


def run(cache_enabled: bool):
    cfg = RuntimeConfig(
        machine=GM_MARENOSTRUM,   # Myrinet/GM cost model, polling progress
        nthreads=8,
        threads_per_node=4,       # hybrid: Pthreads within a blade
        cache_enabled=cache_enabled,
        seed=42,
    )
    rt = Runtime(cfg)
    procs = rt.spawn(kernel)
    result = rt.run()
    answers = [p.value for p in procs]
    return rt, result, answers


def main():
    rt_off, off, answers_off = run(cache_enabled=False)
    rt_on, on, answers_on = run(cache_enabled=True)

    assert answers_on == answers_off, "the cache must not change results"

    print("Quickstart: 8 UPC threads on 2 simulated MareNostrum blades")
    print(f"  without address cache : {off.elapsed_us:9.1f} us")
    print(f"  with address cache    : {on.elapsed_us:9.1f} us")
    imp = 100 * (off.elapsed_us - on.elapsed_us) / off.elapsed_us
    print(f"  improvement           : {imp:9.1f} %   (paper: ~30% for "
          "small GETs on GM)")
    print()
    stats = on.cache_stats
    print(f"  cache: {stats.hits} hits / {stats.misses} misses "
          f"(hit rate {stats.hit_rate:.2f}), "
          f"{stats.insertions} addresses learned via piggyback")
    m = on.metrics
    print(f"  remote GETs via RDMA  : {m.rdma_gets} of "
          f"{m.rdma_gets + m.am_gets}")
    print(f"  shared-memory accesses: {m.get_shm.n} "
          "(same-blade threads bypass the network)")


if __name__ == "__main__":
    main()
