#!/usr/bin/env python
"""Split-phase pipelining: hiding remote latency with communication
overlap.

A distributed dot-product where every thread needs a scattered slice
of both vectors.  Three strategies over identical data:

1. blocking GETs, one at a time (the naive port);
2. split-phase GETs, eight in flight (`th.gather`) — the classic
   latency-hiding optimization;
3. split-phase GETs *plus* the remote address cache.

The cache and pipelining compose: pipelining hides wire latency,
the cache removes target-CPU work — together they approach the
bandwidth bound.

Run:  python examples/pipelined_reduction.py
"""

import numpy as np

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig

N = 4096
PER_THREAD = 48
NTHREADS = 16


def make_kernel(pipelined: bool, results: dict):
    def kernel(th):
        x = yield from th.all_alloc(N, blocksize=64, dtype="u8")
        y = yield from th.all_alloc(N, blocksize=64, dtype="u8")
        if th.id == 0:
            rng = np.random.default_rng(7)
            x.data[:] = rng.integers(1, 100, N)
            y.data[:] = rng.integers(1, 100, N)
        yield from th.barrier()
        rng = th.rng
        idxs = [int(rng.integers(N)) for _ in range(PER_THREAD)]
        t0 = th.runtime.sim.now
        if pipelined:
            xs = yield from th.gather(x, idxs, width=8)
            ys = yield from th.gather(y, idxs, width=8)
        else:
            xs, ys = [], []
            for i in idxs:
                xs.append((yield from th.get(x, i)))
                ys.append((yield from th.get(y, i)))
        partial = sum(int(a) * int(b) for a, b in zip(xs, ys))
        results.setdefault("op_time", []).append(
            th.runtime.sim.now - t0)
        total = yield from th.all_reduce(partial)
        return total

    return kernel


def run(pipelined: bool, cache_enabled: bool):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=NTHREADS,
                        threads_per_node=4, cache_enabled=cache_enabled,
                        seed=13)
    rt = Runtime(cfg)
    results = {}
    procs = rt.spawn(make_kernel(pipelined, results))
    res = rt.run()
    dots = {p.value for p in procs}
    assert len(dots) == 1, "all threads must agree on the dot product"
    return res.elapsed_us, dots.pop()


def main():
    t_naive, dot1 = run(pipelined=False, cache_enabled=False)
    t_pipe, dot2 = run(pipelined=True, cache_enabled=False)
    t_both, dot3 = run(pipelined=True, cache_enabled=True)
    assert dot1 == dot2 == dot3

    print(f"pipelined_reduction: scattered dot product, {NTHREADS} "
          f"threads x {PER_THREAD} random elements of two {N}-vectors")
    print(f"  blocking GETs, no cache      : {t_naive:9.1f} us")
    print(f"  split-phase x8, no cache     : {t_pipe:9.1f} us  "
          f"({t_naive / t_pipe:.2f}x)")
    print(f"  split-phase x8 + addr cache  : {t_both:9.1f} us  "
          f"({t_naive / t_both:.2f}x)")
    print(f"  dot product = {dot1} (identical in all three runs ✓)")
    print()
    print("  Pipelining hides wire latency; the address cache removes")
    print("  target-CPU work. They compose.")


if __name__ == "__main__":
    main()
