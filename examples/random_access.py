#!/usr/bin/env python
"""GUPS-style random access: the cache-hostile workload, with a
capacity sweep.

Every thread performs random read-modify-write updates over the whole
shared table (like HPCC RandomAccess, and like the DIS Pointer/Update
stressmarks).  The communication partner set is *every other node*, so
the address cache's usefulness depends entirely on its capacity
relative to the machine size — this example sweeps capacity and prints
the hit rate + speedup curve, i.e. a miniature Figure 8a study.

Run:  python examples/random_access.py
"""

import numpy as np

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig

TABLE = 1 << 13
UPDATES = 48
NTHREADS = 32
TPN = 2  # 16 nodes → working set of 15 entries per node cache


def kernel(th):
    table = yield from th.all_alloc(TABLE, blocksize=None, dtype="u8")
    if th.id == 0:
        table.data[:] = np.arange(TABLE, dtype=np.uint64)
    yield from th.barrier()
    rng = th.rng
    block = TABLE // th.nthreads
    acc = 0
    # Race-free GUPS: each round, thread t updates a random slot in
    # partition (t + round) % THREADS — every partition has exactly
    # one writer per round, and the per-round barrier orders rounds,
    # so the result is deterministic (and must be identical with and
    # without the cache).
    for rnd in range(UPDATES):
        # Pseudo-random rotation, same on every thread: targets hop
        # around the whole machine while staying one-writer-per-slot.
        rot = (rnd * 1103515245 + 12345) % th.nthreads
        owner = (th.id + rot) % th.nthreads
        i = owner * block + int(rng.integers(block))
        v = yield from th.get(table, i)
        acc ^= int(v)
        yield from th.put(table, i, np.uint64(int(v) ^ th.id))
        yield from th.compute(0.3)
        yield from th.barrier()
    return acc


def run(cache_enabled: bool, capacity: int = 100):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=NTHREADS,
                        threads_per_node=TPN,
                        cache_enabled=cache_enabled,
                        cache_capacity=capacity, seed=99)
    rt = Runtime(cfg)
    procs = rt.spawn(kernel)
    res = rt.run()
    return res, [p.value for p in procs]


def main():
    base, answers_base = run(False)
    print(f"random_access: {NTHREADS} threads / "
          f"{NTHREADS // TPN} nodes, {UPDATES} updates each over a "
          f"{TABLE}-entry table")
    print(f"  baseline (no cache): {base.elapsed_us:9.1f} us")
    print()
    print("  capacity   hit-rate   time(us)   speedup")
    for capacity in (2, 4, 8, 16, 32, 100):
        res, answers = run(True, capacity)
        assert answers == answers_base, "cache must not change results"
        speedup = base.elapsed_us / res.elapsed_us
        print(f"  {capacity:8d}   {res.cache_stats.hit_rate:8.3f}"
              f"   {res.elapsed_us:8.1f}   {speedup:7.2f}x")
    print()
    print("  The working set is (nodes - 1) = "
          f"{NTHREADS // TPN - 1} entries: capacities above it give the "
          "full benefit, below it the LRU thrashes (Figure 8a).")


if __name__ == "__main__":
    main()
