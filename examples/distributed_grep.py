#!/usr/bin/env python
"""Distributed token search: the application behind the Field
stressmark, shown as a real task — finding a byte pattern across a
sharded corpus.

The corpus is blocked across UPC threads; every thread scans its own
shard (long local computation) and reads a small *overhang* from the
next shard to catch matches spanning the boundary.  On a polling
transport like Myrinet/GM, those overhang reads stall while the
neighbour's CPU is busy scanning — unless the remote address cache
turns them into RDMA reads (section 4.6 of the paper).

The example runs the search on both simulated platforms and prints the
GM-vs-LAPI asymmetry alongside the verified match counts.

Run:  python examples/distributed_grep.py
"""

import numpy as np

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.util.rng import seeded_rng
from repro.workloads.dis.field import (
    FieldParams,
    _count_matches,
    run_field,
)

CORPUS_WORDS = 1 << 15
PATTERN_LEN = 4
PATTERNS = 6
NTHREADS = 16


def serial_reference(params: FieldParams) -> int:
    """Count matches with one big NumPy scan (ground truth)."""
    rng = seeded_rng(params.seed, 0xF1E1D)
    words = rng.integers(0, params.alphabet, size=params.nelems,
                         dtype=np.uint64)
    tokens = [rng.integers(0, params.alphabet, size=params.token_len,
                           dtype=np.uint64)
              for _ in range(params.ntokens)]
    return sum(_count_matches(words, tok) for tok in tokens)


def main():
    print(f"distributed_grep: {PATTERNS} patterns of {PATTERN_LEN} words "
          f"over a {CORPUS_WORDS}-word corpus, {NTHREADS} threads")
    print()
    for machine, tpn in ((GM_MARENOSTRUM, 4), (LAPI_POWER5, 8)):
        kw = dict(machine=machine, nthreads=NTHREADS,
                  threads_per_node=tpn, seed=5,
                  nelems=CORPUS_WORDS, token_len=PATTERN_LEN,
                  ntokens=PATTERNS)
        on = run_field(FieldParams(cache_enabled=True, **kw))
        off = run_field(FieldParams(cache_enabled=False, **kw))

        expect = serial_reference(FieldParams(cache_enabled=True, **kw))
        found = sum(on.check)
        assert on.check == off.check
        assert found == expect, f"expected {expect} matches, got {found}"

        imp = 100 * (off.elapsed_us - on.elapsed_us) / off.elapsed_us
        print(f"  {machine.name:16s}: {found} matches found ✓   "
              f"no-cache {off.elapsed_us / 1000:8.2f} ms -> "
              f"cache {on.elapsed_us / 1000:8.2f} ms   "
              f"improvement {imp:5.1f}%")
    print()
    print("  GM gains a lot (overhang reads stop waiting for the busy")
    print("  neighbour's CPU); LAPI barely moves — it already overlaps")
    print("  communication with computation (paper sections 4.6/4.7).")


if __name__ == "__main__":
    main()
