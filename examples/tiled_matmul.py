#!/usr/bin/env python
"""Tiled matrix multiply on multiblocked shared arrays.

Multiblocked arrays (section 2.1, citing Barton et al. LCPC 2007) are
the layout UPC linear-algebra codes use: an N x N matrix is carved
into tiles dealt round-robin over the threads.  This example computes
``C = A @ B`` with the owner-computes rule — each thread computes its
tiles of C, pulling the tiles of A and B it needs with ``memget_row``
— and verifies the result against NumPy.

The access pattern is stencil-like in tile space: every thread streams
the same tile row/column repeatedly, so the address-cache working set
is small and hot (Figure 8b-style), and the cache converts the tile
fetches into RDMA reads.

Run:  python examples/tiled_matmul.py
"""

import numpy as np

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig

N = 16           # matrix dimension
TILE = 4         # tile edge
NTHREADS = 8


def kernel(th, holder):
    a = yield from th.all_alloc_matrix(N, N, TILE, TILE, dtype="f8")
    b = yield from th.all_alloc_matrix(N, N, TILE, TILE, dtype="f8")
    c = yield from th.all_alloc_matrix(N, N, TILE, TILE, dtype="f8")
    if th.id == 0:
        rng = np.random.default_rng(11)
        holder["A"] = rng.integers(0, 10, (N, N)).astype("f8")
        holder["B"] = rng.integers(0, 10, (N, N)).astype("f8")
        a.from_dense(holder["A"])
        b.from_dense(holder["B"])
        holder["c"] = c
    yield from th.barrier()

    tiles = N // TILE
    for tile in range(tiles * tiles):
        if tile % th.nthreads != th.id:
            continue                      # owner-computes
        ti, tj = divmod(tile, tiles)
        acc = np.zeros((TILE, TILE))
        for tk in range(tiles):
            # Fetch tile (ti, tk) of A and (tk, tj) of B row by row.
            a_tile = np.empty((TILE, TILE))
            b_tile = np.empty((TILE, TILE))
            for dr in range(TILE):
                a_tile[dr] = yield from th.memget_row(
                    a, ti * TILE + dr, tk * TILE, TILE)
                b_tile[dr] = yield from th.memget_row(
                    b, tk * TILE + dr, tj * TILE, TILE)
            acc += a_tile @ b_tile
            yield from th.compute(TILE ** 3 * 0.01)   # the FLOPs
        for dr in range(TILE):
            yield from th.memput(
                c, c.row_segment(ti * TILE + dr, tj * TILE, TILE)[0],
                acc[dr])
    yield from th.barrier()

    # A reduction over per-thread tile counts, as a checksum handshake.
    my_tiles = sum(1 for t in range(tiles * tiles)
                   if t % th.nthreads == th.id)
    total = yield from th.all_reduce(my_tiles)
    assert total == tiles * tiles
    return my_tiles


def run(cache_enabled: bool):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=NTHREADS,
                        threads_per_node=4, cache_enabled=cache_enabled,
                        seed=3)
    rt = Runtime(cfg)
    holder = {}
    rt.spawn(kernel, holder)
    result = rt.run()
    return result, holder["c"].to_dense(), holder


def main():
    off, c_off, h = run(False)
    on, c_on, h2 = run(True)

    expect = h["A"] @ h["B"]
    assert np.array_equal(c_on, c_off)
    assert np.allclose(c_off, expect), "distributed result must match numpy"

    imp = 100 * (off.elapsed_us - on.elapsed_us) / off.elapsed_us
    print(f"tiled_matmul: C = A @ B, {N}x{N} doubles in {TILE}x{TILE} "
          f"tiles over {NTHREADS} threads")
    print(f"  without cache: {off.elapsed_us:9.1f} us")
    print(f"  with cache   : {on.elapsed_us:9.1f} us  "
          f"(improvement {imp:.1f}%)")
    print(f"  hit rate     : {on.cache_stats.hit_rate:.3f}   "
          f"rdma share of remote gets: "
          f"{on.metrics.rdma_fraction:.2f}")
    print("  verified against numpy ✓")


if __name__ == "__main__":
    main()
