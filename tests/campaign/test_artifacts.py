"""Atomic artifact writes and the named missing/corrupt errors."""

import json
import os

import pytest

from repro.campaign.artifacts import (ArtifactError, BaselineError,
                                      atomic_write_json,
                                      load_json_artifact, merge_rows)


def test_atomic_write_round_trips(tmp_path):
    path = str(tmp_path / "a" / "b.json")
    atomic_write_json(path, {"x": 1})
    assert json.load(open(path)) == {"x": 1}
    # No tmp stragglers on the happy path.
    assert os.listdir(os.path.dirname(path)) == ["b.json"]


def test_atomic_write_preserves_previous_on_failure(tmp_path):
    path = str(tmp_path / "b.json")
    atomic_write_json(path, {"x": 1})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    # The failed write neither corrupted nor removed the old file,
    # and cleaned up its temp file.
    assert json.load(open(path)) == {"x": 1}
    assert os.listdir(str(tmp_path)) == ["b.json"]


def test_missing_artifact_is_named_error(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_json_artifact(str(tmp_path / "nope.json"))


def test_corrupt_artifact_is_named_error_not_jsondecode(tmp_path):
    path = tmp_path / "trunc.json"
    path.write_text('{"bench": "kv", "results": [', encoding="utf-8")
    with pytest.raises(ArtifactError) as exc:
        load_json_artifact(str(path), what="baseline",
                           error=BaselineError)
    msg = str(exc.value)
    assert "corrupt or truncated" in msg
    assert "baseline" in msg
    assert isinstance(exc.value, BaselineError)
    # Named, but still carrying the decode cause for debugging.
    assert isinstance(exc.value.__cause__, json.JSONDecodeError)


def test_baseline_error_is_artifact_error():
    assert issubclass(BaselineError, ArtifactError)


def _outcome(cid, kind="noop", status="ok", **extra):
    doc = {"id": cid, "kind": kind, "params": {}, "seed": 0,
           "status": status, "payload": {"v": cid},
           "elapsed_s": 1.23, "pid": 999}
    doc.update(extra)
    return doc


def test_merge_rows_sorts_and_strips_timing():
    rows = merge_rows([_outcome("b"), _outcome("a")])["noop"]
    assert [r["id"] for r in rows] == ["a", "b"]
    for r in rows:
        assert "elapsed_s" not in r
        assert "pid" not in r


def test_merge_rows_keeps_degenerate_drops_errors():
    by_kind = merge_rows([
        _outcome("a"),
        _outcome("b", status="degenerate", error="zero baseline"),
        _outcome("c", status="error", error="boom"),
    ])
    rows = by_kind["noop"]
    assert [r["id"] for r in rows] == ["a", "b"]
    assert rows[1]["error"] == "zero baseline"
