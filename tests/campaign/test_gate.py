"""The shared --baseline gate: tolerances, cross-mode, named errors."""

import pytest

from repro.campaign.artifacts import atomic_write_json
from repro.campaign.gate import (BaselineError, GateMetric,
                                 check_baseline)


def _speedups(doc):
    return [(f"nt={r['nthreads']}", r["speedup"])
            for r in doc.get("results", [])]


SPEEDUP = GateMetric("speedup", _speedups)
TAIL = GateMetric("p99", lambda d: [("all", d.get("p99", 0.0))],
                  higher_is_better=False)
QUICK_ONLY = GateMetric("abs_latency",
                        lambda d: [("all", d.get("lat", 1.0))],
                        skip_cross_mode=True)


def _write(tmp_path, doc, name="base.json"):
    return atomic_write_json(str(tmp_path / name), doc)


def test_within_tolerance_passes(tmp_path):
    path = _write(tmp_path, {"mode": "full",
                             "results": [{"nthreads": 64,
                                          "speedup": 2.0}]})
    report = {"mode": "full",
              "results": [{"nthreads": 64, "speedup": 1.7}]}
    res = check_baseline(report, path, [SPEEDUP])     # floor 1.6
    assert res.ok and not res.notes


def test_regression_beyond_tolerance_fails(tmp_path):
    path = _write(tmp_path, {"mode": "full",
                             "results": [{"nthreads": 64,
                                          "speedup": 2.0}]})
    report = {"mode": "full",
              "results": [{"nthreads": 64, "speedup": 1.5}]}
    res = check_baseline(report, path, [SPEEDUP])
    assert not res.ok
    assert "nt=64" in res.problems[0]
    assert "below baseline" in res.problems[0]


def test_lower_is_better_direction(tmp_path):
    path = _write(tmp_path, {"mode": "full", "p99": 100.0})
    ok = check_baseline({"mode": "full", "p99": 115.0}, path, [TAIL])
    bad = check_baseline({"mode": "full", "p99": 130.0}, path, [TAIL])
    assert ok.ok
    assert not bad.ok and "above baseline" in bad.problems[0]


def test_cross_mode_widens_tolerance(tmp_path):
    path = _write(tmp_path, {"mode": "full",
                             "results": [{"nthreads": 64,
                                          "speedup": 2.0}]})
    # 1.5 fails the 20% gate but passes the widened 35% one.
    report = {"mode": "quick",
              "results": [{"nthreads": 64, "speedup": 1.5}]}
    res = check_baseline(report, path, [SPEEDUP])
    assert res.ok
    assert any("mode mismatch" in n for n in res.notes)


def test_cross_mode_skips_flagged_metrics(tmp_path):
    path = _write(tmp_path, {"mode": "full", "lat": 1.0})
    res = check_baseline({"mode": "quick", "lat": 99.0}, path,
                         [QUICK_ONLY])
    assert res.ok
    assert any("not comparable across mix modes" in n
               for n in res.notes)
    # Same mode: the metric gates for real.
    res = check_baseline({"mode": "full", "lat": 0.5}, path,
                         [QUICK_ONLY])
    assert not res.ok


def test_label_missing_from_baseline_is_note_not_failure(tmp_path):
    path = _write(tmp_path, {"mode": "full",
                             "results": [{"nthreads": 64,
                                          "speedup": 2.0}]})
    report = {"mode": "full",
              "results": [{"nthreads": 64, "speedup": 2.0},
                          {"nthreads": 1024, "speedup": 0.1}]}
    res = check_baseline(report, path, [SPEEDUP])
    assert res.ok
    assert any("nt=1024" in n and "not in baseline" in n
               for n in res.notes)


def test_missing_baseline_is_named_error(tmp_path):
    with pytest.raises(BaselineError, match="does not exist"):
        check_baseline({"mode": "full"},
                       str(tmp_path / "nope.json"), [SPEEDUP])


def test_corrupt_baseline_is_named_error(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"mode": "full", ', encoding="utf-8")
    with pytest.raises(BaselineError, match="corrupt or truncated"):
        check_baseline({"mode": "full"}, str(path), [SPEEDUP])


# ---------------------------------------------------------------------------
# The migrated bench gates keep their semantics
# ---------------------------------------------------------------------------

def _sim_core_doc(mode, speedups, trend):
    return {"mode": mode, "pooled_eps_trend": trend,
            "results": [{"nthreads": nt, "speedup": s,
                         "pooled_events_per_sec": 1000}
                        for nt, s in speedups]}


def test_sim_core_gate_same_numbers_as_before(tmp_path):
    import benchmarks.bench_sim_core as bench

    base = _sim_core_doc("full", [(64, 2.0), (256, 2.5)], 1.0)
    path = _write(tmp_path, base)
    # Same mode: 20% tolerance. 1.99 vs floor 2.0 fails at nt=256.
    bad = _sim_core_doc("full", [(64, 2.0), (256, 1.99)], 1.0)
    assert bench.check_baseline(bad, path)
    ok = _sim_core_doc("full", [(64, 1.61), (256, 2.01)], 0.81)
    assert not bench.check_baseline(ok, path)
    # Cross-mode: widened to 35%, so 1.7 at nt=256 passes.
    quick = _sim_core_doc("quick", [(64, 1.4), (256, 1.7)], 0.7)
    assert not bench.check_baseline(quick, path)
    # Missing baseline is no longer a silent skip.
    with pytest.raises(BaselineError):
        bench.check_baseline(ok, str(tmp_path / "gone.json"))


def test_kv_service_gate_metrics(tmp_path):
    import benchmarks.bench_kv_service as bench

    def doc(mode, hit, miss_p50=16.4, hit_p50=11.97):
        return {"mode": mode,
                "results": [{"zipf_s": 0.9, "hit_rate": hit,
                             "miss_p50_us": miss_p50,
                             "hit_p50_us": hit_p50}]}

    path = _write(tmp_path, doc("full", 0.44))
    res = check_baseline(doc("full", 0.43), path, bench.GATE_METRICS)
    assert res.ok
    res = check_baseline(doc("full", 0.30), path, bench.GATE_METRICS)
    assert not res.ok and "hit_rate" in res.problems[0]
    # Separation collapse (hit path no faster than miss) also gates.
    res = check_baseline(doc("full", 0.44, miss_p50=12.0), path,
                         bench.GATE_METRICS)
    assert not res.ok and "one_sided_speedup" in res.problems[0]


def test_lossy_gate_skips_cross_mode(tmp_path):
    import benchmarks.bench_lossy_fabric as bench

    def doc(mode, dn_p99, dr_p99):
        return {"mode": mode, "results": {"flap": [
            {"policy": "do_nothing", "p99_us": dn_p99},
            {"policy": "disable_and_repair", "p99_us": dr_p99}]}}

    path = _write(tmp_path, doc("full", 54.0, 19.8))
    res = check_baseline(doc("full", 54.0, 40.0), path,
                         bench.GATE_METRICS)
    assert not res.ok and "policy_benefit_p99" in res.problems[0]
    # Quick runs compressed traces: skipped with a note, not compared.
    res = check_baseline(doc("quick", 25.0, 25.0), path,
                         bench.GATE_METRICS)
    assert res.ok
    assert any("not comparable" in n for n in res.notes)
