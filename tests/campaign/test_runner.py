"""Campaign runner: checkpoints, resume, kill-safety, fan-out.

The centerpiece is the kill/resume regression test the ISSUE demands:
a campaign SIGKILLed mid-run must resume without re-executing its
completed cells, and the resumed merge must be byte-identical to an
uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.cells import KINDS
from repro.campaign.runner import (checkpoint_path, load_checkpoint,
                                   run_campaign)
from repro.campaign.spec import CampaignSpec
from repro.util.stats import DegenerateBaselineError

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                   "src")


def _noop_spec(n=4, sleep_s=0.0, workers=2, name="t"):
    leg = {"kind": "noop", "matrix": {"x": list(range(n))},
           "seeds": [0]}
    if sleep_s:
        leg["fixed"] = {"sleep_s": sleep_s}
    return CampaignSpec(name=name, legs=[leg], workers=workers)


# ---------------------------------------------------------------------------
# In-process basics
# ---------------------------------------------------------------------------

def test_run_and_merge(tmp_path):
    run = run_campaign(_noop_spec(3), str(tmp_path), workers=0)
    assert run.executed == 3 and run.resumed == 0
    assert run.statuses == {"ok": 3}
    assert run.ok
    merged = json.load(open(run.merged_paths[0]))
    assert merged["bench"] == "campaign_noop"
    assert merged["n_cells"] == 3
    assert os.path.exists(os.path.join(str(tmp_path), "campaign.json"))


def test_resume_skips_completed_cells(tmp_path):
    spec = _noop_spec(4)
    first = run_campaign(spec, str(tmp_path), workers=0, max_cells=2)
    assert first.executed == 2 and first.pending == 2
    assert not first.ok          # pending cells: not a complete run
    second = run_campaign(spec, str(tmp_path), workers=0)
    assert second.resumed == 2 and second.executed == 2
    assert second.ok


def test_resumed_cells_are_not_reexecuted(tmp_path):
    spec = _noop_spec(4)
    first = run_campaign(spec, str(tmp_path), workers=0, max_cells=2)
    done = [c for c in spec.expand()
            if load_checkpoint(str(tmp_path), c)]
    before = {c.cell_id: open(checkpoint_path(str(tmp_path),
                                              c.cell_id), "rb").read()
              for c in done}
    run_campaign(spec, str(tmp_path), workers=0)
    for cid, blob in before.items():
        after = open(checkpoint_path(str(tmp_path), cid), "rb").read()
        assert after == blob, f"{cid} was re-executed on resume"
    assert first.executed == 2


def test_truncated_checkpoint_is_rerun_not_error(tmp_path):
    spec = _noop_spec(2)
    run_campaign(spec, str(tmp_path), workers=0)
    victim = spec.expand()[0]
    path = checkpoint_path(str(tmp_path), victim.cell_id)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"id": "' + victim.cell_id)   # torn write
    assert load_checkpoint(str(tmp_path), victim) is None
    run = run_campaign(spec, str(tmp_path), workers=0)
    assert run.resumed == 1 and run.executed == 1
    assert run.statuses == {"ok": 2}


def test_merge_is_byte_identical_across_resume(tmp_path):
    spec = _noop_spec(5)
    clean_dir, resumed_dir = str(tmp_path / "a"), str(tmp_path / "b")
    clean = run_campaign(spec, clean_dir, workers=0)
    run_campaign(spec, resumed_dir, workers=0, max_cells=2)
    resumed = run_campaign(spec, resumed_dir, workers=0)
    a = open(clean.merged_paths[0], "rb").read()
    b = open(resumed.merged_paths[0], "rb").read()
    assert a == b


# ---------------------------------------------------------------------------
# Per-cell failure semantics
# ---------------------------------------------------------------------------

@pytest.fixture
def stub_kind():
    """Register a throwaway cell kind; in-process runs only."""
    registered = []

    def register(name, fn):
        KINDS[name] = fn
        registered.append(name)

    yield register
    for name in registered:
        del KINDS[name]


def test_degenerate_cell_recorded_not_fatal(tmp_path, stub_kind):
    def fn(params, seed):
        if params["x"] == 1:
            raise DegenerateBaselineError("elapsed 0.0 <= 0")
        return {"v": params["x"]}

    stub_kind("stub", fn)
    spec = CampaignSpec(name="t", legs=[
        {"kind": "stub", "matrix": {"x": [0, 1, 2]}}])
    run = run_campaign(spec, str(tmp_path), workers=0)
    assert run.statuses == {"ok": 2, "degenerate": 1}
    assert run.ok                # degenerate cells don't fail the run
    rows = json.load(open(run.merged_paths[0]))["cells"]
    bad = [r for r in rows if r["status"] == "degenerate"]
    assert len(bad) == 1 and "elapsed 0.0" in bad[0]["error"]


def test_error_cell_fails_run_and_is_retried_on_resume(tmp_path,
                                                       stub_kind):
    calls = {"n": 0}

    def fn(params, seed):
        calls["n"] += 1
        if params["x"] == 1 and calls["n"] <= 2:
            raise RuntimeError("boom")
        return {"v": params["x"]}

    stub_kind("stub", fn)
    spec = CampaignSpec(name="t", legs=[
        {"kind": "stub", "matrix": {"x": [0, 1]}}])
    first = run_campaign(spec, str(tmp_path), workers=0)
    assert first.statuses == {"ok": 1, "error": 1}
    assert not first.ok
    # Resume: the ok cell is kept, the error cell re-runs (and the
    # stub succeeds this time).
    second = run_campaign(spec, str(tmp_path), workers=0)
    assert second.resumed == 1 and second.executed == 1
    assert second.statuses == {"ok": 2}


def test_unknown_kind_is_per_cell_error(tmp_path):
    spec = CampaignSpec(name="t", legs=[
        {"kind": "no-such-kind", "matrix": {"x": [0]}}])
    run = run_campaign(spec, str(tmp_path), workers=0)
    assert run.statuses == {"error": 1}
    assert "unknown cell kind" in run.cells[0]["error"]


# ---------------------------------------------------------------------------
# Multi-process fan-out
# ---------------------------------------------------------------------------

def test_fan_out_uses_worker_processes(tmp_path):
    spec = _noop_spec(4, sleep_s=0.4, workers=2)
    run = run_campaign(spec, str(tmp_path), workers=2)
    assert run.statuses == {"ok": 4}
    pids = {doc["pid"] for doc in run.cells}
    assert os.getpid() not in pids
    assert len(pids) >= 2, "cells did not spread across workers"


# ---------------------------------------------------------------------------
# The kill/resume acceptance test
# ---------------------------------------------------------------------------

def _campaign_cmd(spec_path, run_dir):
    return [sys.executable, "-m", "repro", "campaign",
            "--spec", spec_path, "--run-dir", run_dir]


def test_killed_campaign_resumes_byte_identical(tmp_path):
    """SIGKILL a 2-worker campaign mid-run; resume must skip the
    completed cells and merge byte-identical output to an
    uninterrupted run."""
    spec = _noop_spec(6, sleep_s=0.4, workers=2, name="killtest")
    spec_path = str(tmp_path / "spec.json")
    with open(spec_path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json())
    victim_dir = str(tmp_path / "victim")

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(_campaign_cmd(spec_path, victim_dir),
                            env=env, start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline:
            done = sum(1 for c in spec.expand()
                       if load_checkpoint(victim_dir, c))
            if done >= 2:
                break
            if proc.poll() is not None:
                pytest.fail("campaign finished before it was killed; "
                            "raise sleep_s")
            time.sleep(0.05)
        else:
            pytest.fail("no checkpoints appeared within 60s")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

    survivors = [c for c in spec.expand()
                 if load_checkpoint(victim_dir, c)]
    assert 2 <= len(survivors) < 6, "kill landed too late/too early"
    before = {c.cell_id: open(checkpoint_path(victim_dir, c.cell_id),
                              "rb").read() for c in survivors}

    resumed = run_campaign(spec, victim_dir, workers=0)
    assert resumed.resumed == len(survivors)
    assert resumed.executed == 6 - len(survivors)
    assert resumed.statuses == {"ok": 6}
    for cid, blob in before.items():
        after = open(checkpoint_path(victim_dir, cid), "rb").read()
        assert after == blob, f"{cid} was re-executed after the kill"

    clean = run_campaign(spec, str(tmp_path / "clean"), workers=0)
    a = open(clean.merged_paths[0], "rb").read()
    b = open(resumed.merged_paths[0], "rb").read()
    assert a == b, "resumed merge differs from uninterrupted merge"
