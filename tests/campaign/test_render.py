"""Campaign rendering: tables, the ASCII CDF figure, n=1 marking."""

import os

from repro.campaign.render import render_campaign, render_cdf_figure


def _cell(kind, payload, cid, status="ok"):
    return {"id": cid, "kind": kind, "params": {}, "seed": 0,
            "status": status, "payload": payload}


def test_cdf_figure_overlays_every_series():
    a = [[10.0, 0.5], [20.0, 1.0]]
    b = [[10.0, 0.3], [40.0, 1.0]]
    text = render_cdf_figure([("fast", a), ("slow", b)], "t")
    assert "t" in text.splitlines()[0]
    body = "\n".join(text.splitlines()[1:])
    assert "o" in body and "x" in body   # both markers drawn
    assert "fast" in text and "slow" in text
    assert "p50=" in text and "p99=" in text
    assert "1.00" in text and "0.50" in text and "0.00" in text


def test_cdf_figure_empty_series():
    assert "no completed flows" in render_cdf_figure(
        [("a", [])], "t")


def test_render_campaign_writes_figures(tmp_path):
    kv_payload = {
        "zipf_s": 0.9, "shards": 1, "requests": 100, "hit_rate": 0.2,
        "p50_us": 16.4, "p99_us": 25.0,
        "fct_cdf": [[10.0, 0.5], [30.0, 1.0]],
    }
    lossy = [
        {"shape": "flap", "policy": p, "requests": 100, "failures": 0,
         "p50_us": 16.4, "p99_us": q, "decisions": 2,
         "fct_cdf": [[10.0, 0.5], [q, 1.0]]}
        for p, q in (("do_nothing", 54.0),
                     ("disable_and_repair", 19.8))]
    outcomes = [
        _cell("kvtraffic", kv_payload, "kv-a"),
        _cell("lossy", lossy[0], "lo-a"),
        _cell("lossy", lossy[1], "lo-b"),
        _cell("micro", {"op": "get", "machine": "gm",
                        "size_bytes": 4096, "z_us": 42.0, "w_us": 28.0,
                        "improvement_pct": 33.0}, "mi-a"),
    ]
    paths = render_campaign(str(tmp_path), "t", outcomes)
    names = {os.path.basename(p) for p in paths}
    assert {"campaign_kvtraffic.txt", "kv_fct_cdf.txt",
            "campaign_lossy.txt", "lossy_flap.txt",
            "campaign_micro.txt",
            "campaign_report.txt"} <= names
    flap = open(os.path.join(str(tmp_path), "figures",
                             "lossy_flap.txt")).read()
    assert "repair policy" in flap
    assert "do_nothing" in flap and "disable_and_repair" in flap
    report = open(os.path.join(str(tmp_path),
                               "campaign_report.txt")).read()
    assert "campaign: t" in report
    assert "do_nothing" in report


def test_render_campaign_marks_single_seed_no_ci(tmp_path):
    dis = {"workload": "pointer", "threads": 8, "nodes": 2,
           "machine": "gm", "preset": "small", "capacity": 100,
           "n": 1, "skipped": 0, "improvement_pct": 16.6,
           "ci_half_width": 0.0, "hit_rate": 0.78}
    render_campaign(str(tmp_path), "t", [_cell("dis", dis, "d-a")])
    text = open(os.path.join(str(tmp_path), "figures",
                             "campaign_dis.txt")).read()
    # A single-seed cell must say so, not fake a "± 0.00" interval.
    assert "(n=1, no CI)" in text
    assert "± 0.0" not in text


def test_render_campaign_lists_degenerate_cells(tmp_path):
    ok = {"workload": "field", "threads": 8, "nodes": 2,
          "machine": "gm", "preset": "small", "capacity": 100,
          "n": 2, "skipped": 0, "improvement_pct": 14.0,
          "ci_half_width": 0.1, "hit_rate": 0.9}
    outcomes = [
        _cell("dis", ok, "d-ok"),
        dict(_cell("dis", None, "d-bad", status="degenerate"),
             error="elapsed 0.0 <= 0"),
    ]
    render_campaign(str(tmp_path), "t", outcomes)
    report = open(os.path.join(str(tmp_path),
                               "campaign_report.txt")).read()
    assert "degenerate cells" in report
    assert "d-bad" in report
